//! Machine-checkable inexpressibility certificates.
//!
//! The survey's method for proving "query Q is not FO-definable" always
//! has the same shape: produce concrete structures with concrete
//! witnesses such that FO-definability would be contradicted. This
//! module packages each method as a data object whose `check()` method
//! **re-derives every claim from scratch** — game values via the exact
//! solver, neighborhood isomorphisms via the backtracking tester, query
//! values via the caller's query function — so a certificate is
//! evidence, not trust.
//!
//! * [`GameFamilyCertificate`] — the EF-game method: families
//!   `(Aₙ, Bₙ)` with `Q(Aₙ) ≠ Q(Bₙ)` but `Aₙ ≡ₙ Bₙ`
//!   (verified for `n = 1..=depth`; the *for all n* step is the
//!   closed-form strategy library in `fmt-games`);
//! * [`GaifmanCertificate`] — a per-radius family of Gaifman-locality
//!   violations (for every candidate radius `r ≤ max_radius`, a
//!   structure and tuple pair defeating it);
//! * [`HanfCertificate`] — likewise for Hanf-locality on Boolean
//!   queries;
//! * [`BndpCertificate`] — a degree-bounded family whose query outputs
//!   realize unboundedly many degrees.

use fmt_games::solver::EfSolver;
use fmt_locality::bndp::{self, BndpObservation};
use fmt_locality::gaifman_local::{self, GaifmanViolation};
use fmt_locality::hanf::HanfViolation;
use fmt_structures::{Elem, RelId, Structure};
use std::collections::HashSet;

/// The EF-game inexpressibility certificate: for each `n` up to a
/// depth, two structures that disagree on the query yet are
/// `≡ₙ`-equivalent.
#[derive(Debug, Clone)]
pub struct GameFamilyCertificate {
    /// Human-readable query name (for reports).
    pub query_name: String,
    /// One row per round count `n`.
    pub rows: Vec<GameFamilyRow>,
}

/// One row of a [`GameFamilyCertificate`].
#[derive(Debug, Clone)]
pub struct GameFamilyRow {
    /// The round count this row defeats.
    pub n: u32,
    /// The structure satisfying the query.
    pub a: Structure,
    /// The structure falsifying the query.
    pub b: Structure,
}

impl GameFamilyCertificate {
    /// Builds the certificate: for each `n = 1..=depth`, `family(n)`
    /// must produce `(Aₙ, Bₙ)` with `query(Aₙ) = true`,
    /// `query(Bₙ) = false` and `Aₙ ≡ₙ Bₙ`. Fails with a description if
    /// any condition is violated.
    pub fn build(
        query_name: &str,
        mut family: impl FnMut(u32) -> (Structure, Structure),
        mut query: impl FnMut(&Structure) -> bool,
        depth: u32,
    ) -> Result<GameFamilyCertificate, String> {
        let mut rows = Vec::new();
        for n in 1..=depth {
            let (a, b) = family(n);
            if !query(&a) {
                return Err(format!("query fails on A_{n} (it must hold)"));
            }
            if query(&b) {
                return Err(format!("query holds on B_{n} (it must fail)"));
            }
            if !EfSolver::new(&a, &b).duplicator_wins(n) {
                return Err(format!("A_{n} and B_{n} are not ≡_{n}-equivalent"));
            }
            rows.push(GameFamilyRow { n, a, b });
        }
        Ok(GameFamilyCertificate {
            query_name: query_name.to_owned(),
            rows,
        })
    }

    /// Re-verifies all game equivalences (the query values are the
    /// caller's to re-check via [`GameFamilyCertificate::check_with`]).
    pub fn check(&self) -> bool {
        self.rows
            .iter()
            .all(|row| EfSolver::new(&row.a, &row.b).duplicator_wins(row.n))
    }

    /// Full re-verification including query values.
    pub fn check_with(&self, mut query: impl FnMut(&Structure) -> bool) -> bool {
        self.check() && self.rows.iter().all(|row| query(&row.a) && !query(&row.b))
    }

    /// The deepest round count defeated.
    pub fn depth(&self) -> u32 {
        self.rows.last().map_or(0, |r| r.n)
    }
}

/// A Gaifman-locality refutation: for every radius `r = 1..=max_radius`
/// there is a structure on which the query output distinguishes a pair
/// of tuples with isomorphic `r`-neighborhoods. Since every
/// FO-definable query is Gaifman-local at *some* radius, a family
/// defeating all radii (with a uniform recipe) witnesses
/// non-definability.
#[derive(Debug, Clone)]
pub struct GaifmanCertificate {
    /// Query name for reports.
    pub query_name: String,
    /// Arity of the query.
    pub arity: usize,
    /// Per-radius evidence: `(structure, output, violation)`.
    pub rows: Vec<(Structure, HashSet<Vec<Elem>>, GaifmanViolation)>,
}

impl GaifmanCertificate {
    /// Builds the certificate by searching each `family(r)` structure
    /// for a violation at radius `r`.
    pub fn build(
        query_name: &str,
        arity: usize,
        mut family: impl FnMut(u32) -> Structure,
        mut query: impl FnMut(&Structure) -> HashSet<Vec<Elem>>,
        max_radius: u32,
    ) -> Result<GaifmanCertificate, String> {
        let mut rows = Vec::new();
        for r in 1..=max_radius {
            let s = family(r);
            let output = query(&s);
            let v = gaifman_local::find_violation(&s, &output, arity, r)
                .ok_or_else(|| format!("no Gaifman violation found at radius {r}"))?;
            rows.push((s, output, v));
        }
        Ok(GaifmanCertificate {
            query_name: query_name.to_owned(),
            arity,
            rows,
        })
    }

    /// Re-validates every violation witness.
    pub fn check(&self) -> bool {
        self.rows.iter().all(|(s, out, v)| v.check(s, out))
    }
}

/// A Hanf-locality refutation for a Boolean query: for every radius
/// `r = 1..=max_radius`, two `⇆ᵣ`-equivalent structures with different
/// query values.
#[derive(Debug, Clone)]
pub struct HanfCertificate {
    /// Query name for reports.
    pub query_name: String,
    /// Per-radius evidence: the pair and its violation object.
    pub rows: Vec<(Structure, Structure, HanfViolation)>,
}

impl HanfCertificate {
    /// Builds the certificate from a per-radius family of structure
    /// pairs.
    pub fn build(
        query_name: &str,
        mut family: impl FnMut(u32) -> (Structure, Structure),
        mut query: impl FnMut(&Structure) -> bool,
        max_radius: u32,
    ) -> Result<HanfCertificate, String> {
        let mut rows = Vec::new();
        for r in 1..=max_radius {
            let (a, b) = family(r);
            let (qa, qb) = (query(&a), query(&b));
            let v = HanfViolation::build(&a, &b, r, qa, qb).ok_or_else(|| {
                format!("family at radius {r} is not a Hanf violation (⇆ᵣ fails or answers agree)")
            })?;
            rows.push((a, b, v));
        }
        Ok(HanfCertificate {
            query_name: query_name.to_owned(),
            rows,
        })
    }

    /// Re-validates every violation witness.
    pub fn check(&self) -> bool {
        self.rows.iter().all(|(a, b, v)| v.check(a, b))
    }
}

/// A BNDP refutation: a family of inputs with constant degree bound
/// whose outputs realize strictly more degrees at every step.
#[derive(Debug, Clone)]
pub struct BndpCertificate {
    /// Query name for reports.
    pub query_name: String,
    /// The inputs of the family.
    pub family: Vec<Structure>,
    /// Input/output relation ids for the degree computations.
    pub in_rel: RelId,
    /// Relation id in query outputs.
    pub out_rel: RelId,
    /// The measured profile.
    pub profile: Vec<BndpObservation>,
}

impl BndpCertificate {
    /// Builds the certificate; fails unless the profile witnesses a
    /// violation (constant input bound, strictly growing output
    /// spectra, ≥ 3 points).
    pub fn build(
        query_name: &str,
        family: Vec<Structure>,
        in_rel: RelId,
        out_rel: RelId,
        query: impl FnMut(&Structure) -> Structure,
    ) -> Result<BndpCertificate, String> {
        let profile = bndp::bndp_profile(&family, in_rel, out_rel, query);
        if !bndp::witnesses_bndp_violation(&profile) {
            return Err("profile does not witness a BNDP violation".into());
        }
        Ok(BndpCertificate {
            query_name: query_name.to_owned(),
            family,
            in_rel,
            out_rel,
            profile,
        })
    }

    /// Re-validates by recomputing the profile with the given query.
    pub fn check_with(&self, query: impl FnMut(&Structure) -> Structure) -> bool {
        let fresh = bndp::bndp_profile(&self.family, self.in_rel, self.out_rel, query);
        fresh == self.profile && bndp::witnesses_bndp_violation(&fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_queries::graph;
    use fmt_structures::{builders, Signature};

    #[test]
    fn even_on_sets_certificate() {
        let cert = GameFamilyCertificate::build(
            "EVEN(∅)",
            |n| (builders::set(2 * n), builders::set(2 * n + 1)),
            |s| s.size() % 2 == 0,
            4,
        )
        .unwrap();
        assert!(cert.check());
        assert!(cert.check_with(|s| s.size() % 2 == 0));
        assert_eq!(cert.depth(), 4);
        // The wrong query value direction is rejected at build time.
        assert!(GameFamilyCertificate::build(
            "ODD",
            |n| (builders::set(2 * n), builders::set(2 * n + 1)),
            |s| s.size() % 2 == 1,
            2,
        )
        .is_err());
    }

    #[test]
    fn even_on_orders_certificate() {
        // Theorem 3.1's instance: L_{2^n} vs L_{2^n + 1}.
        let cert = GameFamilyCertificate::build(
            "EVEN(<)",
            |n| {
                let m = 1u32 << n;
                (builders::linear_order(m), builders::linear_order(m + 1))
            },
            |s| s.size() % 2 == 0,
            3,
        )
        .unwrap();
        assert!(cert.check());
    }

    #[test]
    fn non_equivalent_family_rejected() {
        // L_2 vs L_3 at n = 2 is distinguishable: build must fail.
        let r = GameFamilyCertificate::build(
            "EVEN(<)",
            |_| (builders::linear_order(2), builders::linear_order(3)),
            |s| s.size() % 2 == 0,
            2,
        );
        assert!(r.is_err());
    }

    #[test]
    fn tc_gaifman_certificate() {
        let tc_pairs = |s: &Structure| -> HashSet<Vec<Elem>> {
            let t = graph::transitive_closure(s);
            let e = t.signature().relation("E").unwrap();
            t.rel(e).iter().map(<[u32]>::to_vec).collect()
        };
        let cert = GaifmanCertificate::build(
            "transitive closure",
            2,
            |r| builders::directed_path(6 * r + 8),
            tc_pairs,
            3,
        )
        .unwrap();
        assert!(cert.check());
    }

    #[test]
    fn conn_hanf_certificate() {
        let cert = HanfCertificate::build(
            "connectivity",
            |r| {
                let m = 2 * r + 2; // m > 2r + 1
                (
                    builders::copies(&builders::undirected_cycle(m), 2),
                    builders::undirected_cycle(2 * m),
                )
            },
            graph::is_connected,
            4,
        )
        .unwrap();
        assert!(cert.check());
    }

    #[test]
    fn tree_hanf_certificate() {
        let cert = HanfCertificate::build(
            "tree test",
            |r| {
                let m = 2 * r + 2;
                (
                    builders::undirected_path(2 * m),
                    builders::undirected_path(m)
                        .disjoint_union(&builders::undirected_cycle(m))
                        .unwrap(),
                )
            },
            graph::is_tree,
            3,
        )
        .unwrap();
        assert!(cert.check());
    }

    #[test]
    fn tc_bndp_certificate() {
        let family: Vec<Structure> = (4..10).map(builders::successor_chain).collect();
        let in_rel = family[0].signature().relation("S").unwrap();
        let out_rel = Signature::graph().relation("E").unwrap();
        let cert = BndpCertificate::build(
            "transitive closure",
            family,
            in_rel,
            out_rel,
            graph::transitive_closure,
        )
        .unwrap();
        assert!(cert.check_with(graph::transitive_closure));
        // A different query does not validate the stored profile.
        assert!(!cert.check_with(Clone::clone));
    }

    #[test]
    fn bndp_rejects_identity() {
        let family: Vec<Structure> = (4..10).map(builders::directed_path).collect();
        let e = Signature::graph().relation("E").unwrap();
        assert!(BndpCertificate::build("identity", family, e, e, Clone::clone).is_err());
    }
}
