//! # fmt-core
//!
//! The finite model theory toolbox of a database theoretician — the
//! facade crate of this workspace's reproduction of Libkin's PODS 2009
//! survey.
//!
//! The survey's thesis is that a small kit of tools — complexity bounds
//! for FO evaluation, Ehrenfeucht–Fraïssé games, locality, and 0-1 laws
//! — answers most expressibility questions a database theoretician
//! meets. This crate re-exports every subsystem and adds the
//! **certificate layer** ([`proofs`]): each of the survey's
//! inexpressibility arguments becomes a data object that bundles its
//! structures, witnesses and query values, and can be *re-checked* from
//! scratch (`check()` methods recompute games, isomorphisms, and query
//! answers independently of how the certificate was produced).
//!
//! ## Subsystems
//!
//! | crate | provides |
//! |---|---|
//! | [`structures`] | finite relational structures, builders, isomorphism |
//! | [`logic`] | FO syntax, normal forms, parser, sentence library |
//! | [`eval`] | naive + relational-algebra evaluation, AC⁰ circuits, QBF, bounded-degree linear time, Gaifman normal form |
//! | [`games`] | EF games: exact solver, ranks, strategies, pebble + bijective variants |
//! | [`locality`] | Gaifman graphs, neighborhoods, BNDP / Gaifman / Hanf checkers |
//! | [`zeroone`] | random structures, μₙ, extension axioms, 0-1-law decision |
//! | [`queries`] | TC/CONN/ACYCL/tree/EVEN, Datalog engine, FO interpretations, reduction tricks |
//!
//! ## Quick example
//!
//! ```
//! use fmt_core::proofs::GameFamilyCertificate;
//! use fmt_core::structures::builders;
//!
//! // EVEN is not FO-expressible over linear orders: for every n, the
//! // orders L_{2^n} and L_{2^n + 1} disagree on EVEN yet are
//! // ≡_n-equivalent (Theorem 3.1).
//! let cert = GameFamilyCertificate::build(
//!     "EVEN",
//!     |n| {
//!         let m = 1u32 << n;
//!         (builders::linear_order(m), builders::linear_order(m + 1))
//!     },
//!     |s| s.size() % 2 == 0,
//!     3,
//! )
//! .unwrap();
//! assert!(cert.check());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proofs;
pub mod report;

/// Finite relational structures (re-export of `fmt-structures`).
pub use fmt_structures as structures;

/// FO syntax (re-export of `fmt-logic`).
pub use fmt_logic as logic;

/// Evaluation engines (re-export of `fmt-eval`).
pub use fmt_eval as eval;

/// Ehrenfeucht–Fraïssé games (re-export of `fmt-games`).
pub use fmt_games as games;

/// Locality toolbox (re-export of `fmt-locality`).
pub use fmt_locality as locality;

/// 0-1 laws (re-export of `fmt-zeroone`).
pub use fmt_zeroone as zeroone;

/// Query zoo and reductions (re-export of `fmt-queries`).
pub use fmt_queries as queries;

/// Engine instrumentation: counters, histograms, span timers
/// (re-export of `fmt-obs`).
pub use fmt_obs as obs;

/// Static analysis: span-aware lints for formulas and Datalog programs
/// (re-export of `fmt-lint`).
pub use fmt_lint as lint;
