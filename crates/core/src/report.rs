//! Plain-text report rendering for experiments and examples.
//!
//! The examples and the experiment suite print small aligned tables
//! (the "rows/series the paper reports"); this module renders them
//! without pulling in a formatting dependency.

/// Renders an aligned plain-text table with a header row.
///
/// ```
/// let t = fmt_core::report::table(
///     &["n", "μ_n"],
///     &[vec!["2".into(), "0.25".into()], vec!["3".into(), "0.0156".into()]],
/// );
/// assert!(t.contains("n"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    if cols == 0 {
        return String::new();
    }
    let mut width = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        width[i] = h.chars().count();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.chars().count()..width[i] {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    render_row(&headers_owned, &mut out);
    let rule: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render_row(row, &mut out);
    }
    out
}

/// Formats a boolean as the check/cross marks used in the reports.
pub fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Formats a probability with 4 decimal places.
pub fn prob(p: f64) -> String {
    format!("{p:.4}")
}

/// A section header for example output.
pub fn section(title: &str) -> String {
    format!("\n== {title} ==\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // The "value" column starts at the same offset in every row.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1'), Some(col));
        assert_eq!(lines[3].find("22"), Some(col));
    }

    #[test]
    fn helpers() {
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "no");
        assert_eq!(prob(0.5), "0.5000");
        assert!(section("Games").contains("Games"));
    }

    #[test]
    fn ragged_rows_tolerated() {
        let t = table(&["a", "b"], &[vec!["x".into()]]);
        assert!(t.contains('x'));
    }

    #[test]
    fn empty_headers_render_nothing() {
        // Regression: `cols - 1` used to underflow with no columns.
        assert_eq!(table(&[], &[]), "");
        assert_eq!(table(&[], &[vec!["orphan".into()]]), "");
    }
}
