//! A minimal JSON value parser.
//!
//! The workspace is offline and deliberately has no serde-json; this
//! module exists so that tests and tooling (the CLI's trace gate, the
//! conformance suite) can *validate* the JSON the toolbox emits —
//! Chrome trace files, `--stats json`, Prometheus-adjacent payloads —
//! without trusting the producer. It is a strict recursive-descent
//! parser over the JSON grammar (RFC 8259), not a performance-oriented
//! one: inputs are bench artifacts and test fixtures, a few megabytes
//! at most.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (JSON objects are unordered); a
    /// duplicate key keeps the last value, as in most parsers.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload; `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (truncating); `None` for
    /// non-numbers and negatives.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error, as is any grammar violation, with a byte offset in the
/// message.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{} at byte {}", msg, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", c as char))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected {word}"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates and other invalid scalars map to
                            // U+FFFD; trace files never emit them.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                c if c < 0x20 => return self.err("raw control character in string"),
                _ => {
                    // Re-align to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = parse(r#"{"a":[1,{"b":"x"},[]],"c":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\x01\"", "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn round_trips_unicode() {
        let v = parse("\"héllo → ∀\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → ∀"));
    }

    #[test]
    fn as_u64_truncates_and_rejects_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("7.9").unwrap().as_u64(), Some(7));
    }
}
