//! # fmt-obs
//!
//! Zero-dependency instrumentation for the finite model theory toolbox.
//!
//! Every engine hot path (EF-game search, FO evaluation, semi-naive
//! Datalog, neighborhood censuses, 0-1-law sampling) records its work
//! through this crate so that perf PRs can ship with before/after
//! numbers and `fmtk --stats` can show what an invocation actually did.
//!
//! The build environment is offline, so there is no `tracing`,
//! `prometheus`, or `once_cell` here — just `std` atomics:
//!
//! * [`Counter`] — a monotonic `AtomicU64`;
//! * [`Histogram`] — fixed power-of-two buckets plus count/sum/max,
//!   suitable for sizes and microsecond durations;
//! * [`Span`] — an RAII timer that records into a histogram on drop;
//! * a process-global registry, **disabled by default**: when disabled,
//!   every record path short-circuits on a single relaxed atomic load
//!   and touches nothing else (asserted by the `cheap_when_disabled`
//!   test), so instrumented engines pay no measurable cost.
//!
//! Metrics are `static`s declared next to the code they measure:
//!
//! ```
//! static POSITIONS: fmt_obs::Counter = fmt_obs::Counter::new("demo.positions");
//!
//! fmt_obs::enable();
//! POSITIONS.add(3);
//! let snap = fmt_obs::snapshot();
//! assert_eq!(snap.counter("demo.positions"), Some(3));
//! fmt_obs::reset();
//! fmt_obs::disable();
//! ```
//!
//! A metric registers itself in the global registry the first time it
//! records while enabled; [`snapshot`] returns everything registered so
//! far, sorted by name, and [`Snapshot::to_json`] renders a single-line
//! JSON object suitable for appending to `BENCH_*.json`. Registration
//! enforces hygiene: names must match `^[a-z0-9_.]+$` and be unique
//! across the whole registry — a violation is a programming error and
//! panics at the first record.
//!
//! Metrics aggregate; the [`trace`] module *attributes*: hierarchical
//! spans with key-value fields, recorded into a bounded journal and
//! exported as Chrome trace-event JSON (Perfetto) or folded stacks
//! (flamegraphs). [`Snapshot::to_prometheus`] renders the metrics side
//! in Prometheus text exposition format — the payload a future
//! `fmtk serve` mounts at `/metrics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod trace;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, PoisonError};
use std::time::Instant;

/// Poison-tolerant lock used across the crate: metrics and traces must
/// keep working after a panic elsewhere in an instrumented region.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of histogram buckets: bucket `i` counts values `v` with
/// `bit_length(v) == i`, i.e. bucket 0 holds `0`, bucket `i ≥ 1` holds
/// `2^(i-1) ..= 2^i - 1`; the last bucket absorbs everything above.
pub const BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(Vec::new()),
    histograms: Mutex::new(Vec::new()),
};

/// Turns recording on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off process-wide (already-recorded values are kept
/// until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every registered metric (registration itself is kept, so
/// names remain visible in subsequent snapshots).
pub fn reset() {
    for c in lock(&REGISTRY.counters).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in lock(&REGISTRY.histograms).iter() {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// Registration hygiene
// ---------------------------------------------------------------------

/// The metric naming grammar: `^[a-z0-9_.]+$`. Lowercase dotted paths
/// keep text rows sortable and map cleanly onto Prometheus names
/// (dots become underscores in [`Snapshot::to_prometheus`]).
pub fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.')
}

/// Registers a metric name, checking the grammar and global uniqueness
/// across counters *and* histograms. Returns the violation (if any) so
/// the caller can panic **after** every registry guard is dropped —
/// panicking inside the critical section would poison the registry for
/// the whole process.
fn register(name: &'static str, push: impl FnOnce(&Registry)) {
    let grammar_ok = valid_metric_name(name);
    let duplicate = {
        let counters = lock(&REGISTRY.counters);
        let histograms = lock(&REGISTRY.histograms);
        let duplicate =
            counters.iter().any(|c| c.name == name) || histograms.iter().any(|h| h.name == name);
        drop(counters);
        drop(histograms);
        if grammar_ok && !duplicate {
            push(&REGISTRY);
        }
        duplicate
    };
    assert!(
        grammar_ok,
        "obs metric name {name:?} violates the ^[a-z0-9_.]+$ grammar"
    );
    assert!(!duplicate, "duplicate obs metric name {name:?}");
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// A monotonic counter. Declare as a `static` next to the code it
/// measures; increments are relaxed atomic adds, skipped entirely while
/// the registry is disabled.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: Once,
}

impl Counter {
    /// A new counter with a `dotted.metric.name`.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op while disabled).
    ///
    /// # Panics
    /// Panics on first record if the name violates the grammar or is
    /// already registered — see [`valid_metric_name`].
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.registered
            .call_once(|| register(self.name, |r| lock(&r.counters).push(self)));
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 (no-op while disabled).
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histograms and span timers
// ---------------------------------------------------------------------

/// A histogram over `u64` values with fixed power-of-two buckets (no
/// allocation, no locks). Used for sizes (delta facts per round, ball
/// sizes, operator cardinalities) and for microsecond durations via
/// [`Histogram::span`].
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: Once,
}

impl Histogram {
    /// A new histogram with a `dotted.metric.name`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            registered: Once::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one value (no-op while disabled).
    ///
    /// # Panics
    /// Panics on first record if the name violates the grammar or is
    /// already registered — see [`valid_metric_name`].
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.registered
            .call_once(|| register(self.name, |r| lock(&r.histograms).push(self)));
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let bucket = ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts an RAII span that records its elapsed time in
    /// **microseconds** when dropped. While disabled the span holds no
    /// clock reading and drops for free.
    #[inline]
    pub fn span(&'static self) -> Span {
        Span {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }
}

/// An RAII timer from [`Histogram::span`]; records on drop.
#[derive(Debug)]
pub struct Span {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Point-in-time summary of one histogram.
///
/// Quantiles are estimated from the power-of-two buckets by linear
/// interpolation: the value at rank `r` inside a bucket holding `b`
/// values over `[lo, hi]` is taken to be `lo + r·(hi − lo)/b`, with
/// `hi` clamped to the observed maximum. The estimate is exact when
/// values fill their bucket densely and never off by more than the
/// bucket width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate (interpolated).
    pub p50: u64,
    /// 95th-percentile estimate (interpolated).
    pub p95: u64,
    /// 99th-percentile estimate (interpolated).
    pub p99: u64,
    /// Raw bucket counts: bucket `i` holds values with bit-length `i`
    /// (bucket 0 holds exactly the zeros). Drives
    /// [`Snapshot::to_prometheus`] and external re-aggregation.
    pub buckets: Vec<u64>,
}

/// Interpolated quantile over pow2 `buckets` (see
/// [`HistogramSnapshot`] for the estimator).
fn bucket_quantile(q: f64, count: u64, max: u64, buckets: &[u64]) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        if seen + b >= rank {
            if i == 0 {
                return 0; // bucket 0 holds only the value 0
            }
            let lo = 1u64 << (i - 1);
            // The top bucket absorbs everything above, so its only
            // honest upper bound is the observed max; every bucket is
            // clamped there too (the max lives in the last nonempty one).
            let hi = if i == BUCKETS - 1 {
                max
            } else {
                ((1u64 << i) - 1).min(max)
            };
            let k = rank - seen; // 1-based rank within this bucket
            let est = lo as f64 + (k as f64 / b as f64) * (hi - lo) as f64;
            return est.round() as u64;
        }
        seen += b;
    }
    max
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// Summaries of every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Takes a snapshot of all metrics registered so far.
pub fn snapshot() -> Snapshot {
    let mut counters: Vec<(String, u64)> = lock(&REGISTRY.counters)
        .iter()
        .map(|c| (c.name.to_owned(), c.get()))
        .collect();
    counters.sort();
    let mut histograms: Vec<HistogramSnapshot> = lock(&REGISTRY.histograms)
        .iter()
        .map(|h| {
            let count = h.count.load(Ordering::Relaxed);
            let max = h.max.load(Ordering::Relaxed);
            let buckets: Vec<u64> = h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            HistogramSnapshot {
                name: h.name.to_owned(),
                count,
                sum: h.sum.load(Ordering::Relaxed),
                max,
                p50: bucket_quantile(0.50, count, max, &buckets),
                p95: bucket_quantile(0.95, count, max, &buckets),
                p99: bucket_quantile(0.99, count, max, &buckets),
                buckets,
            }
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot {
        counters,
        histograms,
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// `true` if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The JSON members of the snapshot, without enclosing braces —
    /// `"counters":{…},"histograms":{…}` — so callers can splice extra
    /// fields (the CLI adds `"command":…`) into one flat object.
    pub fn json_body(&self) -> String {
        let mut out = String::from("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        out.push('}');
        out
    }

    /// The whole snapshot as one single-line JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_body())
    }

    /// `(metric, value)` rows for plain-text rendering (histograms
    /// expand into `.count`/`.sum`/`.p50`/`.p95`/`.p99`/`.max` rows).
    /// Pair with `fmt_core::report::table(&["metric", "value"], &rows)`.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .counters
            .iter()
            .map(|(n, v)| vec![n.clone(), v.to_string()])
            .collect();
        for h in &self.histograms {
            rows.push(vec![format!("{}.count", h.name), h.count.to_string()]);
            rows.push(vec![format!("{}.sum", h.name), h.sum.to_string()]);
            rows.push(vec![format!("{}.p50", h.name), h.p50.to_string()]);
            rows.push(vec![format!("{}.p95", h.name), h.p95.to_string()]);
            rows.push(vec![format!("{}.p99", h.name), h.p99.to_string()]);
            rows.push(vec![format!("{}.max", h.name), h.max.to_string()]);
        }
        rows
    }

    /// Renders the snapshot in Prometheus text exposition format — the
    /// payload `fmtk --metrics-text` prints and a future `fmtk serve`
    /// will mount at `/metrics`. Dots in metric names become
    /// underscores; histograms expose cumulative `_bucket{le="…"}`
    /// series over the pow2 bounds (empty buckets elided), plus
    /// `_sum`, `_count`, and a `_max` gauge.
    pub fn to_prometheus(&self) -> String {
        let prom_name = |name: &str| name.replace('.', "_");
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                // Bucket i holds values of bit-length i, so its
                // inclusive upper bound is 2^i − 1 (bucket 0 holds 0).
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
            out.push_str(&format!("# TYPE {n}_max gauge\n{n}_max {}\n", h.max));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that enable it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        disable();
        reset();
        guard
    }

    static C1: Counter = Counter::new("test.c1");
    static C2: Counter = Counter::new("test.c2");
    static H1: Histogram = Histogram::new("test.h1");
    static HT: Histogram = Histogram::new("test.span_us");

    #[test]
    fn cheap_when_disabled() {
        let _g = locked();
        // Disabled: the add short-circuits before touching the atomic,
        // so the value stays zero and nothing registers.
        C1.add(41);
        assert_eq!(C1.get(), 0);
        H1.record(9);
        assert_eq!(H1.count.load(Ordering::Relaxed), 0);
        let span = HT.span();
        assert!(span.start.is_none(), "no clock read while disabled");
        drop(span);
        assert_eq!(HT.count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = locked();
        enable();
        C1.incr();
        C1.add(4);
        C2.add(7);
        let snap = snapshot();
        assert_eq!(snap.counter("test.c1"), Some(5));
        assert_eq!(snap.counter("test.c2"), Some(7));
        reset();
        assert_eq!(snapshot().counter("test.c1"), Some(0));
        disable();
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = locked();
        enable();
        for v in [0u64, 1, 1, 2, 3, 8, 100] {
            H1.record(v);
        }
        let snap = snapshot();
        let h = snap.histogram("test.h1").expect("registered");
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 115);
        assert_eq!(h.max, 100);
        // p50 is rank 4, the first of the two values in bucket [2, 3]:
        // interpolated 2 + (1/2)·1 = 2.5, rounded to 3.
        assert_eq!(h.p50, 3);
        // p95/p99 land on the lone 100, whose bucket [64, 127] clamps
        // its upper bound to the observed max.
        assert_eq!(h.p95, 100);
        assert_eq!(h.p99, 100);
        // Raw buckets ride along: bit-length 0, 1, 2, 4, 7 are hit.
        assert_eq!(h.buckets.iter().sum::<u64>(), 7);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[7], 1);
        disable();
    }

    static HDENSE: Histogram = Histogram::new("test.hdense");

    #[test]
    fn quantile_interpolation_on_dense_distribution() {
        // On the dense distribution 1..=100 the pow2 buckets are full,
        // so linear interpolation recovers the true quantiles exactly —
        // this pins the estimator.
        let _g = locked();
        enable();
        for v in 1..=100u64 {
            HDENSE.record(v);
        }
        let snap = snapshot();
        let h = snap.histogram("test.hdense").expect("registered");
        assert_eq!(h.p50, 50);
        assert_eq!(h.p95, 95);
        assert_eq!(h.p99, 99);
        assert_eq!(h.max, 100);
        disable();
    }

    #[test]
    fn quantiles_of_empty_and_singleton_histograms() {
        assert_eq!(bucket_quantile(0.5, 0, 0, &[0; BUCKETS]), 0);
        let mut one = [0u64; BUCKETS];
        one[4] = 1; // the single value 9
        assert_eq!(bucket_quantile(0.5, 1, 9, &one), 9);
        assert_eq!(bucket_quantile(0.99, 1, 9, &one), 9);
        // All-zero values: everything sits in bucket 0.
        let mut zeros = [0u64; BUCKETS];
        zeros[0] = 5;
        assert_eq!(bucket_quantile(0.99, 5, 0, &zeros), 0);
    }

    #[test]
    fn metric_name_grammar() {
        for good in ["a", "queries.datalog.rounds", "x_1.y_2", "0.9"] {
            assert!(valid_metric_name(good), "{good}");
        }
        for bad in ["", "Upper.case", "has space", "dash-ed", "unicode.µs"] {
            assert!(!valid_metric_name(bad), "{bad:?}");
        }
    }

    static BAD_NAME: Counter = Counter::new("Not-A-Valid-Name");

    #[test]
    #[should_panic(expected = "violates")]
    fn invalid_name_panics_at_registration() {
        let _g = locked();
        enable();
        BAD_NAME.add(1);
    }

    static DUP_A: Counter = Counter::new("test.duplicate");
    static DUP_B: Histogram = Histogram::new("test.duplicate");

    #[test]
    #[should_panic(expected = "duplicate obs metric name")]
    fn duplicate_name_panics_at_registration() {
        let _g = locked();
        enable();
        DUP_A.add(1);
        DUP_B.record(1);
    }

    static PC: Counter = Counter::new("test.prom.counter");
    static PH: Histogram = Histogram::new("test.prom.hist");

    #[test]
    fn prometheus_exposition_round_trips() {
        let _g = locked();
        enable();
        PC.add(12);
        for v in [0u64, 3, 200] {
            PH.record(v);
        }
        let text = snapshot().to_prometheus();
        disable();
        // The counter round-trips by name and value.
        assert!(text.contains("# TYPE test_prom_counter counter\n"));
        assert!(text.contains("test_prom_counter 12\n"));
        // The histogram exposes cumulative buckets ending at +Inf = count.
        assert!(text.contains("# TYPE test_prom_hist histogram\n"));
        assert!(text.contains("test_prom_hist_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("test_prom_hist_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("test_prom_hist_bucket{le=\"255\"} 3\n"));
        assert!(text.contains("test_prom_hist_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("test_prom_hist_sum 203\n"));
        assert!(text.contains("test_prom_hist_count 3\n"));
        assert!(text.contains("test_prom_hist_max 200\n"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("test_prom_hist_bucket{") {
                let v: u64 = rest.split('}').nth(1).unwrap().trim().parse().unwrap();
                assert!(v >= last, "{line}");
                last = v;
            }
        }
    }

    #[test]
    fn span_records_when_enabled() {
        let _g = locked();
        enable();
        {
            let _span = HT.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = snapshot();
        let h = snap.histogram("test.span_us").expect("registered");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 1_000, "2 ms is at least 1000 µs, got {}", h.sum);
        disable();
    }

    #[test]
    fn json_shape() {
        let _g = locked();
        enable();
        C1.add(3);
        H1.record(5);
        let snap = snapshot();
        let json = snap.to_json();
        assert!(!json.contains('\n'), "single line");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"test.c1\":3"), "{json}");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"count\":1"));
        // Balanced braces — a cheap structural validity check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        disable();
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tline"), "tab\\u0009line");
    }

    #[test]
    fn rows_cover_all_metrics() {
        let _g = locked();
        enable();
        C2.add(2);
        H1.record(4);
        let rows = snapshot().rows();
        assert!(rows.iter().any(|r| r[0] == "test.c2" && r[1] == "2"));
        assert!(rows.iter().any(|r| r[0] == "test.h1.count"));
        assert!(rows.iter().any(|r| r[0] == "test.h1.p50"));
        disable();
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        let _g = locked();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        C1.incr();
                    }
                });
            }
        });
        assert_eq!(snapshot().counter("test.c1"), Some(8000));
        disable();
    }
}
