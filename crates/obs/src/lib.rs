//! # fmt-obs
//!
//! Zero-dependency instrumentation for the finite model theory toolbox.
//!
//! Every engine hot path (EF-game search, FO evaluation, semi-naive
//! Datalog, neighborhood censuses, 0-1-law sampling) records its work
//! through this crate so that perf PRs can ship with before/after
//! numbers and `fmtk --stats` can show what an invocation actually did.
//!
//! The build environment is offline, so there is no `tracing`,
//! `prometheus`, or `once_cell` here — just `std` atomics:
//!
//! * [`Counter`] — a monotonic `AtomicU64`;
//! * [`Histogram`] — fixed power-of-two buckets plus count/sum/max,
//!   suitable for sizes and microsecond durations;
//! * [`Span`] — an RAII timer that records into a histogram on drop;
//! * a process-global registry, **disabled by default**: when disabled,
//!   every record path short-circuits on a single relaxed atomic load
//!   and touches nothing else (asserted by the `cheap_when_disabled`
//!   test), so instrumented engines pay no measurable cost.
//!
//! Metrics are `static`s declared next to the code they measure:
//!
//! ```
//! static POSITIONS: fmt_obs::Counter = fmt_obs::Counter::new("demo.positions");
//!
//! fmt_obs::enable();
//! POSITIONS.add(3);
//! let snap = fmt_obs::snapshot();
//! assert_eq!(snap.counter("demo.positions"), Some(3));
//! fmt_obs::reset();
//! fmt_obs::disable();
//! ```
//!
//! A metric registers itself in the global registry the first time it
//! records while enabled; [`snapshot`] returns everything registered so
//! far, sorted by name, and [`Snapshot::to_json`] renders a single-line
//! JSON object suitable for appending to `BENCH_*.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

/// Number of histogram buckets: bucket `i` counts values `v` with
/// `bit_length(v) == i`, i.e. bucket 0 holds `0`, bucket `i ≥ 1` holds
/// `2^(i-1) ..= 2^i - 1`; the last bucket absorbs everything above.
pub const BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(Vec::new()),
    histograms: Mutex::new(Vec::new()),
};

/// Turns recording on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off process-wide (already-recorded values are kept
/// until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every registered metric (registration itself is kept, so
/// names remain visible in subsequent snapshots).
pub fn reset() {
    for c in REGISTRY
        .counters
        .lock()
        .expect("obs registry poisoned")
        .iter()
    {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in REGISTRY
        .histograms
        .lock()
        .expect("obs registry poisoned")
        .iter()
    {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// A monotonic counter. Declare as a `static` next to the code it
/// measures; increments are relaxed atomic adds, skipped entirely while
/// the registry is disabled.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: Once,
}

impl Counter {
    /// A new counter with a `dotted.metric.name`.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op while disabled).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.registered.call_once(|| {
            REGISTRY
                .counters
                .lock()
                .expect("obs registry poisoned")
                .push(self);
        });
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 (no-op while disabled).
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histograms and span timers
// ---------------------------------------------------------------------

/// A histogram over `u64` values with fixed power-of-two buckets (no
/// allocation, no locks). Used for sizes (delta facts per round, ball
/// sizes, operator cardinalities) and for microsecond durations via
/// [`Histogram::span`].
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: Once,
}

impl Histogram {
    /// A new histogram with a `dotted.metric.name`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            registered: Once::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one value (no-op while disabled).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.registered.call_once(|| {
            REGISTRY
                .histograms
                .lock()
                .expect("obs registry poisoned")
                .push(self);
        });
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let bucket = ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts an RAII span that records its elapsed time in
    /// **microseconds** when dropped. While disabled the span holds no
    /// clock reading and drops for free.
    #[inline]
    pub fn span(&'static self) -> Span {
        Span {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }
}

/// An RAII timer from [`Histogram::span`]; records on drop.
#[derive(Debug)]
pub struct Span {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate (upper bound of the bucket holding the 50th
    /// percentile).
    pub p50: u64,
    /// 99th-percentile estimate (same bucket-upper-bound convention).
    pub p99: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// Summaries of every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Takes a snapshot of all metrics registered so far.
pub fn snapshot() -> Snapshot {
    let mut counters: Vec<(String, u64)> = REGISTRY
        .counters
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|c| (c.name.to_owned(), c.get()))
        .collect();
    counters.sort();
    let mut histograms: Vec<HistogramSnapshot> = REGISTRY
        .histograms
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|h| {
            let count = h.count.load(Ordering::Relaxed);
            let buckets: Vec<u64> = h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let quantile = |q: f64| -> u64 {
                if count == 0 {
                    return 0;
                }
                let rank = (q * count as f64).ceil() as u64;
                let mut seen = 0u64;
                for (i, &b) in buckets.iter().enumerate() {
                    seen += b;
                    if seen >= rank {
                        // Upper bound of bucket i (bucket 0 holds only 0).
                        return if i == 0 { 0 } else { (1u64 << i) - 1 };
                    }
                }
                u64::MAX
            };
            HistogramSnapshot {
                name: h.name.to_owned(),
                count,
                sum: h.sum.load(Ordering::Relaxed),
                max: h.max.load(Ordering::Relaxed),
                p50: quantile(0.50),
                p99: quantile(0.99),
            }
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot {
        counters,
        histograms,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// `true` if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The JSON members of the snapshot, without enclosing braces —
    /// `"counters":{…},"histograms":{…}` — so callers can splice extra
    /// fields (the CLI adds `"command":…`) into one flat object.
    pub fn json_body(&self) -> String {
        let mut out = String::from("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p99
            ));
        }
        out.push('}');
        out
    }

    /// The whole snapshot as one single-line JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_body())
    }

    /// `(metric, value)` rows for plain-text rendering (histograms
    /// expand into `.count`/`.sum`/`.p50`/`.max` rows). Pair with
    /// `fmt_core::report::table(&["metric", "value"], &rows)`.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .counters
            .iter()
            .map(|(n, v)| vec![n.clone(), v.to_string()])
            .collect();
        for h in &self.histograms {
            rows.push(vec![format!("{}.count", h.name), h.count.to_string()]);
            rows.push(vec![format!("{}.sum", h.name), h.sum.to_string()]);
            rows.push(vec![format!("{}.p50", h.name), h.p50.to_string()]);
            rows.push(vec![format!("{}.max", h.name), h.max.to_string()]);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that enable it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        disable();
        reset();
        guard
    }

    static C1: Counter = Counter::new("test.c1");
    static C2: Counter = Counter::new("test.c2");
    static H1: Histogram = Histogram::new("test.h1");
    static HT: Histogram = Histogram::new("test.span_us");

    #[test]
    fn cheap_when_disabled() {
        let _g = locked();
        // Disabled: the add short-circuits before touching the atomic,
        // so the value stays zero and nothing registers.
        C1.add(41);
        assert_eq!(C1.get(), 0);
        H1.record(9);
        assert_eq!(H1.count.load(Ordering::Relaxed), 0);
        let span = HT.span();
        assert!(span.start.is_none(), "no clock read while disabled");
        drop(span);
        assert_eq!(HT.count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = locked();
        enable();
        C1.incr();
        C1.add(4);
        C2.add(7);
        let snap = snapshot();
        assert_eq!(snap.counter("test.c1"), Some(5));
        assert_eq!(snap.counter("test.c2"), Some(7));
        reset();
        assert_eq!(snapshot().counter("test.c1"), Some(0));
        disable();
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = locked();
        enable();
        for v in [0u64, 1, 1, 2, 3, 8, 100] {
            H1.record(v);
        }
        let snap = snapshot();
        let h = snap.histogram("test.h1").expect("registered");
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 115);
        assert_eq!(h.max, 100);
        // Ranks: 0 | 1 1 | 2 3 | 8 | 100 → p50 is the 4th value (2),
        // whose bucket [2, 3] has upper bound 3.
        assert_eq!(h.p50, 3);
        // p99 lands in 100's bucket [64, 127].
        assert_eq!(h.p99, 127);
        disable();
    }

    #[test]
    fn span_records_when_enabled() {
        let _g = locked();
        enable();
        {
            let _span = HT.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = snapshot();
        let h = snap.histogram("test.span_us").expect("registered");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 1_000, "2 ms is at least 1000 µs, got {}", h.sum);
        disable();
    }

    #[test]
    fn json_shape() {
        let _g = locked();
        enable();
        C1.add(3);
        H1.record(5);
        let snap = snapshot();
        let json = snap.to_json();
        assert!(!json.contains('\n'), "single line");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"test.c1\":3"), "{json}");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"count\":1"));
        // Balanced braces — a cheap structural validity check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        disable();
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tline"), "tab\\u0009line");
    }

    #[test]
    fn rows_cover_all_metrics() {
        let _g = locked();
        enable();
        C2.add(2);
        H1.record(4);
        let rows = snapshot().rows();
        assert!(rows.iter().any(|r| r[0] == "test.c2" && r[1] == "2"));
        assert!(rows.iter().any(|r| r[0] == "test.h1.count"));
        assert!(rows.iter().any(|r| r[0] == "test.h1.p50"));
        disable();
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        let _g = locked();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        C1.incr();
                    }
                });
            }
        });
        assert_eq!(snapshot().counter("test.c1"), Some(8000));
        disable();
    }
}
