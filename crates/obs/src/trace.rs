//! Hierarchical structured tracing: spans, an event journal, exporters.
//!
//! The metrics in the crate root answer *how much* (counters,
//! histograms); this module answers *where and when*. A [`SpanGuard`]
//! marks a region of work; spans nest through a thread-local stack, so
//! a rule-application span recorded inside a round span inside an
//! evaluation span carries its full ancestry. Finished spans land in a
//! lock-sharded, bounded, global journal; [`stop`] drains it into a
//! [`Trace`] that can be exported as Chrome trace-event JSON (opens in
//! Perfetto or `chrome://tracing`) or folded-stack text (pipes into
//! `flamegraph.pl` / speedscope).
//!
//! Work that hops threads keeps its ancestry explicitly: capture
//! [`current_parent`] before spawning and re-install it in the worker
//! with [`with_parent`]. `fmt_structures::par::fan_out` does this
//! automatically, so engine code that parallelizes through `fan_out`
//! needs no extra plumbing.
//!
//! Tracing is off by default. The [`trace_span!`](crate::trace_span)
//! and [`trace_instant!`](crate::trace_instant) macros check
//! [`enabled`] — one relaxed atomic load — before evaluating any field
//! expression, so instrumented hot paths cost almost nothing when no
//! trace is being recorded.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{json_escape, lock};

/// Journal shard count. Sharded by thread lane, so concurrent workers
/// rarely contend on the same mutex.
const SHARDS: usize = 16;

/// Default journal capacity (events). Roughly 100 bytes/event, so the
/// default bounds the journal near 100 MiB — far above any bench run,
/// but a hard stop against a runaway loop with tracing left on.
const DEFAULT_CAPACITY: u64 = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicU64 = AtomicU64::new(DEFAULT_CAPACITY);
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);
static JOURNAL: [Mutex<Vec<Rec>>; SHARDS] = [const { Mutex::new(Vec::new()) }; SHARDS];

thread_local! {
    /// Innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Lazily-assigned display lane (Chrome `tid`) for this thread.
    static LANE: Cell<u64> = const { Cell::new(u64::MAX) };
}

fn lane() -> u64 {
    LANE.with(|l| {
        if l.get() == u64::MAX {
            l.set(NEXT_LANE.fetch_add(1, Ordering::Relaxed));
        }
        l.get()
    })
}

/// `true` while a trace is being recorded. One relaxed atomic load —
/// the only tracing cost paid on hot paths when recording is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording: clears the journal and drop counters, pins the
/// trace epoch (timestamps are microseconds since this instant), and
/// enables span capture. Spans already open keep working as parents
/// but were not themselves recorded.
pub fn start() {
    let mut epoch = lock(&EPOCH);
    for shard in &JOURNAL {
        lock(shard).clear();
    }
    COUNT.store(0, Ordering::SeqCst);
    DROPPED.store(0, Ordering::SeqCst);
    *epoch = Some(Instant::now());
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording and drains the journal into a [`Trace`]. Spans
/// still open when `stop` runs are discarded (their guards see tracing
/// disabled at drop time).
pub fn stop() -> Trace {
    ENABLED.store(false, Ordering::SeqCst);
    let epoch = lock(&EPOCH).take();
    collect(epoch, true)
}

/// Snapshots the journal *without* stopping the recording or draining
/// events — the view a subcommand uses to analyze its own spans (e.g.
/// `fmtk datalog --explain`) while a `--trace` capture is still live.
pub fn peek() -> Trace {
    let epoch = *lock(&EPOCH);
    collect(epoch, false)
}

/// Caps the journal at `capacity` events; beyond it, new events are
/// counted in [`Trace::dropped`] instead of recorded. Applies from the
/// next [`start`].
pub fn set_capacity(capacity: u64) {
    CAPACITY.store(capacity, Ordering::SeqCst);
}

fn collect(epoch: Option<Instant>, drain: bool) -> Trace {
    let Some(epoch) = epoch else {
        return Trace {
            events: Vec::new(),
            dropped: 0,
        };
    };
    let mut events = Vec::new();
    for shard in &JOURNAL {
        let mut guard = lock(shard);
        let recs: Vec<Rec> = if drain {
            std::mem::take(&mut guard)
        } else {
            guard.clone()
        };
        drop(guard);
        for rec in recs {
            let ts_us = rec
                .start
                .checked_duration_since(epoch)
                .map_or(0, |d| d.as_micros() as u64);
            events.push(TraceEvent {
                id: rec.id,
                parent: rec.parent,
                lane: rec.lane,
                name: rec.name,
                ts_us,
                dur_us: rec.dur_us,
                fields: rec.fields,
            });
        }
    }
    events.sort_by_key(|e| (e.ts_us, e.id));
    Trace {
        events,
        dropped: DROPPED.load(Ordering::SeqCst),
    }
}

/// A finished span or instant event waiting in the journal. Times stay
/// as `Instant`s until drain so the hot path never does clock math.
#[derive(Debug, Clone)]
struct Rec {
    id: u64,
    parent: u64,
    lane: u64,
    name: &'static str,
    start: Instant,
    /// `Some(duration)` for spans, `None` for instant events.
    dur_us: Option<u64>,
    fields: Vec<(&'static str, FieldValue)>,
}

fn push(rec: Rec) {
    let n = COUNT.fetch_add(1, Ordering::Relaxed);
    if n >= CAPACITY.load(Ordering::Relaxed) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let shard = (rec.lane as usize) % SHARDS;
    lock(&JOURNAL[shard]).push(rec);
}

/// The value of a span field. Engines attach small facts — a rule
/// index, a delta size, a probe count — to the span that did the work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes, indices; `bool` maps to 0/1).
    U64(u64),
    /// A short label (engine name, budget resource, rule text).
    Str(String),
}

impl FieldValue {
    /// The integer payload, if this is a [`FieldValue::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            FieldValue::Str(_) => None,
        }
    }

    /// The string payload, if this is a [`FieldValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::U64(_) => None,
            FieldValue::Str(s) => Some(s),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v.into())
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::U64(v.into())
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// RAII guard for an open span: created by
/// [`trace_span!`](crate::trace_span), records the span into the
/// journal when dropped. While the guard lives, spans opened on the
/// same thread (or under a propagated [`ParentHandle`]) become its
/// children.
#[must_use = "a span measures until its guard drops; an unbound guard ends immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Opens a span as a child of the thread's current span. Prefer
    /// [`trace_span!`](crate::trace_span), which skips field
    /// evaluation when tracing is off.
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { inner: None };
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT.with(|c| c.replace(id));
        SpanGuard {
            inner: Some(ActiveSpan {
                id,
                parent,
                name,
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// A no-op guard, used when tracing is disabled.
    pub fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// Attaches a `key = value` field to the span. No-op on a disabled
    /// guard, so callers can record unconditionally.
    pub fn record_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(s) = &mut self.inner {
            s.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        let dur_us = s.start.elapsed().as_micros() as u64;
        // Restore the parent even if recording stopped mid-span: the
        // thread-local stack must stay balanced.
        CURRENT.with(|c| c.set(s.parent));
        if enabled() {
            push(Rec {
                id: s.id,
                parent: s.parent,
                lane: lane(),
                name: s.name,
                start: s.start,
                dur_us: Some(dur_us),
                fields: s.fields,
            });
        }
    }
}

/// Records a zero-duration event under the current span. Prefer
/// [`trace_instant!`](crate::trace_instant).
pub fn instant(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    push(Rec {
        id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
        parent: CURRENT.with(std::cell::Cell::get),
        lane: lane(),
        name,
        start: Instant::now(),
        dur_us: None,
        fields,
    });
}

/// A capture of a thread's current span, for re-installing on another
/// thread so cross-thread work keeps its ancestry. Cheap to copy.
#[derive(Debug, Clone, Copy)]
pub struct ParentHandle {
    id: u64,
}

/// Captures the calling thread's innermost open span as a
/// [`ParentHandle`]. Pair with [`with_parent`] in the worker.
pub fn current_parent() -> ParentHandle {
    ParentHandle {
        id: CURRENT.with(std::cell::Cell::get),
    }
}

/// Runs `f` with `parent` installed as the current span, so spans `f`
/// opens become its children. Restores the previous current span
/// afterwards (also on panic).
pub fn with_parent<R>(parent: ParentHandle, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(parent.id)));
    f()
}

/// One recorded event: a completed span (`dur_us = Some(..)`) or an
/// instant (`dur_us = None`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Unique event id (process-global, never 0).
    pub id: u64,
    /// Id of the enclosing span at creation time (0 = root).
    pub parent: u64,
    /// Display lane — distinct per OS thread, `tid` in Chrome JSON.
    pub lane: u64,
    /// Span name, e.g. `"datalog.round"`.
    pub name: &'static str,
    /// Start time, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds for spans; `None` for instants.
    pub dur_us: Option<u64>,
    /// Key-value fields attached by the instrumentation site.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Looks up a field by key (first occurrence).
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A drained trace: every recorded event, sorted by start time.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The recorded events in timestamp order.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the journal hit its capacity.
    pub dropped: u64,
}

impl Trace {
    /// Renders the trace as Chrome trace-event JSON — load the file in
    /// [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
    /// Spans become `ph:"X"` complete events, instants `ph:"i"`; span
    /// fields plus `id`/`parent` ride in `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
                json_escape(e.name),
                if e.dur_us.is_some() { 'X' } else { 'i' },
                e.ts_us,
            );
            if let Some(d) = e.dur_us {
                let _ = write!(out, "\"dur\":{d},");
            } else {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(
                out,
                "\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
                e.lane, e.id, e.parent
            );
            for (k, v) in &e.fields {
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(out, ",\"{}\":{n}", json_escape(k));
                    }
                    FieldValue::Str(s) => {
                        let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), json_escape(s));
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the trace as folded-stack text (`root;child;leaf 123`
    /// per line, values = self-time in µs), the input format of
    /// `flamegraph.pl` and speedscope. Instants are skipped; a span's
    /// self-time is its duration minus its direct children's durations,
    /// clamped at zero because parallel children can overlap and sum
    /// past their parent.
    pub fn to_folded(&self) -> String {
        let spans: BTreeMap<u64, &TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.dur_us.is_some())
            .map(|e| (e.id, e))
            .collect();
        let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
        for e in spans.values() {
            *child_time.entry(e.parent).or_default() += e.dur_us.unwrap_or(0);
        }
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for e in spans.values() {
            let self_us = e
                .dur_us
                .unwrap_or(0)
                .saturating_sub(child_time.get(&e.id).copied().unwrap_or(0));
            // Root-to-leaf path. Parent ids are always smaller than
            // child ids, so this walk terminates.
            let mut path = vec![e.name];
            let mut at = e.parent;
            while let Some(p) = spans.get(&at) {
                path.push(p.name);
                at = p.parent;
            }
            path.reverse();
            *folded.entry(path.join(";")).or_default() += self_us;
        }
        let mut out = String::new();
        for (path, us) in folded {
            let _ = writeln!(out, "{path} {us}");
        }
        out
    }
}

/// Opens a hierarchical span and returns its [`SpanGuard`]; the span
/// ends (and is journaled) when the guard drops.
///
/// ```
/// # fmt_obs::trace::start();
/// let mut span = fmt_obs::trace_span!("datalog.round", round = 3u64, delta = 17usize);
/// // ... do the round's work ...
/// span.record_field("new", 5u64); // fields can be added as results arrive
/// drop(span);
/// # fmt_obs::trace::stop();
/// ```
///
/// Field expressions are **not evaluated** when tracing is off — the
/// whole macro is one relaxed atomic load in that case.
#[macro_export]
macro_rules! trace_span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            #[allow(unused_mut)]
            let mut __span = $crate::trace::SpanGuard::enter($name);
            $(__span.record_field(stringify!($key), $value);)*
            __span
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

/// Records a zero-duration event under the current span — used for
/// point occurrences like budget exhaustion or cancellation. Field
/// expressions are not evaluated when tracing is off.
#[macro_export]
macro_rules! trace_instant {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            let __fields: ::std::vec::Vec<(&'static str, $crate::trace::FieldValue)> =
                ::std::vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*];
            $crate::trace::instant($name, __fields);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state is process-global; tests that record serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record_fields() {
        let _g = lock(&TEST_LOCK);
        start();
        {
            let _outer = crate::trace_span!("outer", size = 4u64);
            {
                let _inner = crate::trace_span!("inner", label = "abc");
            }
            crate::trace_instant!("tick", n = 1u64);
        }
        let trace = stop();
        assert_eq!(trace.dropped, 0);
        let outer = trace.events.iter().find(|e| e.name == "outer").unwrap();
        let inner = trace.events.iter().find(|e| e.name == "inner").unwrap();
        let tick = trace.events.iter().find(|e| e.name == "tick").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(tick.parent, outer.id);
        assert!(inner.dur_us.is_some() && tick.dur_us.is_none());
        assert_eq!(outer.field("size"), Some(&FieldValue::U64(4)));
        assert_eq!(
            inner.field("label"),
            Some(&FieldValue::Str("abc".to_string()))
        );
        // Spans close inner-first, but timestamps sort outer-first.
        assert!(outer.ts_us <= inner.ts_us);
    }

    #[test]
    fn disabled_tracing_skips_field_evaluation() {
        let _g = lock(&TEST_LOCK);
        assert!(!enabled());
        let mut evaluated = false;
        {
            let _s = crate::trace_span!(
                "never",
                x = {
                    evaluated = true;
                    1u64
                }
            );
        }
        crate::trace_instant!(
            "never",
            x = {
                evaluated = true;
                1u64
            }
        );
        assert!(
            !evaluated,
            "fields must not be evaluated when tracing is off"
        );
    }

    #[test]
    fn journal_is_bounded_and_counts_drops() {
        let _g = lock(&TEST_LOCK);
        set_capacity(3);
        start();
        for _ in 0..8 {
            crate::trace_instant!("e");
        }
        let trace = stop();
        set_capacity(DEFAULT_CAPACITY);
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.dropped, 5);
    }

    #[test]
    fn cross_thread_parent_propagation() {
        let _g = lock(&TEST_LOCK);
        start();
        let outer_id;
        {
            let _outer = crate::trace_span!("spawner");
            let handle = current_parent();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    with_parent(handle, || {
                        let _w = crate::trace_span!("worker");
                    });
                    // Outside with_parent the thread has no current span.
                    let _orphan = crate::trace_span!("orphan");
                });
            });
            outer_id = peek()
                .events
                .iter()
                .find(|e| e.name == "worker")
                .map(|e| e.parent);
        }
        let trace = stop();
        let spawner = trace.events.iter().find(|e| e.name == "spawner").unwrap();
        let worker = trace.events.iter().find(|e| e.name == "worker").unwrap();
        let orphan = trace.events.iter().find(|e| e.name == "orphan").unwrap();
        assert_eq!(worker.parent, spawner.id);
        assert_eq!(outer_id, Some(spawner.id));
        assert_eq!(orphan.parent, 0);
        assert_ne!(worker.lane, spawner.lane);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let _g = lock(&TEST_LOCK);
        start();
        {
            let _s = crate::trace_span!("phase", engine = "indexed", n = 2u64);
            crate::trace_instant!("budget.exhausted", resource = "fuel");
        }
        let json = stop().to_chrome_json();
        let doc = crate::json::parse(&json).expect("chrome trace must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        let span = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("phase"))
            .unwrap();
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert!(span.get("dur").unwrap().as_u64().is_some());
        assert_eq!(
            span.get("args").unwrap().get("engine").unwrap().as_str(),
            Some("indexed")
        );
        let inst = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("budget.exhausted"))
            .unwrap();
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn folded_export_computes_self_time() {
        // Built by hand so durations are exact.
        let ev = |id, parent, name: &'static str, dur| TraceEvent {
            id,
            parent,
            lane: 0,
            name,
            ts_us: id,
            dur_us: Some(dur),
            fields: Vec::new(),
        };
        let trace = Trace {
            events: vec![
                ev(1, 0, "eval", 100),
                ev(2, 1, "round", 60),
                ev(3, 2, "rule", 25),
                ev(4, 2, "rule", 25),
                // Parallel children may exceed the parent: clamps to 0.
                ev(5, 1, "par", 30),
                ev(6, 5, "chunk", 20),
                ev(7, 5, "chunk", 20),
            ],
            dropped: 0,
        };
        let folded = trace.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "eval 10",
                "eval;par 0",
                "eval;par;chunk 40",
                "eval;round 10",
                "eval;round;rule 50",
            ]
        );
    }

    #[test]
    fn stop_discards_open_spans_and_peek_sees_closed_ones() {
        let _g = lock(&TEST_LOCK);
        start();
        let open = crate::trace_span!("open");
        {
            let _closed = crate::trace_span!("closed");
        }
        let mid = peek();
        assert!(mid.events.iter().any(|e| e.name == "closed"));
        assert!(!mid.events.iter().any(|e| e.name == "open"));
        let trace = stop();
        drop(open); // dropped after stop: discarded
        assert!(trace.events.iter().all(|e| e.name != "open"));
        assert!(stop().events.is_empty()); // journal already drained
    }
}
