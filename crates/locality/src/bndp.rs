//! The Bounded Number of Degrees Property (BNDP), Definition 3.3.
//!
//! A graph query `Q` has the BNDP if there is `f_Q : ℕ → ℕ` such that
//! whenever all in/out-degrees of `G` are ≤ k, the *number of distinct*
//! in/out-degrees of `Q(G)` is at most `f_Q(k)`. Every FO-definable
//! query has the BNDP (Theorem 3.4), so a family of inputs with a fixed
//! degree bound whose outputs realize ever more degrees witnesses
//! non-FO-definability.
//!
//! The paper's two canonical witnesses are implemented as experiments:
//! transitive closure on successor chains (`degs ⊆ {0,1}` in, `n`
//! distinct degrees out) and same-generation on full binary trees
//! (degrees `1, 2, 4, …, 2^d` out).

use fmt_structures::{RelId, Structure};
use std::collections::BTreeSet;

/// The set of in-degrees of a binary relation: `in(G)` in the paper.
pub fn in_degrees(s: &Structure, rel: RelId) -> BTreeSet<usize> {
    s.domain().map(|v| s.in_degree(rel, v)).collect()
}

/// The set of out-degrees of a binary relation: `out(G)`.
pub fn out_degrees(s: &Structure, rel: RelId) -> BTreeSet<usize> {
    s.domain().map(|v| s.out_degree(rel, v)).collect()
}

/// `degs(G) = in(G) ∪ out(G)` — the degree spectrum.
pub fn degree_spectrum(s: &Structure, rel: RelId) -> BTreeSet<usize> {
    let mut d = in_degrees(s, rel);
    d.extend(out_degrees(s, rel));
    d
}

/// Maximum in/out-degree, i.e. `max(degs(G))` (0 for edgeless graphs).
pub fn max_degree(s: &Structure, rel: RelId) -> usize {
    degree_spectrum(s, rel).into_iter().max().unwrap_or(0)
}

/// One data point of a BNDP experiment: a structure in a family, its
/// input degree bound, and the size of the query output's degree
/// spectrum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BndpObservation {
    /// Domain size of the input.
    pub input_size: u32,
    /// `max(degs(G))` of the input.
    pub input_max_degree: usize,
    /// `|degs(Q(G))|` of the output.
    pub output_spectrum_size: usize,
    /// The output degree spectrum itself (for reporting).
    pub output_spectrum: BTreeSet<usize>,
}

/// Profiles a graph→graph query along a family of inputs.
///
/// `query` receives each input and must return a structure with a binary
/// relation `out_rel` (typically over the graph signature).
pub fn bndp_profile(
    family: &[Structure],
    in_rel: RelId,
    out_rel: RelId,
    mut query: impl FnMut(&Structure) -> Structure,
) -> Vec<BndpObservation> {
    family
        .iter()
        .map(|s| {
            let out = query(s);
            let spectrum = degree_spectrum(&out, out_rel);
            BndpObservation {
                input_size: s.size(),
                input_max_degree: max_degree(s, in_rel),
                output_spectrum_size: spectrum.len(),
                output_spectrum: spectrum,
            }
        })
        .collect()
}

/// Decides whether a profile **witnesses a BNDP violation**: the input
/// degree bound stays constant along the family while the output
/// spectrum size strictly increases (so no single `f_Q(k)` can bound
/// it). Requires at least three data points to call it a trend.
pub fn witnesses_bndp_violation(profile: &[BndpObservation]) -> bool {
    if profile.len() < 3 {
        return false;
    }
    let k = profile[0].input_max_degree;
    profile.iter().all(|o| o.input_max_degree <= k)
        && profile
            .windows(2)
            .all(|w| w[1].output_spectrum_size > w[0].output_spectrum_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::{builders, Signature, StructureBuilder};

    /// Reference transitive closure (graph → graph) for the tests.
    #[allow(clippy::needless_range_loop)] // Floyd–Warshall reads clearest with indices
    fn tc(s: &Structure) -> Structure {
        let e = s
            .signature()
            .relation("E")
            .or_else(|| s.signature().relation("S"))
            .unwrap();
        let n = s.size() as usize;
        let mut reach = vec![vec![false; n]; n];
        for t in s.rel(e).iter() {
            reach[t[0] as usize][t[1] as usize] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        let sig = Signature::graph();
        let eo = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig, s.size());
        for i in 0..n {
            for j in 0..n {
                if reach[i][j] {
                    b.add(eo, &[i as u32, j as u32]).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn successor_chain_spectra() {
        // The paper's warm-up: S_n has degs ⊆ {0,1}; TC(S_n) realizes
        // every in/out degree in {0, …, n−1}.
        let s = builders::successor_chain(6);
        let r = s.signature().relation("S").unwrap();
        assert_eq!(degree_spectrum(&s, r), BTreeSet::from([0usize, 1]));
        let out = tc(&s);
        let e = out.signature().relation("E").unwrap();
        let spec = degree_spectrum(&out, e);
        assert_eq!(spec, (0..6usize).collect::<BTreeSet<_>>());
    }

    #[test]
    fn tc_on_chains_violates_bndp() {
        let family: Vec<Structure> = (4..10).map(builders::successor_chain).collect();
        let in_rel = family[0].signature().relation("S").unwrap();
        let out_rel = Signature::graph().relation("E").unwrap();
        let profile = bndp_profile(&family, in_rel, out_rel, tc);
        assert!(witnesses_bndp_violation(&profile));
        // Input bound stays at 1, output spectrum grows linearly.
        for (i, o) in profile.iter().enumerate() {
            assert_eq!(o.input_max_degree, 1);
            assert_eq!(o.output_spectrum_size, i + 4);
        }
    }

    #[test]
    fn identity_query_respects_bndp() {
        let family: Vec<Structure> = (4..10).map(builders::directed_path).collect();
        let e = Signature::graph().relation("E").unwrap();
        let profile = bndp_profile(&family, e, e, Clone::clone);
        assert!(!witnesses_bndp_violation(&profile));
    }

    #[test]
    fn degree_sets() {
        let s = builders::full_binary_tree(2);
        let e = s.signature().relation("E").unwrap();
        assert_eq!(in_degrees(&s, e), BTreeSet::from([0usize, 1]));
        assert_eq!(out_degrees(&s, e), BTreeSet::from([0usize, 2]));
        assert_eq!(degree_spectrum(&s, e), BTreeSet::from([0usize, 1, 2]));
        assert_eq!(max_degree(&s, e), 2);
    }

    #[test]
    fn short_profiles_are_not_trends() {
        let family: Vec<Structure> = (4..6).map(builders::successor_chain).collect();
        let in_rel = family[0].signature().relation("S").unwrap();
        let out_rel = Signature::graph().relation("E").unwrap();
        let profile = bndp_profile(&family, in_rel, out_rel, tc);
        assert!(!witnesses_bndp_violation(&profile));
    }
}
