//! Neighborhood isomorphism types.
//!
//! The threshold-Hanf machinery (Thm. 3.10) and the bounded-degree
//! evaluation algorithm (Thm. 3.11) both work with the *set of
//! isomorphism types* of radius-`r` neighborhoods, `N(k, r)` in the
//! paper's notation. [`TypeRegistry`] interns pointed neighborhoods by
//! canonical key so that types become small integer ids, and
//! [`TypeCensus`] counts how many elements of a structure realize each
//! type.

use crate::ball::Neighborhood;
use crate::gaifman::GaifmanGraph;
use fmt_structures::canon::CanonKey;
use fmt_structures::{Elem, Structure};
use std::collections::HashMap;

/// Distinct neighborhood types interned (across all registries).
static OBS_TYPES_INTERNED: fmt_obs::Counter = fmt_obs::Counter::new("locality.types_interned");
/// Censuses computed.
static OBS_CENSUSES: fmt_obs::Counter = fmt_obs::Counter::new("locality.censuses");
/// Elements per census bucket (how many realize each type).
static OBS_BUCKET_SIZE: fmt_obs::Histogram = fmt_obs::Histogram::new("locality.census_bucket");

/// Identifier of an interned neighborhood type within a
/// [`TypeRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

/// Interns pointed structures (neighborhoods) by isomorphism type.
///
/// Equal [`TypeId`]s ⟺ pointed-isomorphic neighborhoods. Keys are the
/// exact canonical forms from [`fmt_structures::canon`], so there are no
/// false merges; a representative of each type is retained for
/// inspection.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    by_key: HashMap<CanonKey, TypeId>,
    reps: Vec<Neighborhood>,
}

impl TypeRegistry {
    /// An empty registry.
    pub fn new() -> TypeRegistry {
        TypeRegistry::default()
    }

    /// Interns a neighborhood, returning its type id.
    pub fn intern(&mut self, n: &Neighborhood) -> TypeId {
        let key = n.canonical_key();
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        OBS_TYPES_INTERNED.incr();
        let id = TypeId(self.reps.len() as u32);
        self.by_key.insert(key, id);
        self.reps.push(n.clone());
        id
    }

    /// Looks up a neighborhood's type without interning; `None` if the
    /// type has not been seen.
    pub fn get(&self, n: &Neighborhood) -> Option<TypeId> {
        self.by_key.get(&n.canonical_key()).copied()
    }

    /// The retained representative of a type.
    pub fn representative(&self, id: TypeId) -> &Neighborhood {
        &self.reps[id.0 as usize]
    }

    /// Number of distinct types interned so far.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// `true` if no types have been interned.
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }
}

/// The census of radius-`r` neighborhood types of single elements in one
/// structure: how many elements realize each type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeCensus {
    /// `counts[τ]` = number of elements whose neighborhood has type `τ`
    /// (indexed by [`TypeId`] within the registry used to build it).
    counts: HashMap<TypeId, usize>,
    /// The type of each element.
    element_types: Vec<TypeId>,
    /// The radius used.
    pub radius: u32,
}

impl TypeCensus {
    /// Computes the census of `s` at radius `r`, interning types into
    /// `reg` (types are comparable across structures censused with the
    /// same registry).
    pub fn compute(s: &Structure, r: u32, reg: &mut TypeRegistry) -> TypeCensus {
        let g = GaifmanGraph::new(s);
        Self::compute_with_gaifman(s, &g, r, reg)
    }

    /// Like [`TypeCensus::compute`], reusing a prebuilt Gaifman graph.
    ///
    /// Uses a [`crate::ball::NeighborhoodExtractor`] so that, for
    /// bounded-degree structures and fixed radius, the whole census is
    /// a **linear** pass — the property Theorem 3.11 relies on.
    pub fn compute_with_gaifman(
        s: &Structure,
        g: &GaifmanGraph,
        r: u32,
        reg: &mut TypeRegistry,
    ) -> TypeCensus {
        let mut span = fmt_obs::trace_span!("locality.census", radius = r, elements = s.size());
        let extractor = crate::ball::NeighborhoodExtractor::new(s, g);
        let mut counts: HashMap<TypeId, usize> = HashMap::new();
        let mut element_types = Vec::with_capacity(s.size() as usize);
        for v in s.domain() {
            let n = extractor.neighborhood(&[v], r);
            let id = reg.intern(&n);
            *counts.entry(id).or_insert(0) += 1;
            element_types.push(id);
        }
        OBS_CENSUSES.incr();
        for &c in counts.values() {
            OBS_BUCKET_SIZE.record(c as u64);
        }
        span.record_field("types", counts.len());
        TypeCensus {
            counts,
            element_types,
            radius: r,
        }
    }

    /// Count of elements realizing type `τ` (0 if none).
    pub fn count(&self, t: TypeId) -> usize {
        self.counts.get(&t).copied().unwrap_or(0)
    }

    /// The type of element `v`.
    pub fn type_of(&self, v: Elem) -> TypeId {
        self.element_types[v as usize]
    }

    /// Iterates over `(type, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, usize)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// Number of distinct types realized.
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// Total number of elements censused.
    pub fn total(&self) -> usize {
        self.element_types.len()
    }

    /// Exact equality of censuses — the structural core of `G ⇆ᵣ G′`
    /// for equal-size structures: a degree-preserving bijection sending
    /// each node to a node of the same neighborhood type exists iff the
    /// censuses agree.
    pub fn same_as(&self, other: &TypeCensus) -> bool {
        self.radius == other.radius && self.counts == other.counts
    }

    /// Threshold equality (the `⇆*ₘ,ᵣ` of Thm. 3.10): per type, counts
    /// are equal or both at least `m`.
    pub fn same_up_to_threshold(&self, other: &TypeCensus, m: usize) -> bool {
        if self.radius != other.radius {
            return false;
        }
        let keys: std::collections::HashSet<TypeId> = self
            .counts
            .keys()
            .chain(other.counts.keys())
            .copied()
            .collect();
        keys.into_iter().all(|t| {
            let (a, b) = (self.count(t), other.count(t));
            a == b || (a >= m && b >= m)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn path_census() {
        // Path of 10 vertices at radius 1: three types — left end, right
        // end... actually both ends have the same pointed type, so two
        // types: endpoint (ball of 2) and interior (ball of 3).
        let s = builders::undirected_path(10);
        let mut reg = TypeRegistry::new();
        let c = TypeCensus::compute(&s, 1, &mut reg);
        assert_eq!(c.num_types(), 2);
        assert_eq!(c.total(), 10);
        let endpoint_type = c.type_of(0);
        assert_eq!(c.type_of(9), endpoint_type);
        assert_eq!(c.count(endpoint_type), 2);
        assert_eq!(c.count(c.type_of(5)), 8);
    }

    #[test]
    fn radius_widens_types() {
        // At radius 2 a 10-path has three types: endpoint, next-to-end,
        // interior.
        let s = builders::undirected_path(10);
        let mut reg = TypeRegistry::new();
        let c = TypeCensus::compute(&s, 2, &mut reg);
        assert_eq!(c.num_types(), 3);
    }

    #[test]
    fn cycle_census_single_type() {
        let s = builders::undirected_cycle(9);
        let mut reg = TypeRegistry::new();
        let c = TypeCensus::compute(&s, 2, &mut reg);
        assert_eq!(c.num_types(), 1);
        assert_eq!(c.iter().next().unwrap().1, 9);
    }

    #[test]
    fn shared_registry_comparability() {
        // The paper's Hanf example: C_m ⊎ C_m and C_2m have identical
        // censuses for r small enough.
        let m = 8;
        let two = builders::copies(&builders::undirected_cycle(m), 2);
        let one = builders::undirected_cycle(2 * m);
        let mut reg = TypeRegistry::new();
        let r = 3; // m > 2r + 1
        let ca = TypeCensus::compute(&two, r, &mut reg);
        let cb = TypeCensus::compute(&one, r, &mut reg);
        assert!(ca.same_as(&cb));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn census_differs_when_radius_wraps() {
        // With r large enough that a ball wraps around C_m but not C_2m,
        // the censuses differ.
        let m = 5;
        let two = builders::copies(&builders::undirected_cycle(m), 2);
        let one = builders::undirected_cycle(2 * m);
        let mut reg = TypeRegistry::new();
        let r = 3; // 2r+1 = 7 > m = 5: balls wrap in C_5
        let ca = TypeCensus::compute(&two, r, &mut reg);
        let cb = TypeCensus::compute(&one, r, &mut reg);
        assert!(!ca.same_as(&cb));
    }

    #[test]
    fn threshold_equality() {
        // Chains of different lengths: interior-type counts differ but
        // both exceed a small threshold; endpoint counts are equal.
        let a = builders::undirected_path(20);
        let b = builders::undirected_path(30);
        let mut reg = TypeRegistry::new();
        let ca = TypeCensus::compute(&a, 1, &mut reg);
        let cb = TypeCensus::compute(&b, 1, &mut reg);
        assert!(!ca.same_as(&cb));
        assert!(ca.same_up_to_threshold(&cb, 10));
        assert!(!ca.same_up_to_threshold(&cb, 25));
    }

    #[test]
    fn registry_representatives() {
        let s = builders::undirected_path(6);
        let mut reg = TypeRegistry::new();
        let c = TypeCensus::compute(&s, 1, &mut reg);
        let t = c.type_of(0);
        let rep = reg.representative(t);
        assert_eq!(rep.size(), 2); // endpoint ball at radius 1
        assert!(!reg.is_empty());
        assert_eq!(reg.len(), 2);
    }
}
