//! Balls and neighborhoods: `B_r^G(ā)` and `N_r^G(ā)`.
//!
//! For `ā = (a₁, …, aₘ)` the radius-`r` ball is
//! `B_r(ā) = {b | d(ā, b) ≤ r}` (distance in the Gaifman graph), and the
//! `r`-neighborhood `N_r(ā)` is the substructure induced by `B_r(ā)`
//! **with `ā` as distinguished elements**: isomorphisms between
//! neighborhoods must map `aᵢ ↦ bᵢ`.

use crate::gaifman::GaifmanGraph;
use fmt_structures::{Elem, Structure};

/// Balls computed (full-scan `ball` and amortized extractor alike).
static OBS_BALLS: fmt_obs::Counter = fmt_obs::Counter::new("locality.balls_expanded");
/// Elements per computed ball.
static OBS_BALL_SIZE: fmt_obs::Histogram = fmt_obs::Histogram::new("locality.ball_size");

/// The radius-`r` ball around the tuple `centers`, as a sorted element
/// list.
pub fn ball(g: &GaifmanGraph, centers: &[Elem], r: u32) -> Vec<Elem> {
    let dist = g.distances_from(centers);
    let out: Vec<Elem> = (0..g.size()).filter(|&v| dist[v as usize] <= r).collect();
    OBS_BALLS.incr();
    OBS_BALL_SIZE.record(out.len() as u64);
    out
}

/// An extracted `r`-neighborhood: the induced substructure together with
/// the relocated distinguished tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighborhood {
    /// The induced substructure on the ball (domain renumbered
    /// `0..ball.len()`).
    pub structure: Structure,
    /// The distinguished tuple, renumbered into the new domain
    /// (`distinguished[i]` is the image of `centers[i]`).
    pub distinguished: Vec<Elem>,
    /// The mapping `new element → old element`.
    pub back_map: Vec<Elem>,
    /// The radius used.
    pub radius: u32,
}

/// Extracts `N_r(centers)` from `s`.
///
/// # Panics
/// Panics if the signature has constants (a constant outside the ball
/// is not representable in the induced substructure) or if a center is
/// out of range.
pub fn neighborhood(s: &Structure, g: &GaifmanGraph, centers: &[Elem], r: u32) -> Neighborhood {
    let b = ball(g, centers, r);
    let (structure, back_map) = s.induced(&b);
    // Relocate centers: position of each center in the sorted ball.
    let distinguished = centers
        .iter()
        .map(|&c| {
            back_map
                .binary_search(&c)
                .expect("center must lie in its own ball") as Elem
        })
        .collect();
    Neighborhood {
        structure,
        distinguished,
        back_map,
        radius: r,
    }
}

/// Amortized neighborhood extraction: precomputes a per-element tuple
/// incidence index once, after which each `N_r(ā)` extraction costs
/// time proportional to the **ball**, not the structure — the
/// ingredient that makes the Theorem-3.11 census pass genuinely linear.
#[derive(Debug)]
pub struct NeighborhoodExtractor<'a> {
    s: &'a Structure,
    g: &'a GaifmanGraph,
    /// For each element, the `(relation, row)` pairs of tuples that
    /// mention it.
    incidences: Vec<Vec<(u32, u32)>>,
}

impl<'a> NeighborhoodExtractor<'a> {
    /// Builds the index (`O(total tuple size)`).
    pub fn new(s: &'a Structure, g: &'a GaifmanGraph) -> NeighborhoodExtractor<'a> {
        let mut incidences: Vec<Vec<(u32, u32)>> = vec![Vec::new(); s.size() as usize];
        for (r, _, _) in s.signature().relations() {
            for (row, t) in s.rel(r).iter().enumerate() {
                let mut prev: Option<Elem> = None;
                let mut sorted: Vec<Elem> = t.to_vec();
                sorted.sort_unstable();
                for &e in &sorted {
                    if prev != Some(e) {
                        incidences[e as usize].push((r.0 as u32, row as u32));
                    }
                    prev = Some(e);
                }
            }
        }
        NeighborhoodExtractor { s, g, incidences }
    }

    /// The radius-`r` ball around `centers`, via bounded BFS
    /// (`O(|ball| · max_degree)`); sorted.
    pub fn ball(&self, centers: &[Elem], r: u32) -> Vec<Elem> {
        use std::collections::HashMap;
        let mut dist: HashMap<Elem, u32> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        for &c in centers {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(c) {
                e.insert(0);
                queue.push_back(c);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            if d == r {
                continue;
            }
            for &w in self.g.neighbors(v) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(d + 1);
                    queue.push_back(w);
                }
            }
        }
        let mut out: Vec<Elem> = dist.into_keys().collect();
        out.sort_unstable();
        OBS_BALLS.incr();
        OBS_BALL_SIZE.record(out.len() as u64);
        out
    }

    /// Extracts `N_r(centers)` in time proportional to the ball and its
    /// incident tuples.
    ///
    /// # Panics
    /// Panics if the signature has constants or a center is out of
    /// range.
    pub fn neighborhood(&self, centers: &[Elem], r: u32) -> Neighborhood {
        assert_eq!(
            self.s.signature().num_constants(),
            0,
            "neighborhoods require a constant-free signature"
        );
        let ball = self.ball(centers, r);
        // old element -> new position (ball is sorted).
        let pos = |e: Elem| ball.binary_search(&e).ok().map(|i| i as Elem);

        let sig = self.s.signature().clone();
        let mut b = fmt_structures::StructureBuilder::new(sig.clone(), ball.len() as u32);
        // Candidate tuples: those incident to some ball element; a tuple
        // survives iff all its elements are in the ball. Each tuple is
        // seen once per distinct element, so dedup by keeping only the
        // occurrence at its minimal element.
        let mut buf: Vec<Elem> = Vec::new();
        for &v in &ball {
            'tuples: for &(r_id, row) in &self.incidences[v as usize] {
                let rel = fmt_structures::RelId(r_id as usize);
                let t = self.s.rel(rel).row(row as usize);
                // Dedup: only process when v is the minimal element.
                if t.iter().any(|&e| e < v) {
                    continue;
                }
                buf.clear();
                for &e in t {
                    match pos(e) {
                        Some(p) => buf.push(p),
                        None => continue 'tuples,
                    }
                }
                b.add(rel, &buf).expect("in range");
            }
        }
        let structure = b.build().expect("constant-free");
        let distinguished = centers
            .iter()
            .map(|&c| pos(c).expect("center lies in its own ball"))
            .collect();
        Neighborhood {
            structure,
            distinguished,
            back_map: ball,
            radius: r,
        }
    }
}

impl Neighborhood {
    /// Tests pointed isomorphism `N ≅ M` (distinguished tuples must
    /// correspond).
    pub fn isomorphic_to(&self, other: &Neighborhood) -> bool {
        fmt_structures::iso::are_isomorphic_pointed(
            &self.structure,
            &self.distinguished,
            &other.structure,
            &other.distinguished,
        )
    }

    /// The canonical key of the pointed neighborhood (see
    /// [`fmt_structures::canon`]).
    pub fn canonical_key(&self) -> fmt_structures::canon::CanonKey {
        fmt_structures::canon::canonical_key(&self.structure, &self.distinguished)
    }

    /// Number of elements in the ball.
    pub fn size(&self) -> u32 {
        self.structure.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn ball_on_path() {
        let s = builders::undirected_path(9);
        let g = GaifmanGraph::new(&s);
        assert_eq!(ball(&g, &[4], 2), vec![2, 3, 4, 5, 6]);
        assert_eq!(ball(&g, &[0], 1), vec![0, 1]);
        assert_eq!(ball(&g, &[0, 8], 1), vec![0, 1, 7, 8]);
        assert_eq!(ball(&g, &[4], 0), vec![4]);
    }

    #[test]
    fn neighborhood_is_induced_with_points() {
        let s = builders::undirected_path(9);
        let g = GaifmanGraph::new(&s);
        let n = neighborhood(&s, &g, &[4], 2);
        assert_eq!(n.size(), 5);
        assert_eq!(n.back_map, vec![2, 3, 4, 5, 6]);
        assert_eq!(n.distinguished, vec![2]); // 4 is the middle of the ball
                                              // The induced structure is a path of 5 vertices.
        let e = n.structure.signature().relation("E").unwrap();
        assert_eq!(n.structure.rel(e).len(), 8); // 4 undirected edges
    }

    #[test]
    fn interior_neighborhoods_isomorphic() {
        // On a long path, all radius-2 neighborhoods of interior points
        // are isomorphic; endpoints differ.
        let s = builders::undirected_path(20);
        let g = GaifmanGraph::new(&s);
        let mid1 = neighborhood(&s, &g, &[7], 2);
        let mid2 = neighborhood(&s, &g, &[12], 2);
        let end = neighborhood(&s, &g, &[0], 2);
        assert!(mid1.isomorphic_to(&mid2));
        assert!(!mid1.isomorphic_to(&end));
        assert_eq!(mid1.canonical_key(), mid2.canonical_key());
        assert_ne!(mid1.canonical_key(), end.canonical_key());
    }

    #[test]
    fn pair_neighborhood_symmetry_on_chain() {
        // The key step of the paper's Gaifman-locality argument: on a
        // long chain, with a and b far apart and far from the endpoints,
        // N_r(a,b) ≅ N_r(b,a) — each is a disjoint union of two chains.
        let r = 2;
        let s = builders::undirected_path(30);
        let g = GaifmanGraph::new(&s);
        let (a, b) = (10, 20);
        let nab = neighborhood(&s, &g, &[a, b], r);
        let nba = neighborhood(&s, &g, &[b, a], r);
        assert!(nab.isomorphic_to(&nba));
        assert_eq!(nab.canonical_key(), nba.canonical_key());
    }

    #[test]
    fn cycle_points_all_alike() {
        let s = builders::undirected_cycle(12);
        let g = GaifmanGraph::new(&s);
        let n0 = neighborhood(&s, &g, &[0], 3);
        for v in 1..12 {
            let nv = neighborhood(&s, &g, &[v], 3);
            assert!(n0.isomorphic_to(&nv));
        }
        // Radius large enough to wrap: neighborhood is the whole cycle.
        let nfull = neighborhood(&s, &g, &[0], 6);
        assert_eq!(nfull.size(), 12);
    }

    #[test]
    fn extractor_matches_plain_extraction() {
        // The amortized extractor must agree exactly with the direct
        // (full-scan) extraction, on every vertex, radius and tuple
        // shape.
        use fmt_structures::{Signature, StructureBuilder};
        let mut suite = vec![
            builders::undirected_path(9),
            builders::undirected_cycle(7),
            builders::full_binary_tree(3),
            builders::copies(&builders::undirected_cycle(3), 2),
        ];
        // A ternary-relation structure exercises >2-ary incidences.
        let sig3 = Signature::builder().relation("R", 3).finish_arc();
        let r3 = sig3.relation("R").unwrap();
        let mut b = StructureBuilder::new(sig3, 6);
        b.add(r3, &[0, 1, 2]).unwrap();
        b.add(r3, &[1, 1, 3]).unwrap();
        b.add(r3, &[4, 5, 4]).unwrap();
        suite.push(b.build().unwrap());

        for s in &suite {
            let g = GaifmanGraph::new(s);
            let ex = NeighborhoodExtractor::new(s, &g);
            for v in s.domain() {
                for r in 0..=3u32 {
                    let fast = ex.neighborhood(&[v], r);
                    let slow = neighborhood(s, &g, &[v], r);
                    assert_eq!(fast.back_map, slow.back_map, "ball mismatch");
                    assert_eq!(fast.structure, slow.structure, "induced mismatch");
                    assert_eq!(fast.distinguished, slow.distinguished);
                }
            }
            // Pairs too.
            let ex2 = NeighborhoodExtractor::new(s, &g);
            let fast = ex2.neighborhood(&[0, s.size() - 1], 2);
            let slow = neighborhood(s, &g, &[0, s.size() - 1], 2);
            assert_eq!(fast.structure, slow.structure);
        }
    }

    #[test]
    fn extractor_ball_is_bounded_work() {
        // Not a timing test — just the semantics: a radius-1 ball on a
        // huge cycle touches 3 nodes.
        let s = builders::undirected_cycle(10_000);
        let g = GaifmanGraph::new(&s);
        let ex = NeighborhoodExtractor::new(&s, &g);
        let ball = ex.ball(&[5_000], 1);
        assert_eq!(ball, vec![4_999, 5_000, 5_001]);
        let n = ex.neighborhood(&[5_000], 1);
        assert_eq!(n.size(), 3);
    }

    #[test]
    fn radius_zero_pointed() {
        let s = builders::undirected_path(5);
        let g = GaifmanGraph::new(&s);
        let n = neighborhood(&s, &g, &[3], 0);
        assert_eq!(n.size(), 1);
        assert_eq!(n.distinguished, vec![0]);
    }
}
