//! # fmt-locality
//!
//! The locality toolbox of the survey (§3.4–3.5): Gaifman graphs, balls
//! and neighborhoods, neighborhood isomorphism types, and the three
//! locality notions with their checkers:
//!
//! * **BNDP** (Def. 3.3 / Thm. 3.4): FO queries cannot blow up the set of
//!   realized degrees — [`bndp`];
//! * **Gaifman-locality** (Def. 3.5 / Thm. 3.6): an FO-definable m-ary
//!   query cannot distinguish tuples with isomorphic r-neighborhoods —
//!   [`gaifman_local`];
//! * **Hanf-locality** (Def. 3.7 / Thm. 3.8): an FO-definable Boolean
//!   query cannot distinguish structures that are pointwise r-similar
//!   (`G ⇆ᵣ G′`) — [`hanf`], including the threshold variant `⇆*ₘ,ᵣ`
//!   (Thm. 3.10) that powers linear-time bounded-degree evaluation.
//!
//! The hierarchy (Thm. 3.9) is: Hanf-local ⇒ Gaifman-local ⇒ BNDP.
//!
//! Everything here is **executable**: the checkers either verify a
//! locality property on concrete inputs or produce a machine-checkable
//! *violation certificate* — the witness pair the paper's proofs
//! construct by hand (e.g. the two endpoints of a long chain for
//! transitive closure, or the cycle pair `Cₘ ⊎ Cₘ` vs `C₂ₘ` for
//! connectivity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ball;
pub mod bndp;
pub mod gaifman;
pub mod gaifman_local;
pub mod hanf;
pub mod ntype;

pub use ball::{ball, neighborhood, Neighborhood, NeighborhoodExtractor};
pub use gaifman::GaifmanGraph;
pub use ntype::{TypeCensus, TypeId, TypeRegistry};
