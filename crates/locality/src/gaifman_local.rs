//! Gaifman-locality (Definition 3.5) and its violation finder.
//!
//! An `m`-ary query `Q` is *Gaifman-local* if there is a radius `r`
//! such that on every structure `G`, tuples `ā, b̄` with
//! `N_r(ā) ≅ N_r(b̄)` satisfy `ā ∈ Q(G) ⟺ b̄ ∈ Q(G)`. Every FO-definable
//! query is Gaifman-local (Theorem 3.6), so exhibiting, for every `r`, a
//! structure with a *violating pair* proves non-FO-definability.
//!
//! [`find_violation`] automates the paper's canonical argument: for
//! transitive closure on a long chain it discovers the pair
//! `(a, b) / (b, a)` with isomorphic neighborhoods but different
//! membership — exactly the hand-drawn picture in §3.4.

use crate::ball::neighborhood;
use crate::gaifman::GaifmanGraph;
use fmt_structures::canon::CanonKey;
use fmt_structures::{iso, Elem, Structure};
use std::collections::{HashMap, HashSet};

/// A machine-checkable witness that a query output is **not**
/// `r`-Gaifman-local on a specific structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaifmanViolation {
    /// The radius at which locality fails.
    pub radius: u32,
    /// A tuple in the query output.
    pub tuple_in: Vec<Elem>,
    /// A tuple outside the query output with `N_r(tuple_in) ≅
    /// N_r(tuple_out)`.
    pub tuple_out: Vec<Elem>,
}

impl GaifmanViolation {
    /// Re-validates the certificate against a structure and query
    /// output: the neighborhoods must be pointed-isomorphic (checked
    /// with the exact backtracking test, independently of the canonical
    /// keys used during search) and membership must differ.
    pub fn check(&self, s: &Structure, output: &HashSet<Vec<Elem>>) -> bool {
        let g = GaifmanGraph::new(s);
        let na = neighborhood(s, &g, &self.tuple_in, self.radius);
        let nb = neighborhood(s, &g, &self.tuple_out, self.radius);
        iso::are_isomorphic_pointed(
            &na.structure,
            &na.distinguished,
            &nb.structure,
            &nb.distinguished,
        ) && output.contains(&self.tuple_in)
            && !output.contains(&self.tuple_out)
    }
}

/// Enumerates all `m`-tuples over the domain of `s` (odometer order).
fn all_tuples(n: u32, m: usize) -> impl Iterator<Item = Vec<Elem>> {
    let mut cur = vec![0 as Elem; m];
    let mut done = n == 0 && m > 0;
    let mut first = true;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        if first {
            first = false;
            return Some(cur.clone());
        }
        let mut pos = m;
        loop {
            if pos == 0 {
                done = true;
                return None;
            }
            pos -= 1;
            cur[pos] += 1;
            if cur[pos] < n {
                break;
            }
            cur[pos] = 0;
            if pos == 0 {
                done = true;
                return None;
            }
        }
        Some(cur.clone())
    })
}

/// Searches `s` for a pair of `m`-tuples violating `r`-Gaifman-locality
/// with respect to the given query output.
///
/// Tuples are grouped by the canonical key of their pointed
/// `r`-neighborhood; a group containing both an output tuple and a
/// non-output tuple is a violation. Cost: `O(n^m)` neighborhood
/// extractions — intended for the small structures on which locality
/// arguments are run.
pub fn find_violation(
    s: &Structure,
    output: &HashSet<Vec<Elem>>,
    m: usize,
    r: u32,
) -> Option<GaifmanViolation> {
    assert!(m > 0, "Gaifman-locality concerns m-ary queries with m > 0");
    let g = GaifmanGraph::new(s);
    // type key -> (example in output, example out of output)
    // For each neighborhood type: an example tuple inside and outside
    // the query output.
    type Examples = (Option<Vec<Elem>>, Option<Vec<Elem>>);
    let mut groups: HashMap<CanonKey, Examples> = HashMap::new();
    for t in all_tuples(s.size(), m) {
        let key = neighborhood(s, &g, &t, r).canonical_key();
        let entry = groups.entry(key).or_default();
        if output.contains(&t) {
            entry.0.get_or_insert(t);
        } else {
            entry.1.get_or_insert(t);
        }
        // Early exit as soon as some group contains both kinds.
        if let (Some(tuple_in), Some(tuple_out)) = entry {
            let v = GaifmanViolation {
                radius: r,
                tuple_in: tuple_in.clone(),
                tuple_out: tuple_out.clone(),
            };
            debug_assert!(v.check(s, output));
            return Some(v);
        }
    }
    None
}

/// `true` if the query output is `r`-Gaifman-local on `s` (no violating
/// pair exists).
pub fn is_local_at(s: &Structure, output: &HashSet<Vec<Elem>>, m: usize, r: u32) -> bool {
    find_violation(s, output, m, r).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    /// Transitive closure of the edge relation, as a set of pairs.
    fn tc_pairs(s: &Structure) -> HashSet<Vec<Elem>> {
        let e = s.signature().relation("E").unwrap();
        let n = s.size();
        let mut out = HashSet::new();
        for start in 0..n {
            // BFS along directed edges.
            let mut seen = vec![false; n as usize];
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &w in s.out_neighbors(e, v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        out.insert(vec![start, w]);
                        queue.push_back(w);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn tc_violates_gaifman_locality_on_long_chain() {
        // The paper's canonical example: a directed chain long enough
        // that two interior points a < b sit at distance > 2r from each
        // other and from the endpoints. Then N_r(a,b) ≅ N_r(b,a), yet
        // (a,b) ∈ TC and (b,a) ∉ TC.
        for r in 1..4u32 {
            let len = 6 * r + 8;
            let s = builders::directed_path(len);
            let out = tc_pairs(&s);
            let v = find_violation(&s, &out, 2, r)
                .unwrap_or_else(|| panic!("expected a violation at r = {r}"));
            assert!(v.check(&s, &out));
        }
    }

    #[test]
    fn tc_output_is_local_on_short_chain_with_big_radius() {
        // If r exceeds the structure's diameter, each tuple's
        // neighborhood is the whole (pointed) structure; only genuinely
        // automorphic tuples share types, so TC cannot be caught.
        let s = builders::directed_path(4);
        let out = tc_pairs(&s);
        assert!(is_local_at(&s, &out, 2, 10));
    }

    #[test]
    fn unary_output_all_elements_is_local() {
        let s = builders::undirected_cycle(8);
        let out: HashSet<Vec<Elem>> = s.domain().map(|v| vec![v]).collect();
        assert!(is_local_at(&s, &out, 1, 1));
    }

    #[test]
    fn unary_arbitrary_subset_is_caught() {
        // "Is vertex 3" on a cycle: all vertices have the same
        // neighborhood type, so singling one out violates locality.
        let s = builders::undirected_cycle(8);
        let out: HashSet<Vec<Elem>> = HashSet::from([vec![3u32]]);
        let v = find_violation(&s, &out, 1, 1).expect("violation expected");
        assert!(v.check(&s, &out));
        assert_eq!(v.tuple_in, vec![3]);
    }

    #[test]
    fn empty_output_is_local() {
        let s = builders::undirected_path(6);
        let out: HashSet<Vec<Elem>> = HashSet::new();
        assert!(is_local_at(&s, &out, 2, 1));
    }

    #[test]
    fn certificate_check_rejects_tampering() {
        let s = builders::directed_path(20);
        let out = tc_pairs(&s);
        let v = find_violation(&s, &out, 2, 1).unwrap();
        // Swap the tuples: membership test fails.
        let bogus = GaifmanViolation {
            radius: v.radius,
            tuple_in: v.tuple_out.clone(),
            tuple_out: v.tuple_in.clone(),
        };
        assert!(!bogus.check(&s, &out));
        // Wrong radius can break the isomorphism.
        let far = GaifmanViolation {
            radius: 30,
            tuple_in: v.tuple_in.clone(),
            tuple_out: v.tuple_out.clone(),
        };
        assert!(!far.check(&s, &out));
    }

    #[test]
    fn all_tuples_enumeration() {
        let ts: Vec<Vec<Elem>> = all_tuples(3, 2).collect();
        assert_eq!(ts.len(), 9);
        assert_eq!(ts[0], vec![0, 0]);
        assert_eq!(ts[8], vec![2, 2]);
        assert_eq!(all_tuples(0, 2).count(), 0);
        assert_eq!(all_tuples(5, 1).count(), 5);
    }
}
