//! The Gaifman graph of a structure.
//!
//! Two elements are adjacent in the Gaifman graph `G(A)` iff they occur
//! together in some tuple of some relation of `A`. All locality notions
//! (distance, balls, neighborhoods, degrees) are computed in this graph,
//! "forgetting about the orientation of edges" as the paper puts it.

use fmt_structures::{Elem, Structure};

/// The (undirected, loop-free) Gaifman graph of a structure, stored as a
/// compact CSR adjacency index plus degree statistics.
#[derive(Debug, Clone)]
pub struct GaifmanGraph {
    n: u32,
    offsets: Vec<u32>,
    targets: Vec<Elem>,
}

impl GaifmanGraph {
    /// Builds the Gaifman graph of `s`.
    pub fn new(s: &Structure) -> GaifmanGraph {
        let n = s.size() as usize;
        // Collect undirected co-occurrence pairs.
        let mut pairs: Vec<(Elem, Elem)> = Vec::new();
        for (r, _, _) in s.signature().relations() {
            for t in s.rel(r).iter() {
                for (i, &a) in t.iter().enumerate() {
                    for &b in &t[i + 1..] {
                        if a != b {
                            pairs.push((a.min(b), a.max(b)));
                        }
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut counts = vec![0u32; n + 1];
        for &(a, b) in &pairs {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as Elem; offsets[n] as usize];
        for &(a, b) in &pairs {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        GaifmanGraph {
            n: s.size(),
            offsets,
            targets,
        }
    }

    /// Number of vertices.
    pub fn size(&self) -> u32 {
        self.n
    }

    /// Gaifman neighbors of `v` (sorted).
    pub fn neighbors(&self, v: Elem) -> &[Elem] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Gaifman degree of `v`.
    pub fn degree(&self, v: Elem) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum Gaifman degree (0 on the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of undirected Gaifman edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// BFS distances from a set of sources; `u32::MAX` means unreachable.
    ///
    /// This is the paper's `d(ā, b) = minᵢ d(aᵢ, b)`.
    pub fn distances_from(&self, sources: &[Elem]) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n as usize];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            if dist[s as usize] == u32::MAX {
                dist[s as usize] = 0;
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            for &w in self.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Shortest-path distance between two vertices (`None` if
    /// disconnected).
    pub fn distance(&self, a: Elem, b: Elem) -> Option<u32> {
        let d = self.distances_from(&[a])[b as usize];
        (d != u32::MAX).then_some(d)
    }

    /// `true` if the Gaifman graph is connected (vacuously true for
    /// `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        self.distances_from(&[0]).iter().all(|&d| d != u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::{builders, Signature, StructureBuilder};

    #[test]
    fn graph_structure_gaifman_is_underlying_undirected_graph() {
        let s = builders::directed_path(5);
        let g = GaifmanGraph::new(&s);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn orientation_forgotten() {
        // Directed edges both ways produce the same Gaifman graph as one
        // direction.
        let a = GaifmanGraph::new(&builders::directed_cycle(6));
        let b = GaifmanGraph::new(&builders::undirected_cycle(6));
        for v in 0..6 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn ternary_tuples_create_cliques() {
        let sig = Signature::builder().relation("R", 3).finish_arc();
        let r = sig.relation("R").unwrap();
        let mut b = StructureBuilder::new(sig, 4);
        b.add(r, &[0, 1, 2]).unwrap();
        let s = b.build().unwrap();
        let g = GaifmanGraph::new(&s);
        // {0,1,2} is a Gaifman triangle; 3 is isolated.
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(3), 0);
        assert!(!g.is_connected());
    }

    #[test]
    fn self_pairs_ignored() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig, 2);
        b.add(e, &[0, 0]).unwrap();
        b.add(e, &[0, 1]).unwrap();
        let s = b.build().unwrap();
        let g = GaifmanGraph::new(&s);
        assert_eq!(g.neighbors(0), &[1]); // no self-loop
    }

    #[test]
    fn distances() {
        let s = builders::undirected_path(6);
        let g = GaifmanGraph::new(&s);
        assert_eq!(g.distance(0, 5), Some(5));
        assert_eq!(g.distance(2, 2), Some(0));
        // Distance from a tuple: min over components.
        let d = g.distances_from(&[0, 5]);
        assert_eq!(d[2], 2); // min(2, 3)
        assert_eq!(d[3], 2); // min(3, 2)
    }

    #[test]
    fn disconnected_distance_none() {
        let s = builders::copies(&builders::undirected_cycle(3), 2);
        let g = GaifmanGraph::new(&s);
        assert_eq!(g.distance(0, 4), None);
        assert!(!g.is_connected());
    }

    #[test]
    fn linear_order_gaifman_is_complete() {
        // In L_n every pair is <-related, so the Gaifman graph is K_n.
        let g = GaifmanGraph::new(&builders::linear_order(5));
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn empty_structures() {
        let g = GaifmanGraph::new(&builders::set(3));
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_connected()); // 3 isolated vertices
        let g0 = GaifmanGraph::new(&builders::set(0));
        assert!(g0.is_connected());
    }
}
