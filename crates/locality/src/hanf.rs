//! Hanf-locality (Definition 3.7) and the threshold variant of
//! Theorem 3.10.
//!
//! `G ⇆ᵣ G′` holds iff there is a bijection `f : G → G′` such that
//! `N_r(a) ≅ N_r(f(a))` for every node `a` — "locally, the two
//! structures look the same". A Boolean query `Q` is *Hanf-local* if
//! some radius `r` makes `G ⇆ᵣ G′ ⟹ Q(G) = Q(G′)`; every FO-definable
//! Boolean query is (Theorem 3.8).
//!
//! A suitable bijection exists iff the two structures have the same
//! size and identical neighborhood-type censuses, so the check reduces
//! to census comparison ([`crate::TypeCensus`]); [`bijection`] actually
//! constructs `f`, giving certificates their witness.
//!
//! The threshold relation `G ⇆*ₘ,ᵣ G′` (counts equal per type, or both
//! ≥ m) relaxes the size restriction; Theorem 3.10 says each FO sentence
//! is invariant under it for suitable `(m, r)` on bounded-degree
//! structures, which is the engine of linear-time evaluation
//! (Theorem 3.11, implemented in `fmt-eval`).

use crate::ntype::{TypeCensus, TypeRegistry};
use fmt_structures::{Elem, Structure};

/// Tests `a ⇆ᵣ b`: equal sizes and identical radius-`r` neighborhood
/// type censuses.
pub fn hanf_equivalent(a: &Structure, b: &Structure, r: u32) -> bool {
    if a.signature() != b.signature() || a.size() != b.size() {
        return false;
    }
    let mut reg = TypeRegistry::new();
    let ca = TypeCensus::compute(a, r, &mut reg);
    let cb = TypeCensus::compute(b, r, &mut reg);
    ca.same_as(&cb)
}

/// Tests the threshold relation `a ⇆*ₘ,ᵣ b` (Thm 3.10): per
/// neighborhood type, the counts in `a` and `b` are equal or both at
/// least `m`.
pub fn hanf_threshold_equivalent(a: &Structure, b: &Structure, r: u32, m: usize) -> bool {
    if a.signature() != b.signature() {
        return false;
    }
    let mut reg = TypeRegistry::new();
    let ca = TypeCensus::compute(a, r, &mut reg);
    let cb = TypeCensus::compute(b, r, &mut reg);
    ca.same_up_to_threshold(&cb, m)
}

/// Constructs a Hanf bijection for `a ⇆ᵣ b`: a vector `f` with
/// `N_r(v) ≅ N_r(f(v))` for every `v`. Returns `None` iff
/// `a ⇆ᵣ b` fails.
///
/// Elements are matched greedily within each type class — any pairing
/// works since membership in a class already guarantees isomorphic
/// neighborhoods.
pub fn bijection(a: &Structure, b: &Structure, r: u32) -> Option<Vec<Elem>> {
    if a.signature() != b.signature() || a.size() != b.size() {
        return None;
    }
    let mut reg = TypeRegistry::new();
    let ca = TypeCensus::compute(a, r, &mut reg);
    let cb = TypeCensus::compute(b, r, &mut reg);
    if !ca.same_as(&cb) {
        return None;
    }
    // Bucket b's elements by type, then drain.
    let mut buckets: std::collections::HashMap<crate::TypeId, Vec<Elem>> =
        std::collections::HashMap::new();
    for v in b.domain() {
        buckets.entry(cb.type_of(v)).or_default().push(v);
    }
    let mut f = Vec::with_capacity(a.size() as usize);
    for v in a.domain() {
        let bucket = buckets.get_mut(&ca.type_of(v))?;
        f.push(bucket.pop()?);
    }
    Some(f)
}

/// Tests the **m-ary (pointed) Hanf equivalence** of
/// Hella–Libkin–Nurmonen ("the notion can be extended to non-Boolean
/// queries as well \[21\]" — the paper's §3.4 remark):
/// `(A, ā) ⇆ᵣ (B, b̄)` iff there is a bijection `f : A → B` with
/// `N_r(ā·c) ≅ N_r(b̄·f(c))` for every element `c`.
///
/// As in the Boolean case, such a bijection exists iff the **censuses
/// of extended-tuple neighborhood types** coincide, so the check is a
/// census comparison (with `ā`/`b̄` glued onto every extracted
/// neighborhood as distinguished prefixes).
pub fn hanf_equivalent_pointed(
    a: &Structure,
    ta: &[Elem],
    b: &Structure,
    tb: &[Elem],
    r: u32,
) -> bool {
    if a.signature() != b.signature() || a.size() != b.size() || ta.len() != tb.len() {
        return false;
    }
    use crate::ball::NeighborhoodExtractor;
    use crate::GaifmanGraph;
    use std::collections::HashMap;
    let ga = GaifmanGraph::new(a);
    let gb = GaifmanGraph::new(b);
    let exa = NeighborhoodExtractor::new(a, &ga);
    let exb = NeighborhoodExtractor::new(b, &gb);
    let census = |s: &Structure,
                  ex: &NeighborhoodExtractor<'_>,
                  tuple: &[Elem]|
     -> HashMap<fmt_structures::canon::CanonKey, usize> {
        let mut m = HashMap::new();
        let mut centers = tuple.to_vec();
        centers.push(0);
        for c in s.domain() {
            *centers.last_mut().expect("nonempty") = c;
            let n = ex.neighborhood(&centers, r);
            *m.entry(n.canonical_key()).or_insert(0) += 1;
        }
        m
    };
    census(a, &exa, ta) == census(b, &exb, tb)
}

/// The m-ary Hanf-locality check for a query output on a *pair* of
/// pointed structures: returns `true` if the pointed Hanf equivalence
/// holds yet exactly one tuple is in its query output — a violation of
/// m-ary Hanf-locality at radius `r`.
pub fn mary_violation(
    a: &Structure,
    ta: &[Elem],
    in_a: bool,
    b: &Structure,
    tb: &[Elem],
    in_b: bool,
    r: u32,
) -> bool {
    in_a != in_b && hanf_equivalent_pointed(a, ta, b, tb, r)
}

/// A machine-checkable witness that a Boolean query is **not**
/// `r`-Hanf-local: two structures that are `⇆ᵣ`-equivalent (witnessed
/// by a bijection) yet receive different query answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HanfViolation {
    /// The radius at which Hanf-locality fails.
    pub radius: u32,
    /// A Hanf bijection from the first to the second structure.
    pub bijection: Vec<Elem>,
    /// Query value on the first structure.
    pub q_first: bool,
    /// Query value on the second structure.
    pub q_second: bool,
}

impl HanfViolation {
    /// Attempts to build a violation certificate for the query values
    /// `q_a`, `q_b` on structures `a`, `b` at radius `r`. Returns `None`
    /// unless `a ⇆ᵣ b` *and* the query values differ.
    pub fn build(
        a: &Structure,
        b: &Structure,
        r: u32,
        q_a: bool,
        q_b: bool,
    ) -> Option<HanfViolation> {
        if q_a == q_b {
            return None;
        }
        let f = bijection(a, b, r)?;
        Some(HanfViolation {
            radius: r,
            bijection: f,
            q_first: q_a,
            q_second: q_b,
        })
    }

    /// Re-validates: the stored bijection must be a bijection sending
    /// each element to one with a pointed-isomorphic `r`-neighborhood
    /// (re-checked with the exact isomorphism test), and the recorded
    /// query values must differ.
    pub fn check(&self, a: &Structure, b: &Structure) -> bool {
        if self.q_first == self.q_second
            || a.size() != b.size()
            || self.bijection.len() != a.size() as usize
        {
            return false;
        }
        let mut seen = vec![false; b.size() as usize];
        for &w in &self.bijection {
            if w >= b.size() || seen[w as usize] {
                return false;
            }
            seen[w as usize] = true;
        }
        let ga = crate::GaifmanGraph::new(a);
        let gb = crate::GaifmanGraph::new(b);
        for v in a.domain() {
            let na = crate::neighborhood(a, &ga, &[v], self.radius);
            let nb = crate::neighborhood(b, &gb, &[self.bijection[v as usize]], self.radius);
            if !na.isomorphic_to(&nb) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn cycle_pair_is_hanf_equivalent() {
        // The paper's picture: two cycles of length m vs one cycle of
        // length 2m, m > 2r + 1.
        let m = 10;
        let two = builders::copies(&builders::undirected_cycle(m), 2);
        let one = builders::undirected_cycle(2 * m);
        for r in 0..=4 {
            // m = 10 > 2r + 1 holds for r <= 4.
            assert!(hanf_equivalent(&two, &one, r), "r = {r}");
        }
        // Radius 5: 2r + 1 = 11 > 10, balls wrap C_10 but not C_20.
        assert!(!hanf_equivalent(&two, &one, 5));
    }

    #[test]
    fn connectivity_violation_certificate() {
        let m = 8;
        let two = builders::copies(&builders::undirected_cycle(m), 2); // disconnected
        let one = builders::undirected_cycle(2 * m); // connected
        let r = 3; // m > 2r + 1
        let v = HanfViolation::build(&two, &one, r, false, true).expect("certificate");
        assert!(v.check(&two, &one));
        // Equal query values never certify.
        assert!(HanfViolation::build(&two, &one, r, true, true).is_none());
    }

    #[test]
    fn tree_test_violation() {
        // The paper's second example: chain of length 2m vs chain of
        // length m ⊎ cycle of length m; G1 is a tree, G2 is not.
        let m = 9;
        let g1 = builders::undirected_path(2 * m);
        let g2 = builders::undirected_path(m)
            .disjoint_union(&builders::undirected_cycle(m))
            .unwrap();
        let r = 3; // m > 2r + 1
        assert!(hanf_equivalent(&g1, &g2, r));
        let v = HanfViolation::build(&g1, &g2, r, true, false).unwrap();
        assert!(v.check(&g1, &g2));
        // At big enough radius the chain's endpoints become visible
        // everywhere and equivalence fails.
        assert!(!hanf_equivalent(&g1, &g2, 9));
    }

    #[test]
    fn different_sizes_never_equivalent() {
        let a = builders::undirected_cycle(6);
        let b = builders::undirected_cycle(7);
        assert!(!hanf_equivalent(&a, &b, 1));
        assert!(bijection(&a, &b, 1).is_none());
    }

    #[test]
    fn threshold_ignores_large_counts() {
        // Cycles of different sizes: one type each, counts 12 vs 20,
        // both >= m for m <= 12.
        let a = builders::undirected_cycle(12);
        let b = builders::undirected_cycle(20);
        assert!(hanf_threshold_equivalent(&a, &b, 2, 12));
        assert!(!hanf_threshold_equivalent(&a, &b, 2, 13));
        assert!(!hanf_equivalent(&a, &b, 2));
    }

    #[test]
    fn bijection_is_checked_witness() {
        let m = 8;
        let two = builders::copies(&builders::undirected_cycle(m), 2);
        let one = builders::undirected_cycle(2 * m);
        let f = bijection(&two, &one, 3).unwrap();
        // All targets distinct.
        let mut sorted = f.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), f.len());
    }

    #[test]
    fn tampered_certificate_rejected() {
        let m = 8;
        let two = builders::copies(&builders::undirected_cycle(m), 2);
        let one = builders::undirected_cycle(2 * m);
        let v = HanfViolation::build(&two, &one, 3, false, true).unwrap();
        let mut bad = v.clone();
        bad.bijection[0] = bad.bijection[1]; // no longer a bijection
        assert!(!bad.check(&two, &one));
        let mut same = v.clone();
        same.q_second = same.q_first; // no longer a violation
        assert!(!same.check(&two, &one));
    }

    #[test]
    fn mary_hanf_on_twin_chains() {
        // The m-ary extension catches TC with a single structure: let G
        // be two disjoint directed chains X = 0..20 and Y = 20..40, and
        // compare the same-chain pair (5, 14) — connected by a directed
        // path — with the cross-chain pair (5, 34), where 34 sits at the
        // same offset inside Y as 14 does inside X. Swapping the two
        // second-coordinate surroundings is a bijection witnessing
        // (G, (5,14)) ⇆_r (G, (5,34)), yet only (5, 14) ∈ TC.
        // Spacing matters: a1 and a2 must be more than 4r + 2 apart, or
        // some c glues both their balls into one piece on the
        // same-chain side only.
        let s = builders::copies(&builders::directed_path(40), 2);
        let (a1, a2, y) = (8u32, 31u32, 71u32); // 71 = offset 31 inside Y
        for r in 1..=3u32 {
            assert!(
                hanf_equivalent_pointed(&s, &[a1, a2], &s, &[a1, y], r),
                "r = {r}"
            );
            assert!(mary_violation(&s, &[a1, a2], true, &s, &[a1, y], false, r));
        }
        // A mismatched offset breaks the equivalence: 41 sits right next
        // to Y's source, so its marked segment is truncated.
        assert!(!hanf_equivalent_pointed(&s, &[a1, a2], &s, &[a1, 41], 2));
        // Orientation matters: the reflected pair within one chain is
        // NOT pointed-equivalent on a *directed* chain (the truncated
        // end segments flip orientation).
        let chain = builders::directed_path(30);
        assert!(!hanf_equivalent_pointed(
            &chain,
            &[2, 27],
            &chain,
            &[27, 2],
            3
        ));
    }

    #[test]
    fn mary_reduces_to_boolean_at_arity_zero() {
        let m = 8;
        let two = builders::copies(&builders::undirected_cycle(m), 2);
        let one = builders::undirected_cycle(2 * m);
        for r in 0..=3 {
            assert_eq!(
                hanf_equivalent_pointed(&two, &[], &one, &[], r),
                hanf_equivalent(&two, &one, r),
                "arity-0 pointed equivalence must match the Boolean check at r = {r}"
            );
        }
    }

    #[test]
    fn identical_structures_trivially_equivalent() {
        let s = builders::grid(4, 4);
        assert!(hanf_equivalent(&s, &s, 3));
        let f = bijection(&s, &s, 2).unwrap();
        assert_eq!(f.len(), 16);
    }
}
