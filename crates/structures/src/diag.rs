//! Source-span diagnostics: the shared vocabulary of every front end.
//!
//! A [`Diagnostic`] is one finding about a piece of source text — a
//! parse error, a lint, a well-formedness violation — carrying a
//! machine-readable code (`F004`, `D001`, …), an optional byte-offset
//! [`Span`], and an optional note. The type lives here, below both
//! `fmt-logic` and `fmt-queries`, so that the formula parser, the
//! Datalog parser, and [`fmt-lint`]'s analyses can all produce the same
//! currency without dependency cycles; `fmt-lint` re-exports it as its
//! diagnostics core.
//!
//! Rendering comes in two interchangeable forms:
//!
//! * [`Diagnostic::render`] — a human-readable block with a caret line
//!   pointing into the source;
//! * [`Diagnostic::to_json`] / [`Diagnostic::from_json`] — a lossless
//!   JSON object (`fmtk lint --format json` emits arrays of these via
//!   [`diags_to_json`], and [`diags_from_json`] parses them back).

use std::fmt;

/// A half-open byte range `[start, end)` into some source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at `offset` (a point, e.g. "unexpected EOF").
    pub fn point(offset: usize) -> Span {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The number of bytes covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for point spans.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The covered slice of `src`, clamped to the text.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        let start = self.start.min(src.len());
        let end = self.end.min(src.len()).max(start);
        &src[start..end]
    }

    /// 1-based `(line, column)` of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = self.start.min(src.len());
        let line = src[..upto].bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = src[..upto].rfind('\n').map_or(0, |i| i + 1);
        (line, upto - line_start + 1)
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A code smell or likely mistake; the input is still usable.
    Warning,
    /// The input is invalid and will be rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding about a piece of source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (`F001`–`F006`, `D001`–`D005`, …).
    pub code: String,
    /// Byte range in the source, when the finding has a location.
    /// `None` for findings about programmatically built ASTs.
    pub span: Option<Span>,
    /// One-line human-readable description.
    pub message: String,
    /// Optional elaboration (the "why", a theorem citation, a fix hint).
    pub note: Option<String>,
}

impl Diagnostic {
    /// An error diagnostic with no span or note.
    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: code.into(),
            span: None,
            message: message.into(),
            note: None,
        }
    }

    /// A warning diagnostic with no span or note.
    pub fn warning(code: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.note = Some(note.into());
        self
    }

    /// Renders the diagnostic against its source with a caret line:
    ///
    /// ```text
    /// warning[F001]: quantified variable x is never used in its scope
    ///  --> query:1:8
    ///   |
    /// 1 | exists x. E(y, y)
    ///   |        ^
    ///   = note: drop the quantifier or use the variable
    /// ```
    ///
    /// `origin` names the source (a file path, `<expr>`, …).
    pub fn render(&self, src: &str, origin: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            let (line, col) = span.line_col(src);
            out.push_str(&format!(" --> {origin}:{line}:{col}\n"));
            let line_start = src[..span.start.min(src.len())]
                .rfind('\n')
                .map_or(0, |i| i + 1);
            let line_text: &str = src[line_start..].lines().next().unwrap_or("");
            let gutter = line.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {line_text}\n"));
            // Caret run: from the start column to the span end, clamped
            // to this line; always at least one caret.
            let width = span
                .len()
                .min(line_text.len().saturating_sub(col - 1))
                .max(1);
            out.push_str(&format!(
                "{pad} | {}{}\n",
                " ".repeat(col - 1),
                "^".repeat(width)
            ));
        } else {
            out.push_str(&format!(" --> {origin}\n"));
        }
        if let Some(note) = &self.note {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }

    /// Serializes the diagnostic as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"severity\":{}",
            json_string(&self.severity.to_string())
        ));
        out.push_str(&format!(",\"code\":{}", json_string(&self.code)));
        match self.span {
            Some(s) => out.push_str(&format!(
                ",\"span\":{{\"start\":{},\"end\":{}}}",
                s.start, s.end
            )),
            None => out.push_str(",\"span\":null"),
        }
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        match &self.note {
            Some(n) => out.push_str(&format!(",\"note\":{}", json_string(n))),
            None => out.push_str(",\"note\":null"),
        }
        out.push('}');
        out
    }

    /// Parses one JSON object produced by [`Diagnostic::to_json`].
    pub fn from_json(text: &str) -> Result<Diagnostic, String> {
        let mut p = JsonParser::new(text);
        let d = p.diagnostic()?;
        p.skip_ws();
        if !p.at_end() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(d)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Serializes a list of diagnostics as a JSON array (one object per
/// line, so text tooling can still grep it).
pub fn diags_to_json(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_owned();
    }
    let body: Vec<String> = diags.iter().map(|d| format!("  {}", d.to_json())).collect();
    format!("[\n{}\n]", body.join(",\n"))
}

/// Parses a JSON array produced by [`diags_to_json`].
pub fn diags_from_json(text: &str) -> Result<Vec<Diagnostic>, String> {
    let mut p = JsonParser::new(text);
    p.skip_ws();
    p.expect(b'[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            out.push(p.diagnostic()?);
            p.skip_ws();
            match p.next()? {
                b',' => continue,
                b']' => break,
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(out)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON reader for exactly the schema [`Diagnostic::to_json`]
/// emits (objects with known keys, strings, numbers, null).
struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> JsonParser<'a> {
        JsonParser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of JSON")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        let got = self.next()?;
        if got != b {
            return Err(format!("expected {:?}, got {:?}", b as char, got as char));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self.next()?;
                            v = v * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or("invalid \\u escape in JSON string")?;
                        }
                        out.push(char::from_u32(v).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                },
                b => {
                    // Re-assemble multi-byte UTF-8 sequences verbatim.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    self.pos = start + len;
                    let chunk = self
                        .src
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 in JSON string")?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in JSON string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err("expected a number".into());
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| "number out of range".to_owned())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word} at byte {}", self.pos))
        }
    }

    fn diagnostic(&mut self) -> Result<Diagnostic, String> {
        self.expect(b'{')?;
        let mut severity: Option<Severity> = None;
        let mut code = None;
        let mut span = None;
        let mut message = None;
        let mut note = None;
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "severity" => {
                    severity = Some(match self.string()?.as_str() {
                        "warning" => Severity::Warning,
                        "error" => Severity::Error,
                        other => return Err(format!("unknown severity {other:?}")),
                    });
                }
                "code" => code = Some(self.string()?),
                "message" => message = Some(self.string()?),
                "note" => {
                    if self.peek() == Some(b'n') {
                        self.literal("null")?;
                    } else {
                        note = Some(self.string()?);
                    }
                }
                "span" => {
                    if self.peek() == Some(b'n') {
                        self.literal("null")?;
                    } else {
                        self.expect(b'{')?;
                        let (mut start, mut end) = (0usize, 0usize);
                        loop {
                            self.skip_ws();
                            let k = self.string()?;
                            self.expect(b':')?;
                            match k.as_str() {
                                "start" => start = self.number()?,
                                "end" => end = self.number()?,
                                other => return Err(format!("unknown span key {other:?}")),
                            }
                            self.skip_ws();
                            match self.next()? {
                                b',' => continue,
                                b'}' => break,
                                other => {
                                    return Err(format!(
                                        "expected ',' or '}}' in span, got {:?}",
                                        other as char
                                    ))
                                }
                            }
                        }
                        span = Some(Span::new(start, end));
                    }
                }
                other => return Err(format!("unknown diagnostic key {other:?}")),
            }
            self.skip_ws();
            match self.next()? {
                b',' => continue,
                b'}' => break,
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
        Ok(Diagnostic {
            severity: severity.ok_or("diagnostic is missing \"severity\"")?,
            code: code.ok_or("diagnostic is missing \"code\"")?,
            span,
            message: message.ok_or("diagnostic is missing \"message\"")?,
            note,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic::warning("F001", "quantified variable x is never used in its scope")
            .with_span(Span::new(7, 8))
            .with_note("drop the quantifier or use the variable")
    }

    #[test]
    fn span_arithmetic() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.to(Span::new(10, 12)), Span::new(3, 12));
        assert_eq!(s.slice("0123456789"), "3456");
        assert!(Span::point(5).is_empty());
        // end < start is clamped.
        assert_eq!(Span::new(5, 2), Span::new(5, 5));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::point(0).line_col(src), (1, 1));
        assert_eq!(Span::point(4).line_col(src), (2, 2));
        assert_eq!(Span::point(6).line_col(src), (3, 1));
    }

    #[test]
    fn render_has_caret_under_span() {
        let src = "exists x. E(y, y)";
        let r = sample().render(src, "query");
        assert!(r.contains("warning[F001]"), "{r}");
        assert!(r.contains("--> query:1:8"), "{r}");
        assert!(r.contains("1 | exists x. E(y, y)"), "{r}");
        let caret_line = r.lines().find(|l| l.contains('^')).unwrap();
        // Caret sits under column 8 of the source line.
        assert_eq!(caret_line.find('^').unwrap(), "1 | ".len() + 7, "{r}");
        assert!(r.contains("= note:"), "{r}");
    }

    #[test]
    fn render_without_span_still_names_origin() {
        let d = Diagnostic::error("F004", "relation id 7 out of range");
        let r = d.render("", "<ast>");
        assert!(r.contains("--> <ast>"), "{r}");
        assert!(!r.contains('^'), "{r}");
    }

    #[test]
    fn json_roundtrip_single() {
        let d = sample();
        let back = Diagnostic::from_json(&d.to_json()).unwrap();
        assert_eq!(d, back);
        // Escapes and missing optionals survive too.
        let tricky = Diagnostic::error("D000", "bad \"quote\" and\nnewline\tand \\ slash");
        let back = Diagnostic::from_json(&tricky.to_json()).unwrap();
        assert_eq!(tricky, back);
    }

    #[test]
    fn json_roundtrip_array() {
        let ds = vec![
            sample(),
            Diagnostic::error("F004", "unknown relation R").with_span(Span::new(0, 1)),
        ];
        let text = diags_to_json(&ds);
        assert_eq!(diags_from_json(&text).unwrap(), ds);
        assert_eq!(diags_from_json("[]").unwrap(), Vec::new());
        assert_eq!(diags_from_json(&diags_to_json(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Diagnostic::from_json("{}").is_err());
        assert!(Diagnostic::from_json("").is_err());
        assert!(diags_from_json("[{},]").is_err());
        assert!(diags_from_json("nope").is_err());
        assert!(Diagnostic::from_json("{\"severity\":\"fatal\"}").is_err());
    }

    #[test]
    fn display_is_one_line() {
        assert_eq!(
            sample().to_string(),
            "warning[F001]: quantified variable x is never used in its scope"
        );
    }
}
