//! Scoped-thread fan-out shared by the parallel engines.
//!
//! The EF-game solver (`fmt-games`) and the Datalog fixpoint engine
//! (`fmt-queries`) parallelize the same way: a slice of independent
//! work items is chunked across a fixed number of scoped workers, and
//! the per-chunk results are collected back **in chunk order**, so the
//! caller's merge is deterministic regardless of which worker finished
//! first. This module is that pattern, once.

/// Runs `worker` over `items` split into at most `threads` contiguous
/// chunks, each on its own scoped thread, returning the per-chunk
/// results in chunk order.
///
/// With `threads == 1` or a single chunk the work runs on the calling
/// thread — no spawn cost for small inputs. Workers borrow from the
/// caller's stack (scoped threads), so `items` may reference
/// round-local data.
///
/// # Panics
/// Panics if `threads == 0` or a worker panics.
pub fn fan_out<T, R, F>(threads: usize, items: &[T], worker: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(threads >= 1, "fan_out requires at least one thread");
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(threads);
    if chunk >= items.len() {
        return vec![worker(items)];
    }
    // Propagate the spawning thread's trace span to the workers, so
    // spans they open attach under the caller instead of floating as
    // roots (no-op cost when tracing is off: the handle is one Cell
    // read and with_parent two Cell writes).
    let parent = fmt_obs::trace::current_parent();
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|work| scope.spawn(move || fmt_obs::trace::with_parent(parent, || worker(work))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan_out worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_chunk_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 7, 100, 200] {
            let sums = fan_out(threads, &items, |chunk| chunk.iter().sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), 4950, "threads = {threads}");
            // Chunk order: the first chunk holds the smallest items.
            let firsts = fan_out(threads, &items, |chunk| chunk[0]);
            let mut sorted = firsts.clone();
            sorted.sort_unstable();
            assert_eq!(firsts, sorted);
        }
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let calls = AtomicUsize::new(0);
        let out: Vec<()> = fan_out(4, &[] as &[u32], |_| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn single_chunk_runs_inline() {
        let out = fan_out(1, &[1u32, 2, 3], <[u32]>::len);
        assert_eq!(out, vec![3]);
    }
}
