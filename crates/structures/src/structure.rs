//! Finite relational structures with sorted tuple stores.

use crate::{ConstId, RelId, Signature, StructureError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A domain element. Domains are always `{0, 1, …, n−1}`.
pub type Elem = u32;

/// The interpretation of one relation symbol: a set of tuples of a fixed
/// arity, stored as a flat, lexicographically sorted, deduplicated array
/// of rows.
///
/// Sorted flat storage gives cache-friendly iteration and `O(log m)`
/// membership without a per-tuple allocation; for the binary relations on
/// which graph algorithms run, [`Structure`] additionally maintains
/// forward and backward adjacency indexes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Relation {
    arity: usize,
    rows: Vec<Elem>,
}

impl Relation {
    fn from_rows(arity: usize, mut flat: Vec<Elem>) -> Relation {
        debug_assert!(arity >= 1);
        debug_assert_eq!(flat.len() % arity, 0);
        let n = flat.len() / arity;
        // Sort rows lexicographically by sorting row indices, then rebuild.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            flat[a * arity..(a + 1) * arity].cmp(&flat[b * arity..(b + 1) * arity])
        });
        let mut sorted = Vec::with_capacity(flat.len());
        let mut prev: Option<usize> = None;
        for &i in &order {
            let row = &flat[i * arity..(i + 1) * arity];
            if let Some(p) = prev {
                if &sorted[p * arity..(p + 1) * arity] == row {
                    continue;
                }
            }
            sorted.extend_from_slice(row);
            prev = Some(sorted.len() / arity - 1);
        }
        flat = sorted;
        flat.shrink_to_fit();
        Relation { arity, rows: flat }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples in the relation.
    pub fn len(&self) -> usize {
        self.rows.len() / self.arity
    }

    /// `true` if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Membership test by binary search over the sorted rows.
    pub fn contains(&self, tuple: &[Elem]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.binary_search(tuple).is_ok()
    }

    fn binary_search(&self, tuple: &[Elem]) -> Result<usize, usize> {
        let a = self.arity;
        let n = self.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.rows[mid * a..(mid + 1) * a].cmp(tuple) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Iterates over the tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &[Elem]> + Clone + '_ {
        self.rows.chunks_exact(self.arity)
    }

    /// The contiguous range of row indices whose first `prefix.len()`
    /// components equal `prefix`, found by binary search over the
    /// sorted rows. An empty prefix selects every row.
    ///
    /// # Panics
    /// Panics (in debug builds) if `prefix` is longer than the arity.
    pub fn prefix_range(&self, prefix: &[Elem]) -> std::ops::Range<usize> {
        let k = prefix.len();
        debug_assert!(k <= self.arity);
        if k == 0 {
            return 0..self.len();
        }
        let a = self.arity;
        // partition_point over row indices, comparing only the prefix.
        let search = |below: bool| -> usize {
            let (mut lo, mut hi) = (0usize, self.len());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let row = &self.rows[mid * a..mid * a + k];
                let less = if below { row < prefix } else { row <= prefix };
                if less {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        search(true)..search(false)
    }

    /// Iterates over the rows at the given indices (see
    /// [`Relation::prefix_range`]).
    pub fn rows_in(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = &[Elem]> {
        let a = self.arity;
        self.rows[range.start * a..range.end * a].chunks_exact(a)
    }

    /// The `i`-th tuple in lexicographic order.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn row(&self, i: usize) -> &[Elem] {
        &self.rows[i * self.arity..(i + 1) * self.arity]
    }
}

/// Compressed sparse row adjacency index for one binary relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Csr {
    offsets: Vec<u32>,
    targets: Vec<Elem>,
}

impl Csr {
    fn build(size: u32, pairs: impl Iterator<Item = (Elem, Elem)> + Clone) -> Csr {
        let n = size as usize;
        let mut counts = vec![0u32; n + 1];
        for (u, _) in pairs.clone() {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as Elem; offsets[n] as usize];
        for (u, v) in pairs {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        // Keep each adjacency list sorted for deterministic iteration.
        for u in 0..n {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            targets[s..e].sort_unstable();
        }
        Csr { offsets, targets }
    }

    fn neighbors(&self, u: Elem) -> &[Elem] {
        let (s, e) = (
            self.offsets[u as usize] as usize,
            self.offsets[u as usize + 1] as usize,
        );
        &self.targets[s..e]
    }
}

/// An immutable finite relational structure (a database instance).
///
/// Built with [`StructureBuilder`]; the domain is `{0, …, size−1}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Structure {
    sig: Arc<Signature>,
    size: u32,
    rels: Vec<Relation>,
    consts: Vec<Elem>,
    /// Forward/backward adjacency, indexed like `rels`, present only for
    /// binary relations.
    #[serde(skip, default)]
    adj: Vec<Option<(Csr, Csr)>>,
}

impl PartialEq for Structure {
    fn eq(&self, other: &Self) -> bool {
        self.sig == other.sig
            && self.size == other.size
            && self.rels == other.rels
            && self.consts == other.consts
    }
}

impl Eq for Structure {}

impl std::hash::Hash for Structure {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.size.hash(state);
        self.rels.hash(state);
        self.consts.hash(state);
    }
}

impl Structure {
    /// The signature of the structure.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// Domain size `n`; the domain is `{0, …, n−1}`.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Iterates over the domain `0..n`.
    pub fn domain(&self) -> impl Iterator<Item = Elem> + Clone {
        0..self.size
    }

    /// The interpretation of a relation symbol.
    pub fn rel(&self, r: RelId) -> &Relation {
        &self.rels[r.0]
    }

    /// The interpretation of a relation symbol, looked up by name.
    pub fn rel_by_name(&self, name: &str) -> Option<&Relation> {
        self.sig.relation(name).map(|r| self.rel(r))
    }

    /// The interpretation of a constant symbol.
    pub fn constant(&self, c: ConstId) -> Elem {
        self.consts[c.0]
    }

    /// All constant interpretations in declaration order.
    pub fn constants(&self) -> &[Elem] {
        &self.consts
    }

    /// Membership test `R(t̄)`.
    pub fn holds(&self, r: RelId, tuple: &[Elem]) -> bool {
        self.rels[r.0].contains(tuple)
    }

    /// Out-neighbors `{v | R(u, v)}` of `u` under a **binary** relation.
    ///
    /// # Panics
    /// Panics if `r` is not binary.
    pub fn out_neighbors(&self, r: RelId, u: Elem) -> &[Elem] {
        let (fwd, _) = self.adj[r.0]
            .as_ref()
            .expect("out_neighbors requires a binary relation");
        fwd.neighbors(u)
    }

    /// In-neighbors `{v | R(v, u)}` of `u` under a **binary** relation.
    ///
    /// # Panics
    /// Panics if `r` is not binary.
    pub fn in_neighbors(&self, r: RelId, u: Elem) -> &[Elem] {
        let (_, bwd) = self.adj[r.0]
            .as_ref()
            .expect("in_neighbors requires a binary relation");
        bwd.neighbors(u)
    }

    /// Out-degree of `u` under a binary relation.
    pub fn out_degree(&self, r: RelId, u: Elem) -> usize {
        self.out_neighbors(r, u).len()
    }

    /// In-degree of `u` under a binary relation.
    pub fn in_degree(&self, r: RelId, u: Elem) -> usize {
        self.in_neighbors(r, u).len()
    }

    /// Total number of tuples across all relations.
    pub fn num_tuples(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }

    /// Disjoint union `A ⊎ B`: the elements of `B` are shifted up by
    /// `A.size()`.
    ///
    /// Only defined for signatures without constants (a constant cannot
    /// denote two elements at once).
    pub fn disjoint_union(&self, other: &Structure) -> Result<Structure, StructureError> {
        if self.sig != other.sig {
            return Err(StructureError::SignatureMismatch);
        }
        if self.sig.num_constants() > 0 {
            return Err(StructureError::UnassignedConstant(
                self.sig.constant_name(ConstId(0)).to_owned(),
            ));
        }
        let shift = self.size;
        let mut b = StructureBuilder::new(self.sig.clone(), self.size + other.size);
        for (r, _, _) in self.sig.relations() {
            for t in self.rel(r).iter() {
                b.add_unchecked(r, t);
            }
            let mut buf = Vec::new();
            for t in other.rel(r).iter() {
                buf.clear();
                buf.extend(t.iter().map(|&e| e + shift));
                b.add_unchecked(r, &buf);
            }
        }
        Ok(b.build_unchecked())
    }

    /// The substructure induced by `elems` (duplicates ignored).
    ///
    /// Returns the induced structure (with domain `{0, …, k−1}` in the
    /// order given by the sorted, deduplicated `elems`) together with the
    /// mapping `new → old`. Constants are only retained if the signature
    /// has none (constants outside the induced domain are not
    /// representable).
    ///
    /// # Panics
    /// Panics if the signature has constants, or an element is out of
    /// range.
    pub fn induced(&self, elems: &[Elem]) -> (Structure, Vec<Elem>) {
        assert_eq!(
            self.sig.num_constants(),
            0,
            "induced substructures require a constant-free signature"
        );
        let mut keep: Vec<Elem> = elems.to_vec();
        keep.sort_unstable();
        keep.dedup();
        assert!(keep.iter().all(|&e| e < self.size), "element out of range");
        // old -> new position; u32::MAX = dropped
        let mut pos = vec![u32::MAX; self.size as usize];
        for (i, &e) in keep.iter().enumerate() {
            pos[e as usize] = i as u32;
        }
        let mut b = StructureBuilder::new(self.sig.clone(), keep.len() as u32);
        let mut buf = Vec::new();
        for (r, _, _) in self.sig.relations() {
            'tuples: for t in self.rel(r).iter() {
                buf.clear();
                for &e in t {
                    let p = pos[e as usize];
                    if p == u32::MAX {
                        continue 'tuples;
                    }
                    buf.push(p);
                }
                b.add_unchecked(r, &buf);
            }
        }
        (b.build_unchecked(), keep)
    }

    /// Applies a bijective relabeling `perm` (`old → new`) to the
    /// structure; `perm` must be a permutation of `0..size`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `perm` is not a permutation.
    pub fn relabel(&self, perm: &[Elem]) -> Structure {
        debug_assert_eq!(perm.len(), self.size as usize);
        debug_assert!({
            let mut seen = vec![false; perm.len()];
            perm.iter().all(|&p| {
                let fresh = !seen[p as usize];
                seen[p as usize] = true;
                fresh
            })
        });
        let mut b = StructureBuilder::new(self.sig.clone(), self.size);
        let mut buf = Vec::new();
        for (r, _, _) in self.sig.relations() {
            for t in self.rel(r).iter() {
                buf.clear();
                buf.extend(t.iter().map(|&e| perm[e as usize]));
                b.add_unchecked(r, &buf);
            }
        }
        for (c, _) in self.sig.constants() {
            b.set_constant(c, perm[self.constant(c) as usize]);
        }
        b.build_unchecked()
    }

    /// Rebuilds the adjacency indexes. Needed after deserialization
    /// (indexes are not serialized).
    pub fn reindex(&mut self) {
        self.adj = build_adj(self.size, &self.rels);
    }
}

fn build_adj(size: u32, rels: &[Relation]) -> Vec<Option<(Csr, Csr)>> {
    rels.iter()
        .map(|rel| {
            if rel.arity() == 2 {
                let fwd = Csr::build(size, rel.iter().map(|t| (t[0], t[1])));
                let bwd = Csr::build(size, rel.iter().map(|t| (t[1], t[0])));
                Some((fwd, bwd))
            } else {
                None
            }
        })
        .collect()
}

/// Incremental construction of a [`Structure`].
///
/// ```
/// use fmt_structures::{Signature, StructureBuilder};
/// let sig = Signature::graph();
/// let e = sig.relation("E").unwrap();
/// let mut b = StructureBuilder::new(sig, 3);
/// b.add(e, &[0, 1]).unwrap();
/// b.add(e, &[1, 2]).unwrap();
/// let s = b.build().unwrap();
/// assert!(s.holds(e, &[0, 1]));
/// assert!(!s.holds(e, &[1, 0]));
/// ```
#[derive(Debug, Clone)]
pub struct StructureBuilder {
    sig: Arc<Signature>,
    size: u32,
    flat: Vec<Vec<Elem>>,
    consts: Vec<Option<Elem>>,
}

impl StructureBuilder {
    /// Starts building a structure with domain `{0, …, size−1}`.
    pub fn new(sig: Arc<Signature>, size: u32) -> StructureBuilder {
        let nr = sig.num_relations();
        let nc = sig.num_constants();
        StructureBuilder {
            sig,
            size,
            flat: vec![Vec::new(); nr],
            consts: vec![None; nc],
        }
    }

    /// The domain size under construction.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The signature under construction.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// Adds a tuple to a relation, validating arity and range.
    pub fn add(&mut self, r: RelId, tuple: &[Elem]) -> Result<&mut Self, StructureError> {
        let arity = self.sig.arity(r);
        if tuple.len() != arity {
            return Err(StructureError::ArityMismatch {
                relation: self.sig.relation_name(r).to_owned(),
                expected: arity,
                got: tuple.len(),
            });
        }
        for &e in tuple {
            if e >= self.size {
                return Err(StructureError::ElementOutOfRange {
                    elem: e,
                    size: self.size,
                });
            }
        }
        self.flat[r.0].extend_from_slice(tuple);
        Ok(self)
    }

    /// Adds a tuple without validation; used internally on paths where
    /// tuples are known to be in range. Debug builds still assert.
    pub(crate) fn add_unchecked(&mut self, r: RelId, tuple: &[Elem]) {
        debug_assert_eq!(tuple.len(), self.sig.arity(r));
        debug_assert!(tuple.iter().all(|&e| e < self.size));
        self.flat[r.0].extend_from_slice(tuple);
    }

    /// Adds an edge to a binary relation (convenience for graphs).
    pub fn edge(&mut self, r: RelId, u: Elem, v: Elem) -> Result<&mut Self, StructureError> {
        self.add(r, &[u, v])
    }

    /// Assigns an interpretation to a constant symbol.
    pub fn set_constant(&mut self, c: ConstId, e: Elem) -> &mut Self {
        self.consts[c.0] = Some(e);
        self
    }

    /// Finishes building: sorts and deduplicates every relation and
    /// constructs adjacency indexes for the binary ones.
    pub fn build(self) -> Result<Structure, StructureError> {
        for (i, c) in self.consts.iter().enumerate() {
            match c {
                None => {
                    return Err(StructureError::UnassignedConstant(
                        self.sig.constant_name(ConstId(i)).to_owned(),
                    ))
                }
                Some(e) if *e >= self.size => {
                    return Err(StructureError::ElementOutOfRange {
                        elem: *e,
                        size: self.size,
                    })
                }
                _ => {}
            }
        }
        Ok(self.build_unchecked())
    }

    pub(crate) fn build_unchecked(self) -> Structure {
        let rels: Vec<Relation> = self
            .flat
            .into_iter()
            .enumerate()
            .map(|(i, flat)| Relation::from_rows(self.sig.arity(RelId(i)), flat))
            .collect();
        let adj = build_adj(self.size, &rels);
        Structure {
            sig: self.sig,
            size: self.size,
            consts: self.consts.into_iter().map(|c| c.unwrap_or(0)).collect(),
            rels,
            adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: u32, edges: &[(Elem, Elem)]) -> Structure {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig, n);
        for &(u, v) in edges {
            b.edge(e, u, v).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn relation_sorted_dedup() {
        let s = graph(3, &[(2, 1), (0, 1), (2, 1), (0, 1)]);
        let e = s.signature().relation("E").unwrap();
        let rows: Vec<Vec<Elem>> = s.rel(e).iter().map(<[u32]>::to_vec).collect();
        assert_eq!(rows, vec![vec![0, 1], vec![2, 1]]);
        assert_eq!(s.rel(e).len(), 2);
        assert_eq!(s.num_tuples(), 2);
    }

    #[test]
    fn membership() {
        let s = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let e = s.signature().relation("E").unwrap();
        assert!(s.holds(e, &[1, 2]));
        assert!(!s.holds(e, &[2, 1]));
        assert!(!s.holds(e, &[3, 3]));
    }

    #[test]
    fn adjacency() {
        let s = graph(4, &[(0, 1), (0, 2), (1, 2), (3, 0)]);
        let e = s.signature().relation("E").unwrap();
        assert_eq!(s.out_neighbors(e, 0), &[1, 2]);
        assert_eq!(s.in_neighbors(e, 0), &[3]);
        assert_eq!(s.out_degree(e, 3), 1);
        assert_eq!(s.in_degree(e, 2), 2);
        assert_eq!(s.out_neighbors(e, 2), &[] as &[Elem]);
    }

    #[test]
    fn builder_validation() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig, 2);
        assert!(matches!(
            b.add(e, &[0, 5]),
            Err(StructureError::ElementOutOfRange { elem: 5, size: 2 })
        ));
        assert!(matches!(
            b.add(e, &[0]),
            Err(StructureError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unassigned_constant_rejected() {
        let sig = Signature::builder().constant("c").finish_arc();
        let b = StructureBuilder::new(sig, 1);
        assert!(matches!(
            b.build(),
            Err(StructureError::UnassignedConstant(_))
        ));
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = graph(2, &[(0, 1)]);
        let b = graph(3, &[(0, 2)]);
        let u = a.disjoint_union(&b).unwrap();
        let e = u.signature().relation("E").unwrap();
        assert_eq!(u.size(), 5);
        assert!(u.holds(e, &[0, 1]));
        assert!(u.holds(e, &[2, 4]));
        assert_eq!(u.num_tuples(), 2);
    }

    #[test]
    fn induced_substructure() {
        let s = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (sub, map) = s.induced(&[1, 2, 4]);
        let e = sub.signature().relation("E").unwrap();
        assert_eq!(map, vec![1, 2, 4]);
        assert_eq!(sub.size(), 3);
        // Only the edge (1,2) survives, relabeled to (0,1).
        assert!(sub.holds(e, &[0, 1]));
        assert_eq!(sub.num_tuples(), 1);
    }

    #[test]
    fn relabel_roundtrip() {
        let s = graph(3, &[(0, 1), (1, 2)]);
        let perm = [2, 0, 1];
        let t = s.relabel(&perm);
        let e = t.signature().relation("E").unwrap();
        assert!(t.holds(e, &[2, 0]));
        assert!(t.holds(e, &[0, 1]));
        let inv = [1, 2, 0];
        assert_eq!(t.relabel(&inv), s);
    }

    #[test]
    fn reindex_rebuilds_adjacency() {
        let s = graph(3, &[(0, 1), (1, 2)]);
        let e = s.signature().relation("E").unwrap();
        let mut t = s.clone();
        t.adj.clear(); // simulate a freshly deserialized structure
        t.reindex();
        assert_eq!(t.out_neighbors(e, 1), s.out_neighbors(e, 1));
        assert_eq!(s, t);
    }
}
