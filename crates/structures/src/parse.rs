//! A small line-oriented text format for structures.
//!
//! ```text
//! # a 4-element structure
//! size: 4
//! E(0,1)
//! E(1,2)
//! Red(3)
//! root = 0
//! ```
//!
//! * `size: n` — domain `{0, …, n−1}`; must come first (comments aside).
//! * `R(e₁, …, eₖ)` — a tuple; the arity of `R` is fixed by its first
//!   occurrence (or by the provided signature).
//! * `c = e` — a constant interpretation.
//! * `#`-comments and blank lines are ignored.
//!
//! [`parse`] infers the signature from the text (symbols ordered by first
//! occurrence); [`parse_with`] validates against a given signature.
//! [`to_text`] renders a structure back; round-tripping is exact.

use crate::{Elem, Interner, Signature, Structure, StructureBuilder};
use std::fmt::Write as _;
use std::sync::Arc;

/// Errors from the structure text parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

struct RawLine<'a> {
    no: usize,
    text: &'a str,
}

fn meaningful_lines(text: &str) -> impl Iterator<Item = RawLine<'_>> {
    text.lines().enumerate().filter_map(|(i, l)| {
        let t = l.split('#').next().unwrap_or("").trim();
        if t.is_empty() {
            None
        } else {
            Some(RawLine { no: i + 1, text: t })
        }
    })
}

enum Item<'a> {
    Size(u32),
    Tuple { rel: &'a str, args: Vec<Elem> },
    Const { name: &'a str, value: Elem },
}

fn parse_line<'a>(l: &RawLine<'a>) -> Result<Item<'a>, ParseError> {
    let t = l.text;
    if let Some(rest) = t.strip_prefix("size:").or_else(|| t.strip_prefix("size ")) {
        let n: u32 = rest
            .trim()
            .parse()
            .map_err(|_| err(l.no, format!("invalid size {rest:?}")))?;
        return Ok(Item::Size(n));
    }
    if let Some(open) = t.find('(') {
        let rel = t[..open].trim();
        if rel.is_empty() || rel.contains(char::is_whitespace) {
            return Err(err(l.no, format!("invalid relation name in {t:?}")));
        }
        let close = t
            .rfind(')')
            .ok_or_else(|| err(l.no, format!("missing ')' in {t:?}")))?;
        if !t[close + 1..].trim().is_empty() {
            return Err(err(l.no, format!("trailing garbage after ')' in {t:?}")));
        }
        let inner = &t[open + 1..close];
        let args: Result<Vec<Elem>, _> = inner
            .split(',')
            .map(|a| {
                a.trim()
                    .parse::<Elem>()
                    .map_err(|_| err(l.no, format!("invalid element {a:?}")))
            })
            .collect();
        return Ok(Item::Tuple { rel, args: args? });
    }
    if let Some(eq) = t.find('=') {
        let name = t[..eq].trim();
        let value: Elem = t[eq + 1..]
            .trim()
            .parse()
            .map_err(|_| err(l.no, format!("invalid constant value in {t:?}")))?;
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(err(l.no, format!("invalid constant name in {t:?}")));
        }
        return Ok(Item::Const { name, value });
    }
    Err(err(l.no, format!("unrecognized line {t:?}")))
}

/// Parses a structure, inferring the signature from the text.
///
/// Relation and constant symbols are interned to dense ids in
/// first-occurrence order, which is exactly the symbol order of the
/// inferred signature; the per-symbol metadata (arity, first line)
/// lives in `Vec`s indexed by those ids.
pub fn parse(text: &str) -> Result<Structure, ParseError> {
    // First pass: size + signature.
    let mut size: Option<u32> = None;
    let mut rel_names = Interner::new();
    let mut rel_meta: Vec<(usize, usize)> = Vec::new(); // arity, first line (by rel id)
    let mut const_names = Interner::new();
    for l in meaningful_lines(text) {
        match parse_line(&l)? {
            Item::Size(n) => {
                if size.is_some() {
                    return Err(err(l.no, "duplicate size declaration"));
                }
                size = Some(n);
            }
            Item::Tuple { rel, args } => {
                let id = rel_names.intern(rel) as usize;
                match rel_meta.get(id) {
                    Some(&(arity, first)) if arity != args.len() => {
                        return Err(err(
                            l.no,
                            format!(
                        "relation {rel} used with arity {} but had arity {arity} at line {first}",
                        args.len()
                    ),
                        ))
                    }
                    Some(_) => {}
                    None => rel_meta.push((args.len(), l.no)),
                }
            }
            Item::Const { name, .. } => {
                const_names.intern(name);
            }
        }
    }
    let mut sb = Signature::builder();
    for (name, &(arity, _)) in rel_names.names().iter().zip(rel_meta.iter()) {
        sb = sb.relation(name, arity);
    }
    for c in const_names.names() {
        sb = sb.constant(c);
    }
    parse_with(sb.finish_arc(), text)
}

/// Parses a structure over a known signature, validating all symbols.
pub fn parse_with(sig: Arc<Signature>, text: &str) -> Result<Structure, ParseError> {
    let mut builder: Option<StructureBuilder> = None;
    for l in meaningful_lines(text) {
        match parse_line(&l)? {
            Item::Size(n) => {
                if builder.is_some() {
                    return Err(err(l.no, "duplicate size declaration"));
                }
                builder = Some(StructureBuilder::new(sig.clone(), n));
            }
            Item::Tuple { rel, args } => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(l.no, "size declaration must come first"))?;
                let r = sig
                    .relation(rel)
                    .ok_or_else(|| err(l.no, format!("unknown relation {rel}")))?;
                b.add(r, &args).map_err(|e| err(l.no, e.to_string()))?;
            }
            Item::Const { name, value } => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(l.no, "size declaration must come first"))?;
                let c = sig
                    .constant(name)
                    .ok_or_else(|| err(l.no, format!("unknown constant {name}")))?;
                if value >= b.size() {
                    return Err(err(l.no, format!("constant value {value} out of range")));
                }
                b.set_constant(c, value);
            }
        }
    }
    let b = builder.ok_or_else(|| err(0, "missing size declaration"))?;
    b.build().map_err(|e| err(0, e.to_string()))
}

/// Renders a structure in the text format accepted by [`parse`].
pub fn to_text(s: &Structure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "size: {}", s.size());
    for (r, name, _) in s.signature().relations() {
        for t in s.rel(r).iter() {
            let args: Vec<String> = t.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "{name}({})", args.join(","));
        }
    }
    for (c, name) in s.signature().constants() {
        let _ = writeln!(out, "{name} = {}", s.constant(c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn parse_simple_graph() {
        let s = parse("size: 3\nE(0,1)\nE(1,2)\n").unwrap();
        assert_eq!(s.size(), 3);
        let e = s.signature().relation("E").unwrap();
        assert!(s.holds(e, &[0, 1]));
        assert!(!s.holds(e, &[2, 1]));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = parse("# header\n\nsize: 2 # trailing\nE(0,1) # edge\n").unwrap();
        assert_eq!(s.size(), 2);
        assert_eq!(s.num_tuples(), 1);
    }

    #[test]
    fn constants_parsed() {
        let s = parse("size: 4\nE(0,1)\nroot = 2\n").unwrap();
        let c = s.signature().constant("root").unwrap();
        assert_eq!(s.constant(c), 2);
    }

    #[test]
    fn roundtrip() {
        let orig = builders::undirected_cycle(5);
        let text = to_text(&orig);
        let back = parse_with(orig.signature().clone(), &text).unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn roundtrip_inferred_signature() {
        let orig = builders::linear_order(4);
        let back = parse(&to_text(&orig)).unwrap();
        // Signatures are structurally equal, so the structures are too.
        assert_eq!(orig, back);
    }

    #[test]
    fn error_element_out_of_range() {
        let e = parse("size: 2\nE(0,5)\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"), "{}", e.message);
    }

    #[test]
    fn error_inconsistent_arity() {
        let e = parse("size: 3\nR(0,1)\nR(0,1,2)\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn error_missing_size() {
        assert!(parse("E(0,1)\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn error_unknown_symbol_with_signature() {
        let sig = Signature::graph();
        let e = parse_with(sig, "size: 2\nF(0,1)\n").unwrap_err();
        assert!(e.message.contains("unknown relation"));
    }

    #[test]
    fn error_garbage() {
        assert!(parse("size: 2\nhello world\n").is_err());
        assert!(parse("size: 2\nE(0,1) extra\n").is_err());
        assert!(parse("size: two\n").is_err());
    }
}
