//! # fmt-structures
//!
//! Finite relational structures — the database substrate of the finite
//! model theory toolbox (Libkin, PODS'09).
//!
//! In finite model theory a *database* is a finite structure
//! `A = (A, R₁ᴬ, …, Rₖᴬ, c₁ᴬ, …, cₗᴬ)` over a relational [`Signature`]:
//! a finite domain (here always `{0, 1, …, n−1}` represented as
//! [`Elem`] = `u32`), one finite relation per relation symbol, and one
//! domain element per constant symbol. Following the convention of the
//! paper (and of the course notes distributed with it), signatures are
//! **relational**: no function symbols other than constants.
//!
//! This crate provides:
//!
//! * [`Signature`] / [`SignatureBuilder`] — vocabularies;
//! * [`Structure`] / [`StructureBuilder`] — immutable finite structures
//!   with sorted tuple stores and adjacency indexes for binary relations;
//! * [`builders`] — the structure families the paper's arguments live on:
//!   linear orders `Lₙ`, successor chains, cycles, full binary trees,
//!   grids, random graphs, disjoint unions;
//! * [`partial`] — partial isomorphisms (the winning condition of
//!   Ehrenfeucht–Fraïssé games);
//! * [`iso`] — full isomorphism testing with distinguished tuples
//!   (needed for neighborhood comparisons in locality arguments);
//! * [`canon`] — canonical forms of small structures, so that
//!   isomorphism types of neighborhoods can be used as hash keys.
//!
//! ## Example
//!
//! ```
//! use fmt_structures::{builders, iso};
//!
//! // Two linear orders of different lengths are not isomorphic...
//! let l5 = builders::linear_order(5);
//! let l6 = builders::linear_order(6);
//! assert!(!iso::are_isomorphic(&l5, &l6));
//!
//! // ...but every structure is isomorphic to itself.
//! let c = builders::directed_cycle(8);
//! assert!(iso::are_isomorphic(&c, &c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod builders;
pub mod canon;
pub mod diag;
pub mod index;
pub mod intern;
pub mod iso;
pub mod par;
pub mod parse;
pub mod partial;
mod signature;
pub mod store;
mod structure;

pub use budget::{Budget, BudgetResult, Exhausted, Resource};
pub use diag::{Diagnostic, Severity, Span};
pub use intern::Interner;
pub use signature::{ConstId, RelId, Signature, SignatureBuilder};
pub use store::TupleStore;
pub use structure::{Elem, Relation, Structure, StructureBuilder};

/// Errors produced while building or combining structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// A tuple mentioned an element `elem >= size`.
    ElementOutOfRange {
        /// The offending element.
        elem: Elem,
        /// The domain size of the structure under construction.
        size: u32,
    },
    /// A tuple of the wrong arity was inserted into a relation.
    ArityMismatch {
        /// Name of the relation symbol.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// Two structures over different signatures were combined.
    SignatureMismatch,
    /// A constant symbol was never assigned an interpretation.
    UnassignedConstant(String),
    /// The requested symbol does not exist in the signature.
    UnknownSymbol(String),
}

impl std::fmt::Display for StructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureError::ElementOutOfRange { elem, size } => {
                write!(f, "element {elem} out of range for domain of size {size}")
            }
            StructureError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation} has arity {expected}, got a tuple of length {got}"
            ),
            StructureError::SignatureMismatch => {
                write!(f, "structures are over different signatures")
            }
            StructureError::UnassignedConstant(c) => {
                write!(f, "constant {c} was never assigned an element")
            }
            StructureError::UnknownSymbol(s) => write!(f, "unknown symbol {s}"),
        }
    }
}

impl std::error::Error for StructureError {}
