//! The structure families on which the paper's arguments are played.
//!
//! Every inexpressibility argument in the survey is carried by a concrete
//! family of structures: pure sets for `EVEN(∅)`, linear orders `Lₙ` for
//! Theorem 3.1, successor chains for the BNDP example, long chains for
//! the Gaifman-locality argument against transitive closure, cycles
//! `Cₘ ⊎ Cₘ` vs `C₂ₘ` for the Hanf-locality argument against
//! connectivity, and full binary trees for the same-generation Datalog
//! example. This module builds all of them.

use crate::{Elem, Signature, Structure, StructureBuilder};
use rand::{Rng, RngExt};

/// A pure set of `n` elements: a structure over the empty vocabulary.
///
/// The paper's opening EVEN example: over pure sets the duplicator wins
/// the `n`-round game on any two sets with at least `n` elements.
pub fn set(n: u32) -> Structure {
    StructureBuilder::new(Signature::empty(), n).build_unchecked()
}

/// The linear order `Lₙ` on `n` elements: `<` interpreted as
/// `{(i, j) | i < j}` over the domain `{0, …, n−1}`.
pub fn linear_order(n: u32) -> Structure {
    let sig = Signature::order();
    let lt = sig.relation("<").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_unchecked(lt, &[i, j]);
        }
    }
    b.build_unchecked()
}

/// The successor chain `Sₙ` on `n` elements:
/// `S = {(0,1), (1,2), …, (n−2, n−1)}`.
///
/// The paper's BNDP warm-up: all in/out degrees of `Sₙ` are 0 or 1, but
/// its transitive closure realizes every degree in `{0, …, n−1}`.
pub fn successor_chain(n: u32) -> Structure {
    let sig = Signature::successor();
    let s = sig.relation("S").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for i in 1..n {
        b.add_unchecked(s, &[i - 1, i]);
    }
    b.build_unchecked()
}

/// A directed path graph on `n` vertices over the graph vocabulary:
/// edges `(0,1), (1,2), …`.
pub fn directed_path(n: u32) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for i in 1..n {
        b.add_unchecked(e, &[i - 1, i]);
    }
    b.build_unchecked()
}

/// An undirected path (chain) on `n` vertices: edges in both directions.
///
/// Used as the "very long chain" in the Gaifman-locality argument
/// against transitive closure, and as `G₁` in the paper's tree-test
/// example.
pub fn undirected_path(n: u32) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for i in 1..n {
        b.add_unchecked(e, &[i - 1, i]);
        b.add_unchecked(e, &[i, i - 1]);
    }
    b.build_unchecked()
}

/// A directed cycle on `n ≥ 1` vertices: edges `(i, i+1 mod n)`.
pub fn directed_cycle(n: u32) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for i in 0..n {
        b.add_unchecked(e, &[i, (i + 1) % n]);
    }
    b.build_unchecked()
}

/// An undirected cycle `Cₙ` on `n ≥ 3` vertices: edges in both
/// directions.
///
/// The paper's canonical Hanf-locality example compares `Cₘ ⊎ Cₘ` with
/// `C₂ₘ` for `m > 2r + 1`.
///
/// # Panics
/// Panics if `n < 3` (smaller "cycles" would collapse to multi-edges).
pub fn undirected_cycle(n: u32) -> Structure {
    assert!(n >= 3, "an undirected cycle needs at least 3 vertices");
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.add_unchecked(e, &[i, j]);
        b.add_unchecked(e, &[j, i]);
    }
    b.build_unchecked()
}

/// The disjoint union of `k` copies of `s` (signature must be
/// constant-free).
///
/// # Panics
/// Panics if `k == 0` or the signature has constants.
pub fn copies(s: &Structure, k: u32) -> Structure {
    assert!(k >= 1);
    let mut acc = s.clone();
    for _ in 1..k {
        acc = acc
            .disjoint_union(s)
            .expect("copies requires a constant-free signature");
    }
    acc
}

/// The complete loop-free directed graph `Kₙ`: all edges `(u, v)` with
/// `u ≠ v`.
///
/// The paper's 0-1 law example `Q₁ = ∀x∀y E(x,y)` holds (essentially)
/// only on complete graphs, so `μ(Q₁) = 0`.
pub fn complete_graph(n: u32) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_unchecked(e, &[u, v]);
            }
        }
    }
    b.build_unchecked()
}

/// The edgeless graph on `n` vertices.
pub fn empty_graph(n: u32) -> Structure {
    StructureBuilder::new(Signature::graph(), n).build_unchecked()
}

/// The full binary tree of depth `d` as a directed parent→child graph
/// (`2^{d+1} − 1` vertices; vertex 0 is the root, children of `v` are
/// `2v+1` and `2v+2`).
///
/// The paper's same-generation example: on this input the Datalog
/// same-generation query realizes all degrees `1, 2, 4, …, 2^d`,
/// violating the BNDP.
pub fn full_binary_tree(depth: u32) -> Structure {
    let n: u32 = (1u32 << (depth + 1)) - 1;
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                b.add_unchecked(e, &[v, child]);
            }
        }
    }
    b.build_unchecked()
}

/// An undirected `w × h` grid graph (vertex `(x, y)` is `y*w + x`).
///
/// A standard bounded-degree family (max degree 4), used in the
/// linear-time bounded-degree evaluation experiments.
pub fn grid(w: u32, h: u32) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, w * h);
    let id = |x: u32, y: u32| y * w + x;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_unchecked(e, &[id(x, y), id(x + 1, y)]);
                b.add_unchecked(e, &[id(x + 1, y), id(x, y)]);
            }
            if y + 1 < h {
                b.add_unchecked(e, &[id(x, y), id(x, y + 1)]);
                b.add_unchecked(e, &[id(x, y + 1), id(x, y)]);
            }
        }
    }
    b.build_unchecked()
}

/// The complete bipartite graph `K_{a,b}` (undirected; left part
/// `0..a`, right part `a..a+b`).
pub fn complete_bipartite(a: u32, b: u32) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut builder = StructureBuilder::new(sig, a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_unchecked(e, &[u, v]);
            builder.add_unchecked(e, &[v, u]);
        }
    }
    builder.build_unchecked()
}

/// The star `K_{1,n}`: center 0 joined to `n` leaves (undirected).
pub fn star(leaves: u32) -> Structure {
    complete_bipartite(1, leaves)
}

/// The `d`-dimensional hypercube graph `Q_d` on `2^d` vertices
/// (undirected; vertices adjacent iff their indices differ in one bit).
///
/// A classic vertex-transitive bounded-degree family (degree `d`).
///
/// # Panics
/// Panics if `d > 20` (2²⁰ vertices is the sanity bound).
pub fn hypercube(d: u32) -> Structure {
    assert!(d <= 20, "hypercube dimension bound");
    let n = 1u32 << d;
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_unchecked(e, &[v, w]);
                b.add_unchecked(e, &[w, v]);
            }
        }
    }
    b.build_unchecked()
}

/// An Erdős–Rényi random **undirected** graph `G(n, p)` (each unordered
/// pair independently an edge with probability `p`; stored
/// symmetrically).
pub fn random_undirected_graph<R: Rng + ?Sized>(n: u32, p: f64, rng: &mut R) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.add_unchecked(e, &[u, v]);
                b.add_unchecked(e, &[v, u]);
            }
        }
    }
    b.build_unchecked()
}

/// An Erdős–Rényi random **directed** graph: each ordered pair `(u, v)`,
/// `u ≠ v`, independently an edge with probability `p`.
pub fn random_directed_graph<R: Rng + ?Sized>(n: u32, p: f64, rng: &mut R) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random_bool(p) {
                b.add_unchecked(e, &[u, v]);
            }
        }
    }
    b.build_unchecked()
}

/// A random graph of maximum total degree ≤ `k`, built by sampling
/// candidate undirected edges and keeping those that respect the bound.
///
/// Used by the bounded-degree linear-time evaluation experiments
/// (Theorem 3.11): a large sparse input whose Gaifman degrees are
/// certified `≤ k`.
pub fn random_bounded_degree_graph<R: Rng + ?Sized>(n: u32, k: usize, rng: &mut R) -> Structure {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut deg = vec![0usize; n as usize];
    let mut edges: Vec<(Elem, Elem)> = Vec::new();
    let attempts = (n as usize) * k;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..attempts {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.contains(&key) {
            continue;
        }
        if deg[u as usize] < k && deg[v as usize] < k {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
            seen.insert(key);
            edges.push(key);
        }
    }
    let mut b = StructureBuilder::new(sig, n);
    for (u, v) in edges {
        b.add_unchecked(e, &[u, v]);
        b.add_unchecked(e, &[v, u]);
    }
    b.build_unchecked()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn set_has_no_relations() {
        let s = set(7);
        assert_eq!(s.size(), 7);
        assert_eq!(s.signature().num_relations(), 0);
        assert_eq!(s.num_tuples(), 0);
    }

    #[test]
    fn linear_order_counts() {
        let l = linear_order(5);
        let lt = l.signature().relation("<").unwrap();
        assert_eq!(l.rel(lt).len(), 10); // C(5,2)
        assert!(l.holds(lt, &[0, 4]));
        assert!(!l.holds(lt, &[4, 0]));
        assert!(!l.holds(lt, &[2, 2]));
    }

    #[test]
    fn successor_chain_degrees() {
        let s = successor_chain(6);
        let r = s.signature().relation("S").unwrap();
        assert_eq!(s.rel(r).len(), 5);
        assert_eq!(s.out_degree(r, 0), 1);
        assert_eq!(s.in_degree(r, 0), 0);
        assert_eq!(s.out_degree(r, 5), 0);
        assert_eq!(s.in_degree(r, 5), 1);
    }

    #[test]
    fn cycle_is_regular() {
        let c = undirected_cycle(7);
        let e = c.signature().relation("E").unwrap();
        for v in c.domain() {
            assert_eq!(c.out_degree(e, v), 2);
            assert_eq!(c.in_degree(e, v), 2);
        }
        assert_eq!(c.rel(e).len(), 14);
    }

    #[test]
    fn directed_cycle_small() {
        let c = directed_cycle(1);
        let e = c.signature().relation("E").unwrap();
        assert!(c.holds(e, &[0, 0])); // a single self-loop
        let c3 = directed_cycle(3);
        assert!(c3.holds(e, &[2, 0]));
    }

    #[test]
    fn copies_multiplies_size() {
        let c = undirected_cycle(5);
        let cc = copies(&c, 3);
        assert_eq!(cc.size(), 15);
        assert_eq!(cc.num_tuples(), 30);
    }

    #[test]
    fn complete_graph_edges() {
        let k = complete_graph(4);
        let e = k.signature().relation("E").unwrap();
        assert_eq!(k.rel(e).len(), 12);
        assert!(!k.holds(e, &[2, 2]));
    }

    #[test]
    fn binary_tree_shape() {
        let t = full_binary_tree(3);
        let e = t.signature().relation("E").unwrap();
        assert_eq!(t.size(), 15);
        assert_eq!(t.out_degree(e, 0), 2);
        assert_eq!(t.in_degree(e, 0), 0);
        // Leaves have out-degree 0.
        for v in 7..15 {
            assert_eq!(t.out_degree(e, v), 0);
            assert_eq!(t.in_degree(e, v), 1);
        }
    }

    #[test]
    fn grid_degrees() {
        let g = grid(4, 3);
        let e = g.signature().relation("E").unwrap();
        assert_eq!(g.size(), 12);
        // Corner (0,0) has degree 2; interior (1,1) has degree 4.
        assert_eq!(g.out_degree(e, 0), 2);
        assert_eq!(g.out_degree(e, 5), 4);
    }

    #[test]
    fn complete_bipartite_counts() {
        let k = complete_bipartite(2, 3);
        let e = k.signature().relation("E").unwrap();
        assert_eq!(k.size(), 5);
        assert_eq!(k.rel(e).len(), 12); // 2·3 undirected edges
        assert!(k.holds(e, &[0, 2]));
        assert!(!k.holds(e, &[0, 1])); // same side
        assert!(!k.holds(e, &[3, 4]));
    }

    #[test]
    fn star_shape() {
        let s = star(4);
        let e = s.signature().relation("E").unwrap();
        assert_eq!(s.out_degree(e, 0), 4);
        for v in 1..5 {
            assert_eq!(s.out_degree(e, v), 1);
        }
    }

    #[test]
    fn hypercube_regularity() {
        let q3 = hypercube(3);
        let e = q3.signature().relation("E").unwrap();
        assert_eq!(q3.size(), 8);
        for v in q3.domain() {
            assert_eq!(q3.out_degree(e, v), 3);
        }
        assert_eq!(q3.rel(e).len(), 24); // 12 undirected edges
                                         // Q_0 is a single vertex; Q_1 a single edge.
        assert_eq!(hypercube(0).size(), 1);
        assert_eq!(hypercube(1).num_tuples(), 2);
    }

    #[test]
    fn random_graph_determinism_and_symmetry() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = random_undirected_graph(20, 0.3, &mut r1);
        let b = random_undirected_graph(20, 0.3, &mut r2);
        assert_eq!(a, b);
        let e = a.signature().relation("E").unwrap();
        for t in a.rel(e).iter() {
            assert!(a.holds(e, &[t[1], t[0]]), "symmetric storage");
        }
    }

    #[test]
    fn bounded_degree_is_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_bounded_degree_graph(200, 3, &mut rng);
        let e = g.signature().relation("E").unwrap();
        for v in g.domain() {
            assert!(g.out_degree(e, v) <= 3);
        }
    }
}
