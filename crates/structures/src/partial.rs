//! Partial isomorphisms — the winning condition of Ehrenfeucht–Fraïssé
//! games.
//!
//! A function `f : A ⇀ B` with finite domain is a *partial isomorphism*
//! between structures `A` and `B` over the same signature iff
//!
//! * `f` is injective (and well defined),
//! * for every constant `c`, `cᴬ ∈ dom(f)` and `f(cᴬ) = cᴮ`,
//! * for every relation symbol `R` (including the identity) and all
//!   `a₁, …, aₙ ∈ dom(f)`:  `Rᴬ(a₁, …, aₙ)  iff  Rᴮ(f(a₁), …, f(aₙ))`.
//!
//! After `n` rounds of the EF game with plays `a₁…aₙ / b₁…bₙ` the
//! duplicator wins iff `aᵢ ↦ bᵢ` is a partial isomorphism (constants, if
//! any, are treated as played from the start).

use crate::{Elem, Structure};

/// Checks that the pair list describes a well-defined injective partial
/// function (i.e. `aᵢ = aⱼ ⟺ bᵢ = bⱼ`).
pub fn well_defined_injective(pairs: &[(Elem, Elem)]) -> bool {
    for (i, &(a1, b1)) in pairs.iter().enumerate() {
        for &(a2, b2) in &pairs[i + 1..] {
            if (a1 == a2) != (b1 == b2) {
                return false;
            }
        }
    }
    true
}

/// Returns the pair list extended with the constant pairs
/// `(cᴬ, cᴮ)` for every constant symbol `c`.
pub fn with_constants(a: &Structure, b: &Structure, pairs: &[(Elem, Elem)]) -> Vec<(Elem, Elem)> {
    let mut out = Vec::with_capacity(pairs.len() + a.constants().len());
    out.extend(
        a.constants()
            .iter()
            .zip(b.constants().iter())
            .map(|(&x, &y)| (x, y)),
    );
    out.extend_from_slice(pairs);
    out
}

/// Full partial-isomorphism check: `pairs` (implicitly extended with the
/// constant pairs) must be a partial isomorphism between `a` and `b`.
///
/// Checks every relation symbol on every tuple over the domain of the
/// map — `O(Σ_R |dom|^{arity(R)})` membership tests.
///
/// # Panics
/// Panics if the structures are over different signatures.
pub fn is_partial_isomorphism(a: &Structure, b: &Structure, pairs: &[(Elem, Elem)]) -> bool {
    assert_eq!(
        a.signature(),
        b.signature(),
        "partial isomorphism requires a common signature"
    );
    let ext = with_constants(a, b, pairs);
    if !well_defined_injective(&ext) {
        return false;
    }
    let sig = a.signature();
    let d = ext.len();
    let mut ta = Vec::new();
    let mut tb = Vec::new();
    for (r, _, arity) in sig.relations() {
        if d == 0 {
            continue;
        }
        // Enumerate all arity-length tuples over the map's domain with an
        // odometer over indices into `ext`.
        let mut idx = vec![0usize; arity];
        'tuples: loop {
            ta.clear();
            tb.clear();
            for &i in &idx {
                ta.push(ext[i].0);
                tb.push(ext[i].1);
            }
            if a.holds(r, &ta) != b.holds(r, &tb) {
                return false;
            }
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break 'tuples;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < d {
                    break;
                }
                idx[pos] = 0;
                if pos == 0 {
                    break 'tuples;
                }
            }
        }
    }
    true
}

/// Incremental check used by the EF game solver.
///
/// Precondition: `pairs` (extended with constants) is already a partial
/// isomorphism. Checks whether appending `(x, y)` keeps it one, by
/// examining only tuples that mention the new pair.
///
/// # Panics
/// Panics if the structures are over different signatures.
pub fn extension_ok(
    a: &Structure,
    b: &Structure,
    pairs: &[(Elem, Elem)],
    x: Elem,
    y: Elem,
) -> bool {
    debug_assert_eq!(a.signature(), b.signature());
    let ext = with_constants(a, b, pairs);
    // Well-definedness/injectivity with respect to the new pair.
    for &(p, q) in &ext {
        if (p == x) != (q == y) {
            return false;
        }
    }
    let full: Vec<(Elem, Elem)> = ext.iter().copied().chain(std::iter::once((x, y))).collect();
    let d = full.len();
    let new_idx = d - 1;
    let sig = a.signature();
    let mut ta = Vec::new();
    let mut tb = Vec::new();
    for (r, _, arity) in sig.relations() {
        // All tuples over `full` that use index `new_idx` at least once.
        let mut idx = vec![0usize; arity];
        'outer: loop {
            if idx.contains(&new_idx) {
                ta.clear();
                tb.clear();
                for &i in &idx {
                    ta.push(full[i].0);
                    tb.push(full[i].1);
                }
                if a.holds(r, &ta) != b.holds(r, &tb) {
                    return false;
                }
            }
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break 'outer;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < d {
                    break;
                }
                idx[pos] = 0;
                if pos == 0 {
                    break 'outer;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn empty_map_is_partial_iso() {
        let a = builders::linear_order(3);
        let b = builders::linear_order(5);
        assert!(is_partial_isomorphism(&a, &b, &[]));
    }

    #[test]
    fn well_definedness() {
        assert!(well_defined_injective(&[(0, 1), (2, 3)]));
        assert!(well_defined_injective(&[(0, 1), (0, 1)]));
        assert!(!well_defined_injective(&[(0, 1), (0, 2)])); // not a function
        assert!(!well_defined_injective(&[(0, 1), (2, 1)])); // not injective
    }

    #[test]
    fn order_preservation_detected() {
        let a = builders::linear_order(4);
        let b = builders::linear_order(4);
        // 0 < 2 in a maps to 3 > 1 in b: violates <.
        assert!(!is_partial_isomorphism(&a, &b, &[(0, 3), (2, 1)]));
        // Order-preserving map is fine.
        assert!(is_partial_isomorphism(&a, &b, &[(0, 1), (2, 3)]));
    }

    #[test]
    fn identity_handled_through_injectivity() {
        let a = builders::set(4);
        let b = builders::set(4);
        // Same element played twice must map to the same element twice.
        assert!(is_partial_isomorphism(&a, &b, &[(1, 2), (1, 2)]));
        assert!(!is_partial_isomorphism(&a, &b, &[(1, 2), (1, 3)]));
    }

    #[test]
    fn constants_must_match() {
        use crate::{Signature, StructureBuilder};
        let sig = Signature::builder()
            .relation("E", 2)
            .constant("c")
            .finish_arc();
        let e = sig.relation("E").unwrap();
        let c = sig.constant("c").unwrap();
        let mk = |cval, edge: (Elem, Elem)| {
            let mut b = StructureBuilder::new(sig.clone(), 3);
            b.edge(e, edge.0, edge.1).unwrap();
            b.set_constant(c, cval);
            b.build().unwrap()
        };
        let a = mk(0, (0, 1));
        let b2 = mk(0, (0, 1));
        // The constant pair (0,0) is implicit; playing (1,1) keeps the
        // edge relation matched.
        assert!(is_partial_isomorphism(&a, &b2, &[(1, 1)]));
        // Mapping 1 to 2 breaks E(c, ·).
        assert!(!is_partial_isomorphism(&a, &b2, &[(1, 2)]));
    }

    #[test]
    fn extension_matches_full_check() {
        let a = builders::undirected_cycle(6);
        let b = builders::undirected_cycle(7);
        let base = vec![(0, 0)];
        assert!(is_partial_isomorphism(&a, &b, &base));
        for x in a.domain() {
            for y in b.domain() {
                let mut ext = base.clone();
                ext.push((x, y));
                assert_eq!(
                    extension_ok(&a, &b, &base, x, y),
                    is_partial_isomorphism(&a, &b, &ext),
                    "mismatch at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn ternary_relation_checked() {
        use crate::{Signature, StructureBuilder};
        let sig = Signature::builder().relation("R", 3).finish_arc();
        let r = sig.relation("R").unwrap();
        let mut ba = StructureBuilder::new(sig.clone(), 3);
        ba.add(r, &[0, 1, 2]).unwrap();
        let a = ba.build().unwrap();
        let b = StructureBuilder::new(sig, 3).build().unwrap();
        // Mapping the triple pointwise must fail: R holds in a, not in b.
        assert!(!is_partial_isomorphism(&a, &b, &[(0, 0), (1, 1), (2, 2)]));
        // Mapping a single element is fine (no full triple in the domain
        // of the map ... except repetitions, which R does not contain).
        assert!(is_partial_isomorphism(&a, &b, &[(0, 0)]));
    }
}
