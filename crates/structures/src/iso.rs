//! Isomorphism testing, with optional distinguished tuples.
//!
//! Locality arguments constantly compare *pointed* structures: the
//! `r`-neighborhood `N_r^G(ā)` carries `ā` as distinguished elements, and
//! an isomorphism `h : N_r^G(ā) → N_r^{G'}(b̄)` must satisfy
//! `h(aᵢ) = bᵢ`. [`are_isomorphic_pointed`] implements exactly this.
//!
//! The algorithm is classic **color refinement followed by backtracking**:
//! elements are iteratively partitioned by an isomorphism-invariant color
//! (initially: constant/distinguished positions and unary membership;
//! refined by the multiset of colors seen across each relation), the color
//! histograms of the two structures must match, and a backtracking search
//! then matches same-colored elements with incremental consistency
//! checks. Exponential in the worst case but fast on the small,
//! well-refined structures (neighborhoods, chains, cycles, trees) that
//! the toolbox manipulates.

use crate::{Elem, Structure};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Computes stable colors for all elements via iterative refinement.
///
/// Two elements end with the same color only if no isomorphism-invariant
/// statistic computed here distinguishes them. `extra` assigns each
/// element an initial seed color (used for distinguished tuples).
pub(crate) fn refine_colors(s: &Structure, extra: &[u64]) -> Vec<u64> {
    let n = s.size() as usize;
    debug_assert_eq!(extra.len(), n);
    let sig = s.signature();

    // Initial colors: seed + constant positions + unary memberships.
    let mut colors: Vec<u64> = (0..n)
        .map(|v| {
            let mut h = DefaultHasher::new();
            extra[v].hash(&mut h);
            for (i, &c) in s.constants().iter().enumerate() {
                if c as usize == v {
                    (i as u64 + 1).hash(&mut h);
                }
            }
            for (r, _, arity) in sig.relations() {
                if arity == 1 {
                    s.holds(r, &[v as Elem]).hash(&mut h);
                }
            }
            h.finish()
        })
        .collect();

    // Incidence lists: for each element, the tuples it appears in.
    let mut incidences: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (rel, row)
    for (r, _, _) in sig.relations() {
        for (row, t) in s.rel(r).iter().enumerate() {
            for &e in t {
                incidences[e as usize].push((r.0, row));
            }
        }
    }

    let mut distinct = count_distinct(&colors);
    loop {
        let next: Vec<u64> = (0..n)
            .map(|v| {
                let mut sigs: Vec<u64> = incidences[v]
                    .iter()
                    .map(|&(r, row)| {
                        let t = s.rel(crate::RelId(r)).row(row);
                        let mut h = DefaultHasher::new();
                        r.hash(&mut h);
                        for &e in t {
                            // Mark the positions of v itself so that
                            // orientation information is preserved.
                            if e as usize == v {
                                u64::MAX.hash(&mut h);
                            } else {
                                colors[e as usize].hash(&mut h);
                            }
                        }
                        h.finish()
                    })
                    .collect();
                sigs.sort_unstable();
                let mut h = DefaultHasher::new();
                colors[v].hash(&mut h);
                sigs.hash(&mut h);
                h.finish()
            })
            .collect();
        let nd = count_distinct(&next);
        colors = next;
        if nd == distinct {
            return colors;
        }
        distinct = nd;
    }
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut v = colors.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

fn histogram(colors: &[u64]) -> HashMap<u64, usize> {
    let mut m = HashMap::new();
    for &c in colors {
        *m.entry(c).or_insert(0) += 1;
    }
    m
}

/// Seed colors that force `h(dᵢ) = eᵢ` for distinguished tuples: element
/// `v` gets a hash of the sorted list of positions at which it occurs.
pub(crate) fn distinguished_seed(n: usize, dist: &[Elem]) -> Vec<u64> {
    let mut seed = vec![0u64; n];
    let mut occ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &d) in dist.iter().enumerate() {
        occ[d as usize].push(i);
    }
    for v in 0..n {
        if !occ[v].is_empty() {
            let mut h = DefaultHasher::new();
            occ[v].hash(&mut h);
            seed[v] = h.finish().max(1);
        }
    }
    seed
}

/// Tests `A ≅ B`.
pub fn are_isomorphic(a: &Structure, b: &Structure) -> bool {
    find_isomorphism_pointed(a, &[], b, &[]).is_some()
}

/// Finds an isomorphism `A → B` as a vector `map[v] = h(v)`, if any.
pub fn find_isomorphism(a: &Structure, b: &Structure) -> Option<Vec<Elem>> {
    find_isomorphism_pointed(a, &[], b, &[])
}

/// Tests `(A, ā) ≅ (B, b̄)`: an isomorphism with `h(aᵢ) = bᵢ`.
pub fn are_isomorphic_pointed(a: &Structure, da: &[Elem], b: &Structure, db: &[Elem]) -> bool {
    find_isomorphism_pointed(a, da, b, db).is_some()
}

/// Finds a pointed isomorphism, if any.
///
/// Returns `None` when the structures differ in signature, size, tuple
/// counts, refined color histograms, or when the backtracking search
/// exhausts all candidate matchings.
pub fn find_isomorphism_pointed(
    a: &Structure,
    da: &[Elem],
    b: &Structure,
    db: &[Elem],
) -> Option<Vec<Elem>> {
    if a.signature() != b.signature() || a.size() != b.size() || da.len() != db.len() {
        return None;
    }
    let sig = a.signature();
    for (r, _, _) in sig.relations() {
        if a.rel(r).len() != b.rel(r).len() {
            return None;
        }
    }
    let n = a.size() as usize;

    // The distinguished map must itself be well defined & compatible.
    for (i, (&x, &y)) in da.iter().zip(db.iter()).enumerate() {
        for (&x2, &y2) in da[..i].iter().zip(db[..i].iter()) {
            if (x == x2) != (y == y2) {
                return None;
            }
        }
        let _ = (x, y);
    }

    let ca = refine_colors(a, &distinguished_seed(n, da));
    let cb = refine_colors(b, &distinguished_seed(n, db));
    if histogram(&ca) != histogram(&cb) {
        return None;
    }

    // Candidate targets for each element of A: same-colored elements of B.
    let mut by_color: HashMap<u64, Vec<Elem>> = HashMap::new();
    for (v, &c) in cb.iter().enumerate() {
        by_color.entry(c).or_default().push(v as Elem);
    }

    // Assignment order: elements with the fewest candidates first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| by_color.get(&ca[v]).map_or(0, Vec::len));

    // Incidence lists for incremental consistency checking.
    let mut inc_a: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut inc_b: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (r, _, _) in sig.relations() {
        for (row, t) in a.rel(r).iter().enumerate() {
            for &e in t {
                inc_a[e as usize].push((r.0, row));
            }
        }
        for (row, t) in b.rel(r).iter().enumerate() {
            for &e in t {
                inc_b[e as usize].push((r.0, row));
            }
        }
    }

    const UNSET: Elem = Elem::MAX;
    let mut map = vec![UNSET; n];
    let mut inv = vec![UNSET; n];

    // Pre-assign constants and distinguished elements.
    let mut forced: Vec<(Elem, Elem)> = a
        .constants()
        .iter()
        .zip(b.constants())
        .map(|(&x, &y)| (x, y))
        .collect();
    forced.extend(da.iter().zip(db.iter()).map(|(&x, &y)| (x, y)));
    for (x, y) in forced {
        let (xi, yi) = (x as usize, y as usize);
        if map[xi] != UNSET {
            if map[xi] != y {
                return None;
            }
            continue;
        }
        if inv[yi] != UNSET {
            return None;
        }
        map[xi] = y;
        inv[yi] = x;
    }

    // Validate forced assignments before searching.
    for v in 0..n {
        if map[v] != UNSET && !consistent(a, b, &map, &inv, &inc_a, &inc_b, v as Elem, map[v]) {
            return None;
        }
    }

    #[allow(clippy::too_many_arguments)] // internal search kernel
    fn consistent(
        a: &Structure,
        b: &Structure,
        map: &[Elem],
        inv: &[Elem],
        inc_a: &[Vec<(usize, usize)>],
        inc_b: &[Vec<(usize, usize)>],
        v: Elem,
        w: Elem,
    ) -> bool {
        const UNSET: Elem = Elem::MAX;
        let mut buf = Vec::new();
        // Forward: every fully-mapped A-tuple through v must hold in B.
        for &(r, row) in &inc_a[v as usize] {
            let t = a.rel(crate::RelId(r)).row(row);
            buf.clear();
            let mut complete = true;
            for &e in t {
                let m = map[e as usize];
                if m == UNSET {
                    complete = false;
                    break;
                }
                buf.push(m);
            }
            if complete && !b.holds(crate::RelId(r), &buf) {
                return false;
            }
        }
        // Backward: every fully-inverse-mapped B-tuple through w must
        // hold in A.
        for &(r, row) in &inc_b[w as usize] {
            let t = b.rel(crate::RelId(r)).row(row);
            buf.clear();
            let mut complete = true;
            for &e in t {
                let m = inv[e as usize];
                if m == UNSET {
                    complete = false;
                    break;
                }
                buf.push(m);
            }
            if complete && !a.holds(crate::RelId(r), &buf) {
                return false;
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)] // internal search kernel
    fn search(
        a: &Structure,
        b: &Structure,
        order: &[usize],
        pos: usize,
        ca: &[u64],
        by_color: &HashMap<u64, Vec<Elem>>,
        map: &mut Vec<Elem>,
        inv: &mut Vec<Elem>,
        inc_a: &[Vec<(usize, usize)>],
        inc_b: &[Vec<(usize, usize)>],
    ) -> bool {
        const UNSET: Elem = Elem::MAX;
        if pos == order.len() {
            return true;
        }
        let v = order[pos];
        if map[v] != UNSET {
            return search(a, b, order, pos + 1, ca, by_color, map, inv, inc_a, inc_b);
        }
        if let Some(cands) = by_color.get(&ca[v]) {
            for &w in cands {
                if inv[w as usize] != UNSET {
                    continue;
                }
                // Assign first so that tuples through v/w are visible to
                // the consistency check, then undo on failure.
                map[v] = w;
                inv[w as usize] = v as Elem;
                if consistent(a, b, map, inv, inc_a, inc_b, v as Elem, w)
                    && search(a, b, order, pos + 1, ca, by_color, map, inv, inc_a, inc_b)
                {
                    return true;
                }
                map[v] = UNSET;
                inv[w as usize] = UNSET;
            }
        }
        false
    }

    if search(
        a, b, &order, 0, &ca, &by_color, &mut map, &mut inv, &inc_a, &inc_b,
    ) {
        Some(map)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn isomorphic_cycles() {
        let a = builders::undirected_cycle(8);
        // Relabel by a rotation.
        let perm: Vec<Elem> = (0..8).map(|v| (v + 3) % 8).collect();
        let b = a.relabel(&perm);
        let map = find_isomorphism(&a, &b).expect("cycles are isomorphic");
        // Verify the witness.
        let e = a.signature().relation("E").unwrap();
        for t in a.rel(e).iter() {
            assert!(b.holds(e, &[map[t[0] as usize], map[t[1] as usize]]));
        }
    }

    #[test]
    fn non_isomorphic_different_edge_counts() {
        let a = builders::undirected_cycle(6);
        let b = builders::undirected_path(6);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn non_isomorphic_same_counts() {
        // C3 ⊎ C3 vs C6: same size, same number of edges, not isomorphic.
        let c3 = builders::undirected_cycle(3);
        let two = builders::copies(&c3, 2);
        let c6 = builders::undirected_cycle(6);
        assert_eq!(two.num_tuples(), c6.num_tuples());
        assert!(!are_isomorphic(&two, &c6));
    }

    #[test]
    fn pointed_isomorphism_respects_points() {
        // A path 0-1-2-3-4: (1,3) and (3,1) are exchangeable by the
        // reflection, but (0,1) and (0,3) are not.
        let p = builders::undirected_path(5);
        assert!(are_isomorphic_pointed(&p, &[1, 3], &p, &[3, 1]));
        assert!(are_isomorphic_pointed(&p, &[0, 1], &p, &[4, 3]));
        assert!(!are_isomorphic_pointed(&p, &[0, 1], &p, &[0, 3]));
        assert!(!are_isomorphic_pointed(&p, &[0], &p, &[2]));
    }

    #[test]
    fn pointed_repeats_must_match() {
        let p = builders::undirected_path(4);
        assert!(are_isomorphic_pointed(&p, &[1, 1], &p, &[2, 2]));
        assert!(!are_isomorphic_pointed(&p, &[1, 1], &p, &[1, 2]));
    }

    #[test]
    fn directed_orientation_matters() {
        let a = builders::directed_path(3);
        let e = a.signature().relation("E").unwrap();
        // Reverse all edges.
        let mut bb = crate::StructureBuilder::new(a.signature().clone(), 3);
        for t in a.rel(e).iter() {
            bb.add(e, &[t[1], t[0]]).unwrap();
        }
        let b = bb.build().unwrap();
        // A directed path is isomorphic to its reversal (flip the path).
        assert!(are_isomorphic(&a, &b));
        // But pointing at the source vs the sink is not.
        assert!(!are_isomorphic_pointed(&a, &[0], &b, &[0]));
        assert!(are_isomorphic_pointed(&a, &[0], &b, &[2]));
    }

    #[test]
    fn linear_orders_iso_iff_same_size() {
        for m in 1..6u32 {
            for k in 1..6u32 {
                assert_eq!(
                    are_isomorphic(&builders::linear_order(m), &builders::linear_order(k)),
                    m == k
                );
            }
        }
    }

    #[test]
    fn trees_of_different_shape() {
        // Star K_{1,3} vs path P4 (both 4 vertices, 3 undirected edges).
        let sig = crate::Signature::graph();
        let e = sig.relation("E").unwrap();
        let mut sb = crate::StructureBuilder::new(sig, 4);
        for v in 1..4 {
            sb.add(e, &[0, v]).unwrap();
            sb.add(e, &[v, 0]).unwrap();
        }
        let star = sb.build().unwrap();
        let path = builders::undirected_path(4);
        assert!(!are_isomorphic(&star, &path));
    }

    #[test]
    fn empty_structures() {
        let a = builders::set(0);
        let b = builders::set(0);
        assert!(are_isomorphic(&a, &b));
        assert!(!are_isomorphic(&builders::set(1), &builders::set(2)));
    }

    #[test]
    fn petersen_like_regular_pair() {
        // Two 3-regular graphs on 6 vertices: K_{3,3} and the prism
        // (C3 × K2). Same degree sequence, not isomorphic (K33 is
        // triangle-free).
        let sig = crate::Signature::graph();
        let e = sig.relation("E").unwrap();
        let mut b1 = crate::StructureBuilder::new(sig.clone(), 6);
        for u in 0..3u32 {
            for v in 3..6u32 {
                b1.add(e, &[u, v]).unwrap();
                b1.add(e, &[v, u]).unwrap();
            }
        }
        let k33 = b1.build().unwrap();
        let mut b2 = crate::StructureBuilder::new(sig, 6);
        let prism_edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (0, 3),
            (1, 4),
            (2, 5),
        ];
        for (u, v) in prism_edges {
            b2.add(e, &[u, v]).unwrap();
            b2.add(e, &[v, u]).unwrap();
        }
        let prism = b2.build().unwrap();
        assert!(!are_isomorphic(&k33, &prism));
        assert!(are_isomorphic(&k33, &k33.relabel(&[5, 4, 3, 2, 1, 0])));
    }
}
