//! Canonical forms of small (pointed) structures.
//!
//! Locality tools need *isomorphism types* of neighborhoods as dictionary
//! keys: Hanf-locality compares the multisets of types realized in two
//! structures, and the bounded-degree evaluator (Theorem 3.11) counts,
//! for each type `τ ∈ N(k, r)`, how many nodes realize `τ`. A canonical
//! form turns "same isomorphism type" into "same key".
//!
//! [`canonical_key`] implements individualization–refinement: colors are
//! refined (see [`crate::iso`]); if the partition is discrete the
//! color order yields a labeling and we encode the relabeled structure;
//! otherwise every vertex of the first non-singleton cell is
//! individualized in turn and the lexicographically least encoding over
//! all branches is returned. Exponential on highly symmetric inputs, but
//! the neighborhoods arising in bounded-degree structures (paths, cycles,
//! tree fragments) refine essentially to completion.
//!
//! **Guarantee**: `canonical_key(A, ā) == canonical_key(B, b̄)` iff
//! `(A, ā) ≅ (B, b̄)` (pointed isomorphism). This is cross-validated
//! against the backtracking isomorphism test in this crate's property
//! tests.

use crate::iso::{distinguished_seed, refine_colors};
use crate::{Elem, Structure};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A canonical encoding of a pointed structure; equal keys ⟺ pointed
/// isomorphic structures (for structures over equal signatures).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CanonKey(Vec<u32>);

impl CanonKey {
    /// A compact 64-bit fingerprint of the key (for bucketing; collisions
    /// possible, equality of keys is the ground truth).
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.0.hash(&mut h);
        h.finish()
    }

    /// Length of the underlying encoding (proportional to structure size
    /// plus total tuple size).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the encoding of the empty structure with no points.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

const SEP: u32 = u32::MAX;

/// Computes the canonical key of `(s, dist)` under pointed isomorphism.
///
/// Intended for *small* structures (neighborhoods); cost can be
/// exponential on large symmetric structures.
pub fn canonical_key(s: &Structure, dist: &[Elem]) -> CanonKey {
    let n = s.size() as usize;
    let seed = distinguished_seed(n, dist);
    let mut best: Option<Vec<u32>> = None;
    search(s, dist, seed, &mut best);
    CanonKey(best.unwrap_or_default())
}

fn search(s: &Structure, dist: &[Elem], seed: Vec<u64>, best: &mut Option<Vec<u32>>) {
    let n = s.size() as usize;
    let colors = refine_colors(s, &seed);

    // Group vertices into cells ordered by color value (isomorphism
    // invariant: colors are computed from invariant data only).
    let mut cells: Vec<(u64, Vec<usize>)> = Vec::new();
    {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_unstable_by_key(|&v| colors[v]);
        for v in idx {
            match cells.last_mut() {
                Some((c, members)) if *c == colors[v] => members.push(v),
                _ => cells.push((colors[v], vec![v])),
            }
        }
    }

    if let Some((_, cell)) = cells.iter().find(|(_, m)| m.len() > 1) {
        // Individualize each member of the first non-singleton cell.
        let cell = cell.clone();
        for v in cell {
            let mut s2 = seed.clone();
            let mut h = DefaultHasher::new();
            // A marker distinct from every refinement color yet equal
            // across branches: hash of (old seed, "individualized").
            (seed[v], 0x1d1d_1d1d_u64, colors[v]).hash(&mut h);
            s2[v] = h.finish() | 1;
            search(s, dist, s2, best);
        }
        return;
    }

    // Discrete partition: position in the cell order is the label.
    let mut label = vec![0u32; n];
    for (i, (_, m)) in cells.iter().enumerate() {
        label[m[0]] = i as u32;
    }
    let enc = encode(s, dist, &label);
    match best {
        Some(b) if *b <= enc => {}
        _ => *best = Some(enc),
    }
}

/// Encodes a fully labeled structure: size, distinguished labels,
/// constant labels, then for each relation its sorted relabeled tuples.
fn encode(s: &Structure, dist: &[Elem], label: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(2 + dist.len() + s.num_tuples() * 2);
    out.push(s.size());
    out.push(SEP);
    for &d in dist {
        out.push(label[d as usize]);
    }
    out.push(SEP);
    for &c in s.constants() {
        out.push(label[c as usize]);
    }
    out.push(SEP);
    for (r, _, arity) in s.signature().relations() {
        let mut rows: Vec<Vec<u32>> = s
            .rel(r)
            .iter()
            .map(|t| t.iter().map(|&e| label[e as usize]).collect())
            .collect();
        rows.sort_unstable();
        for row in rows {
            out.extend(row);
            debug_assert_eq!(arity, s.signature().arity(r));
        }
        out.push(SEP);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, iso};

    #[test]
    fn key_invariant_under_relabeling() {
        let p = builders::undirected_path(7);
        let perm: Vec<Elem> = vec![3, 0, 6, 1, 5, 2, 4];
        let q = p.relabel(&perm);
        assert_eq!(canonical_key(&p, &[]), canonical_key(&q, &[]));
        // Pointed: point at 0 in p corresponds to perm[0] = 3 in q.
        assert_eq!(canonical_key(&p, &[0]), canonical_key(&q, &[3]));
    }

    #[test]
    fn key_separates_non_isomorphic() {
        let c6 = builders::undirected_cycle(6);
        let c3x2 = builders::copies(&builders::undirected_cycle(3), 2);
        assert_ne!(canonical_key(&c6, &[]), canonical_key(&c3x2, &[]));
    }

    #[test]
    fn pointed_keys_separate_positions() {
        let p = builders::undirected_path(5);
        // Endpoint vs midpoint.
        assert_ne!(canonical_key(&p, &[0]), canonical_key(&p, &[2]));
        // The two endpoints are exchangeable.
        assert_eq!(canonical_key(&p, &[0]), canonical_key(&p, &[4]));
    }

    #[test]
    fn symmetric_structures() {
        // Complete graph on 5 vertices: every pointing is equivalent.
        let k5 = builders::complete_graph(5);
        let k = canonical_key(&k5, &[0]);
        for v in 1..5 {
            assert_eq!(k, canonical_key(&k5, &[v]));
        }
    }

    #[test]
    fn agrees_with_iso_on_small_graph_suite() {
        let suite: Vec<Structure> = vec![
            builders::undirected_path(4),
            builders::undirected_cycle(4),
            builders::undirected_cycle(3),
            builders::complete_graph(4),
            builders::empty_graph(4),
            builders::directed_path(4),
            builders::full_binary_tree(1),
        ];
        for a in &suite {
            for b in &suite {
                if a.signature() != b.signature() {
                    continue;
                }
                assert_eq!(
                    canonical_key(a, &[]) == canonical_key(b, &[]),
                    iso::are_isomorphic(a, b),
                    "canon/iso disagree"
                );
            }
        }
    }

    #[test]
    fn distinguished_tuple_order_matters() {
        let p = builders::directed_path(3);
        assert_ne!(canonical_key(&p, &[0, 2]), canonical_key(&p, &[2, 0]));
    }

    #[test]
    fn fingerprint_consistency() {
        let a = builders::undirected_cycle(5);
        let k1 = canonical_key(&a, &[]);
        let k2 = canonical_key(&a.relabel(&[4, 3, 2, 1, 0]), &[]);
        assert_eq!(k1.fingerprint(), k2.fingerprint());
        assert!(!k1.is_empty());
        assert!(!k1.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::iso;
    use proptest::prelude::*;

    fn arb_small_graph() -> impl Strategy<Value = Structure> {
        (2u32..7, proptest::collection::vec(any::<bool>(), 36)).prop_map(|(n, bits)| {
            let sig = crate::Signature::graph();
            let e = sig.relation("E").unwrap();
            let mut b = crate::StructureBuilder::new(sig, n);
            let mut k = 0;
            for u in 0..n {
                for v in 0..n {
                    if u != v && bits[k % bits.len()] {
                        b.add(e, &[u, v]).unwrap();
                    }
                    k += 1;
                }
            }
            b.build().unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// canonical_key and the backtracking isomorphism test agree.
        #[test]
        fn canon_matches_iso(a in arb_small_graph(), b in arb_small_graph()) {
            let ka = canonical_key(&a, &[]);
            let kb = canonical_key(&b, &[]);
            prop_assert_eq!(ka == kb, iso::are_isomorphic(&a, &b));
        }

        /// Keys are invariant under random relabelings.
        #[test]
        fn canon_relabel_invariant(a in arb_small_graph(), seed in any::<u64>()) {
            let n = a.size() as usize;
            let mut perm: Vec<Elem> = (0..n as Elem).collect();
            // Fisher–Yates with a tiny deterministic LCG.
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let b = a.relabel(&perm);
            prop_assert_eq!(canonical_key(&a, &[]), canonical_key(&b, &[]));
            if n > 0 {
                prop_assert_eq!(
                    canonical_key(&a, &[0]),
                    canonical_key(&b, &[perm[0]])
                );
            }
        }
    }
}
