//! Relational vocabularies (signatures).

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a relation symbol within a [`Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub usize);

/// Identifier of a constant symbol within a [`Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConstId(pub usize);

#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct RelDecl {
    name: String,
    arity: usize,
}

/// A relational vocabulary: finitely many relation symbols with fixed
/// arities, plus finitely many constant symbols.
///
/// Following the paper's standing convention ("Assume all structures are
/// relational"), there are no function symbols of arity ≥ 1. Signatures
/// are cheap to share via [`Arc`]; two signatures are interchangeable iff
/// they are structurally equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    rels: Vec<RelDecl>,
    consts: Vec<String>,
}

impl Signature {
    /// Starts building a signature.
    pub fn builder() -> SignatureBuilder {
        SignatureBuilder {
            sig: Signature {
                rels: Vec::new(),
                consts: Vec::new(),
            },
        }
    }

    /// The empty vocabulary — structures over it are pure sets.
    ///
    /// This is the vocabulary of the paper's first EVEN example.
    pub fn empty() -> Arc<Signature> {
        Arc::new(Signature {
            rels: Vec::new(),
            consts: Vec::new(),
        })
    }

    /// The graph vocabulary: one binary relation symbol `E`.
    pub fn graph() -> Arc<Signature> {
        Signature::builder().relation("E", 2).finish_arc()
    }

    /// The linear-order vocabulary: one binary relation symbol `<`.
    pub fn order() -> Arc<Signature> {
        Signature::builder().relation("<", 2).finish_arc()
    }

    /// The successor vocabulary: one binary relation symbol `S`.
    pub fn successor() -> Arc<Signature> {
        Signature::builder().relation("S", 2).finish_arc()
    }

    /// Number of relation symbols.
    pub fn num_relations(&self) -> usize {
        self.rels.len()
    }

    /// Number of constant symbols.
    pub fn num_constants(&self) -> usize {
        self.consts.len()
    }

    /// Looks up a relation symbol by name.
    pub fn relation(&self, name: &str) -> Option<RelId> {
        self.rels.iter().position(|r| r.name == name).map(RelId)
    }

    /// Looks up a constant symbol by name.
    pub fn constant(&self, name: &str) -> Option<ConstId> {
        self.consts.iter().position(|c| c == name).map(ConstId)
    }

    /// Arity of a relation symbol.
    ///
    /// # Panics
    /// Panics if `rel` does not belong to this signature.
    pub fn arity(&self, rel: RelId) -> usize {
        self.rels[rel.0].arity
    }

    /// Name of a relation symbol.
    ///
    /// # Panics
    /// Panics if `rel` does not belong to this signature.
    pub fn relation_name(&self, rel: RelId) -> &str {
        &self.rels[rel.0].name
    }

    /// Name of a constant symbol.
    ///
    /// # Panics
    /// Panics if `c` does not belong to this signature.
    pub fn constant_name(&self, c: ConstId) -> &str {
        &self.consts[c.0]
    }

    /// Iterates over all relation symbols as `(id, name, arity)`.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &str, usize)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i), r.name.as_str(), r.arity))
    }

    /// Iterates over all constant symbols as `(id, name)`.
    pub fn constants(&self) -> impl Iterator<Item = (ConstId, &str)> {
        self.consts
            .iter()
            .enumerate()
            .map(|(i, c)| (ConstId(i), c.as_str()))
    }

    /// Maximum arity over all relation symbols (0 for the empty signature).
    pub fn max_arity(&self) -> usize {
        self.rels.iter().map(|r| r.arity).max().unwrap_or(0)
    }
}

/// Incremental construction of a [`Signature`].
///
/// ```
/// use fmt_structures::Signature;
/// let sig = Signature::builder()
///     .relation("E", 2)
///     .relation("Red", 1)
///     .constant("root")
///     .finish_arc();
/// assert_eq!(sig.num_relations(), 2);
/// assert_eq!(sig.arity(sig.relation("E").unwrap()), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SignatureBuilder {
    sig: Signature,
}

impl SignatureBuilder {
    /// Adds a relation symbol. Names must be unique.
    ///
    /// # Panics
    /// Panics if a symbol with the same name already exists or if the
    /// arity is zero (use a constant or a unary relation instead).
    pub fn relation(mut self, name: &str, arity: usize) -> Self {
        assert!(arity >= 1, "relation arity must be at least 1");
        assert!(
            self.sig.relation(name).is_none() && self.sig.constant(name).is_none(),
            "duplicate symbol {name}"
        );
        self.sig.rels.push(RelDecl {
            name: name.to_owned(),
            arity,
        });
        self
    }

    /// Adds a constant symbol. Names must be unique.
    ///
    /// # Panics
    /// Panics if a symbol with the same name already exists.
    pub fn constant(mut self, name: &str) -> Self {
        assert!(
            self.sig.relation(name).is_none() && self.sig.constant(name).is_none(),
            "duplicate symbol {name}"
        );
        self.sig.consts.push(name.to_owned());
        self
    }

    /// Finishes building.
    pub fn finish(self) -> Signature {
        self.sig
    }

    /// Finishes building, wrapped in an [`Arc`] for cheap sharing.
    pub fn finish_arc(self) -> Arc<Signature> {
        Arc::new(self.sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let sig = Signature::builder()
            .relation("E", 2)
            .relation("P", 1)
            .constant("c0")
            .finish();
        assert_eq!(sig.relation("E"), Some(RelId(0)));
        assert_eq!(sig.relation("P"), Some(RelId(1)));
        assert_eq!(sig.relation("Q"), None);
        assert_eq!(sig.constant("c0"), Some(ConstId(0)));
        assert_eq!(sig.constant("E"), None);
        assert_eq!(sig.arity(RelId(0)), 2);
        assert_eq!(sig.arity(RelId(1)), 1);
        assert_eq!(sig.relation_name(RelId(1)), "P");
        assert_eq!(sig.constant_name(ConstId(0)), "c0");
    }

    #[test]
    fn canned_signatures() {
        assert_eq!(Signature::empty().num_relations(), 0);
        assert_eq!(Signature::graph().num_relations(), 1);
        assert_eq!(Signature::graph().arity(RelId(0)), 2);
        assert!(Signature::order().relation("<").is_some());
        assert!(Signature::successor().relation("S").is_some());
    }

    #[test]
    fn max_arity() {
        assert_eq!(Signature::empty().max_arity(), 0);
        let sig = Signature::builder()
            .relation("R", 3)
            .relation("E", 2)
            .finish();
        assert_eq!(sig.max_arity(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbol_panics() {
        let _ = Signature::builder().relation("E", 2).constant("E");
    }

    #[test]
    fn equality_is_structural() {
        let a = Signature::builder().relation("E", 2).finish();
        let b = Signature::builder().relation("E", 2).finish();
        assert_eq!(a, b);
        let c = Signature::builder().relation("E", 3).finish();
        assert_ne!(a, c);
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let sig = Signature::builder()
            .relation("B", 1)
            .relation("A", 2)
            .finish();
        let names: Vec<&str> = sig.relations().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["B", "A"]);
    }
}
