//! Constant interning: symbols to dense ids, once, at parse/build time.
//!
//! Parsers used to number names ad hoc — a `Vec<String>` per scope with
//! `iter().position(..)` lookups, re-implemented in each engine. The
//! [`Interner`] centralizes that contract: the first occurrence of a
//! symbol gets the next dense id (`0, 1, 2, …`), later occurrences get
//! the same id back, and `resolve` inverts the mapping. Dense ids are
//! what make columnar arenas and `Vec`-indexed side tables work without
//! hashing at evaluation time (see `docs/storage.md`).

use std::collections::HashMap;

/// An append-only bijection between symbols and dense `u32` ids.
///
/// Ids are handed out in first-occurrence order, so the mapping is
/// deterministic given the input text — a property the differential
/// oracles rely on when comparing engines across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// The id for `name`, minting the next dense id on first sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.map.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// The id for `name` if it has been interned, without minting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    /// The symbol behind `id`, if `id` was minted by this interner.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The symbols in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Consumes the interner, returning the symbols in id order.
    pub fn into_names(self) -> Vec<String> {
        self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_first_occurrence_ordered() {
        let mut it = Interner::new();
        assert_eq!(it.intern("a"), 0);
        assert_eq!(it.intern("b"), 1);
        assert_eq!(it.intern("a"), 0);
        assert_eq!(it.intern("c"), 2);
        assert_eq!(it.len(), 3);
        assert_eq!(it.names(), ["a", "b", "c"]);
    }

    #[test]
    fn resolve_inverts_intern() {
        let mut it = Interner::new();
        for name in ["x", "y", "z"] {
            let id = it.intern(name);
            assert_eq!(it.resolve(id), Some(name));
            assert_eq!(it.get(name), Some(id));
        }
        assert_eq!(it.get("w"), None);
        assert_eq!(it.resolve(99), None);
        assert_eq!(it.into_names(), ["x", "y", "z"]);
    }
}
