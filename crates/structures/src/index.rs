//! Shared tuple-index subsystem for the join engines.
//!
//! Both the Datalog fixpoint engine (`fmt-queries`) and the relational
//! algebra evaluator (`fmt-eval`) join relations by repeatedly asking
//! "which tuples have these values at these positions?". Answering that
//! by rescanning the full extent per partial binding is what made the
//! survey's fixpoint workloads slow; this module centralizes the fast
//! answers instead:
//!
//! * [`probe_prefix`] — binary-searches the sorted flat storage of an
//!   EDB [`Relation`] when the bound positions form a prefix (no build
//!   cost, reuses the sort that [`Relation`] maintains anyway);
//! * [`TupleIndex`] — a hash index over owned flat rows, keyed by an
//!   arbitrary subset of positions;
//! * [`ColumnIndex`] — the same keyed lookup over a [`TupleStore`]'s
//!   column arenas, yielding row ids instead of slices, maintained
//!   incrementally as the fixpoint loop appends.
//!
//! Both hash indexes key their buckets by a **hash of the keyed
//! columns** (`HashMap<u64, Vec<u32>>`), folding the projected values
//! directly into the hash — building and probing never materialize a
//! key `Vec<Elem>`. Hash collisions are resolved by verifying every
//! bucket candidate's keyed columns against the probe values, so a
//! degenerate hash function changes performance, never answers (the
//! collision tests below force exactly that).
//!
//! Every probe and scan is metered so `fmtk --stats` and the perf
//! regression tests can compare indexed and scan evaluation exactly.
//! The metric names live under `queries.index.*` because the query
//! engine is the primary customer, but the counters cover every user of
//! this module:
//!
//! * `queries.index.builds` / `queries.index.build_tuples` — index
//!   construction work;
//! * `queries.index.probe_ops` — probe operations issued;
//! * `queries.index.probes` — candidate tuples yielded by probes (the
//!   indexed engine's "tuple comparisons");
//! * `queries.index.scan_tuples` — tuples visited by full scans that an
//!   index-aware engine still had to do (unbound atoms, delta drivers).

use crate::store::{fnv_step, ElemHasher, TupleStore, FNV_SEED};
use crate::{Elem, Relation};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Passes an already-hashed `u64` key through unchanged. The index maps
/// are keyed by FNV folds of the keyed columns, so running those keys
/// through SipHash again on every probe is pure overhead on the join
/// engine's hottest path.
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("index maps are keyed by u64 hashes only")
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// A bucket map keyed by a pre-computed hash (identity re-hash).
type BucketMap = HashMap<u64, Vec<u32>, BuildHasherDefault<PreHashed>>;

static OBS_BUILDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.builds");
static OBS_BUILD_TUPLES: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.build_tuples");
static OBS_PROBE_OPS: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.probe_ops");
static OBS_PROBES: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.probes");
static OBS_SCAN_TUPLES: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.scan_tuples");

/// Records that an engine using the index layer fell back to visiting
/// `tuples` rows by full scan (no usable bound positions).
#[inline]
pub fn note_scan(tuples: u64) {
    OBS_SCAN_TUPLES.add(tuples);
}

/// Probes the sorted row storage of a [`Relation`] for all tuples whose
/// first `prefix.len()` components equal `prefix`, by binary search.
///
/// # Panics
/// Panics (in debug builds) if `prefix` is longer than the arity.
pub fn probe_prefix<'a>(rel: &'a Relation, prefix: &[Elem]) -> impl Iterator<Item = &'a [Elem]> {
    let range = rel.prefix_range(prefix);
    OBS_PROBE_OPS.incr();
    OBS_PROBES.add(range.len() as u64);
    rel.rows_in(range)
}

/// Folds the values at `key` positions of `tuple` into a hash.
#[inline]
fn key_hash(key: &[usize], tuple: &[Elem]) -> u64 {
    key.iter().fold(FNV_SEED, |h, &p| fnv_step(h, tuple[p]))
}

/// A hash index over a set of same-arity tuples, keyed by the values at
/// a fixed subset of positions.
///
/// The index owns flat copies of the indexed tuples, so it can outlive
/// (and be shared across threads independently of) the collection it
/// was built from — the property the parallel fixpoint rounds rely on.
/// Buckets are keyed by a hash of the projected columns; candidates are
/// verified against the flat row arena on probe, so neither insert nor
/// probe allocates a key vector.
#[derive(Debug, Clone)]
pub struct TupleIndex {
    arity: usize,
    key: Vec<usize>,
    rows: Vec<Elem>,
    /// Nullary rows occupy no arena space, so track their count.
    len: usize,
    map: BucketMap,
}

impl TupleIndex {
    /// Builds an index over `tuples`, keyed by the positions in `key`.
    ///
    /// # Panics
    /// Panics (in debug builds) if a key position is out of range or a
    /// tuple has the wrong arity.
    pub fn build<'a, I>(arity: usize, key: &[usize], tuples: I) -> TupleIndex
    where
        I: IntoIterator<Item = &'a [Elem]>,
    {
        debug_assert!(key.iter().all(|&p| p < arity) || arity == 0);
        let mut idx = TupleIndex {
            arity,
            key: key.to_vec(),
            rows: Vec::new(),
            len: 0,
            map: BucketMap::default(),
        };
        OBS_BUILDS.incr();
        for t in tuples {
            idx.insert(t);
        }
        idx
    }

    /// Adds one tuple (used to maintain IDB indexes incrementally as a
    /// fixpoint round merges its delta). Hashes the projected columns
    /// in place — no key allocation.
    pub fn insert(&mut self, tuple: &[Elem]) {
        debug_assert_eq!(tuple.len(), self.arity);
        let id = self.len as u32;
        self.len += 1;
        self.rows.extend_from_slice(tuple);
        let h = key_hash(&self.key, tuple);
        self.map.entry(h).or_default().push(id);
        OBS_BUILD_TUPLES.incr();
    }

    /// The key positions this index is built on.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The flat row with the given id.
    #[inline]
    fn row(&self, id: u32) -> &[Elem] {
        &self.rows[id as usize * self.arity..(id as usize + 1) * self.arity]
    }

    /// All tuples whose key positions hold exactly `key_vals` (in the
    /// order of [`TupleIndex::key`]). Bucket candidates are verified
    /// column-by-column, so hash collisions cannot leak wrong tuples.
    pub fn probe<'a>(&'a self, key_vals: &'a [Elem]) -> impl Iterator<Item = &'a [Elem]> + 'a {
        debug_assert_eq!(key_vals.len(), self.key.len());
        OBS_PROBE_OPS.incr();
        let h = key_vals.iter().fold(FNV_SEED, |h, &v| fnv_step(h, v));
        let ids: &[u32] = self.map.get(&h).map_or(&[], Vec::as_slice);
        OBS_PROBES.add(ids.len() as u64);
        ids.iter().map(|&id| self.row(id)).filter(move |row| {
            self.key
                .iter()
                .zip(key_vals.iter())
                .all(|(&p, &v)| row[p] == v)
        })
    }
}

/// A keyed hash index over the rows of a [`TupleStore`].
///
/// Unlike [`TupleIndex`], a `ColumnIndex` owns no row data: it maps a
/// hash of the keyed columns to the row ids holding those values, and
/// verification reads the store's arenas directly. `extend` picks up
/// rows appended since the last call, which is exactly the shape of the
/// semi-naive merge step (indexes always cover `0..store.len()`).
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    key: Vec<usize>,
    map: BucketMap,
    built_upto: u32,
    hasher: ElemHasher,
}

impl ColumnIndex {
    /// An empty index keyed by the given positions.
    pub fn new(key: &[usize]) -> ColumnIndex {
        ColumnIndex::with_hasher(key, fnv_step)
    }

    /// An empty index with a custom hash-step function (collision tests
    /// install a constant step to force the verify path).
    pub fn with_hasher(key: &[usize], hasher: ElemHasher) -> ColumnIndex {
        OBS_BUILDS.incr();
        ColumnIndex {
            key: key.to_vec(),
            map: BucketMap::default(),
            built_upto: 0,
            hasher,
        }
    }

    /// The key positions this index is built on.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// The row id one past the last indexed row.
    pub fn built_upto(&self) -> u32 {
        self.built_upto
    }

    /// Indexes every store row appended since the previous `extend`.
    ///
    /// # Panics
    /// Panics (in debug builds) if a key position is out of range for
    /// the store's arity.
    pub fn extend(&mut self, store: &TupleStore) {
        debug_assert!(self.key.iter().all(|&p| p < store.arity()) || store.arity() == 0);
        let upto = store.rows32();
        for id in self.built_upto..upto {
            let h = self
                .key
                .iter()
                .fold(FNV_SEED, |h, &p| (self.hasher)(h, store.value(id, p)));
            self.map.entry(h).or_default().push(id);
            OBS_BUILD_TUPLES.incr();
        }
        self.built_upto = upto;
    }

    /// Row ids of *live* rows in `store` whose keyed columns hold
    /// exactly `key_vals`. Candidates come from the hash bucket and
    /// are verified against the arenas, so collisions cannot leak
    /// wrong rows; tombstoned rows stay in the buckets until the store
    /// is compacted (and the index rebuilt), so liveness is checked
    /// here too.
    pub fn probe<'a>(
        &'a self,
        store: &'a TupleStore,
        key_vals: &'a [Elem],
    ) -> impl Iterator<Item = u32> + 'a {
        debug_assert_eq!(key_vals.len(), self.key.len());
        OBS_PROBE_OPS.incr();
        let h = key_vals.iter().fold(FNV_SEED, |h, &v| (self.hasher)(h, v));
        let ids: &[u32] = self.map.get(&h).map_or(&[], Vec::as_slice);
        OBS_PROBES.add(ids.len() as u64);
        ids.iter().copied().filter(move |&id| {
            store.is_live(id)
                && self
                    .key
                    .iter()
                    .zip(key_vals.iter())
                    .all(|(&p, &v)| store.value(id, p) == v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, Signature};

    #[test]
    fn hash_index_probes_exact_matches() {
        let tuples: Vec<Vec<Elem>> = vec![vec![0, 1], vec![2, 1], vec![2, 3], vec![4, 1]];
        let idx = TupleIndex::build(2, &[1], tuples.iter().map(Vec::as_slice));
        assert_eq!(idx.len(), 4);
        let key = [1];
        let hits: Vec<&[Elem]> = idx.probe(&key).collect();
        assert_eq!(hits, vec![&[0, 1][..], &[2, 1], &[4, 1]]);
        assert_eq!(idx.probe(&[9]).count(), 0);
    }

    #[test]
    fn empty_key_yields_every_tuple() {
        let tuples: Vec<Vec<Elem>> = vec![vec![0, 1], vec![2, 3]];
        let idx = TupleIndex::build(2, &[], tuples.iter().map(Vec::as_slice));
        assert_eq!(idx.probe(&[]).count(), 2);
    }

    #[test]
    fn incremental_inserts_visible() {
        let mut idx = TupleIndex::build(2, &[0], std::iter::empty());
        assert!(idx.is_empty());
        idx.insert(&[5, 7]);
        idx.insert(&[5, 8]);
        let key = [5];
        let hits: Vec<&[Elem]> = idx.probe(&key).collect();
        assert_eq!(hits, vec![&[5, 7][..], &[5, 8]]);
    }

    #[test]
    fn nullary_tuples_supported() {
        let tuples: Vec<Vec<Elem>> = vec![vec![]];
        let idx = TupleIndex::build(0, &[], tuples.iter().map(Vec::as_slice));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.probe(&[]).count(), 1);
    }

    #[test]
    fn prefix_probe_matches_filter() {
        let s = builders::grid(4, 3);
        let e = Signature::graph().relation("E").unwrap();
        let rel = s.rel(e);
        for u in s.domain() {
            let probed: Vec<&[Elem]> = probe_prefix(rel, &[u]).collect();
            let scanned: Vec<&[Elem]> = rel.iter().filter(|t| t[0] == u).collect();
            assert_eq!(probed, scanned, "prefix [{u}]");
        }
        // Full-tuple prefix degenerates to membership.
        let first = rel.iter().next().unwrap().to_vec();
        assert_eq!(probe_prefix(rel, &first).count(), 1);
        // Empty prefix is the whole relation.
        assert_eq!(probe_prefix(rel, &[]).count(), rel.len());
    }

    #[test]
    fn column_index_probe_matches_scan() {
        let mut st = TupleStore::new(2);
        for t in [[0, 1], [2, 1], [2, 3], [4, 1]] {
            st.push_if_new(&t);
        }
        let mut idx = ColumnIndex::new(&[1]);
        idx.extend(&st);
        let hits: Vec<u32> = idx.probe(&st, &[1]).collect();
        assert_eq!(hits, vec![0, 1, 3]);
        assert_eq!(idx.probe(&st, &[9]).count(), 0);
        // Incremental extend picks up the appended rows only.
        st.push_if_new(&[6, 1]);
        idx.extend(&st);
        assert_eq!(idx.built_upto(), 5);
        let hits: Vec<u32> = idx.probe(&st, &[1]).collect();
        assert_eq!(hits, vec![0, 1, 3, 4]);
    }

    /// A hash step that ignores the value: every key collides.
    fn collide(h: u64, _e: Elem) -> u64 {
        h
    }

    #[test]
    fn column_index_survives_total_hash_collision() {
        // All keyed-column hashes are equal, so every probe walks one
        // bucket holding every row; verification against the arenas
        // must still return exactly the matching ids.
        let mut st = TupleStore::new(2);
        for u in 0..32u32 {
            st.push_if_new(&[u % 4, u]);
        }
        let mut idx = ColumnIndex::with_hasher(&[0], collide);
        idx.extend(&st);
        for k in 0..6u32 {
            let probed: Vec<u32> = idx.probe(&st, &[k]).collect();
            let scanned: Vec<u32> = (0..st.len32()).filter(|&id| st.value(id, 0) == k).collect();
            assert_eq!(probed, scanned, "key [{k}]");
        }
    }

    #[test]
    fn tuple_index_verifies_same_hash_different_keys() {
        // Distinct keyed values can share a bucket after hashing; the
        // probe must filter them out. Build a big index and check every
        // key against a scan to exercise whatever collisions occur.
        let tuples: Vec<Vec<Elem>> = (0..256u32).map(|u| vec![u % 16, u]).collect();
        let idx = TupleIndex::build(2, &[0], tuples.iter().map(Vec::as_slice));
        for k in 0..16u32 {
            let key = [k];
            let probed: Vec<&[Elem]> = idx.probe(&key).collect();
            let scanned: Vec<&[Elem]> = tuples
                .iter()
                .map(Vec::as_slice)
                .filter(|t| t[0] == k)
                .collect();
            assert_eq!(probed, scanned, "key [{k}]");
        }
    }
}
