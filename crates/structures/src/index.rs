//! Shared tuple-index subsystem for the join engines.
//!
//! Both the Datalog fixpoint engine (`fmt-queries`) and the relational
//! algebra evaluator (`fmt-eval`) join relations by repeatedly asking
//! "which tuples have these values at these positions?". Answering that
//! by rescanning the full extent per partial binding is what made the
//! survey's fixpoint workloads slow; this module centralizes the two
//! fast answers instead:
//!
//! * [`probe_prefix`] — binary-searches the sorted flat storage of an
//!   EDB [`Relation`] when the bound positions form a prefix (no build
//!   cost, reuses the sort that [`Relation`] maintains anyway);
//! * [`TupleIndex`] — a hash index keyed by an arbitrary subset of
//!   positions, built lazily, cached per evaluation, and maintainable
//!   incrementally for the growing IDB extents of a fixpoint loop.
//!
//! Every probe and scan is metered so `fmtk --stats` and the perf
//! regression tests can compare indexed and scan evaluation exactly.
//! The metric names live under `queries.index.*` because the query
//! engine is the primary customer, but the counters cover every user of
//! this module:
//!
//! * `queries.index.builds` / `queries.index.build_tuples` — index
//!   construction work;
//! * `queries.index.probe_ops` — probe operations issued;
//! * `queries.index.probes` — candidate tuples yielded by probes (the
//!   indexed engine's "tuple comparisons");
//! * `queries.index.scan_tuples` — tuples visited by full scans that an
//!   index-aware engine still had to do (unbound atoms, delta drivers).

use crate::{Elem, Relation};
use std::collections::HashMap;

static OBS_BUILDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.builds");
static OBS_BUILD_TUPLES: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.build_tuples");
static OBS_PROBE_OPS: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.probe_ops");
static OBS_PROBES: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.probes");
static OBS_SCAN_TUPLES: fmt_obs::Counter = fmt_obs::Counter::new("queries.index.scan_tuples");

/// Records that an engine using the index layer fell back to visiting
/// `tuples` rows by full scan (no usable bound positions).
#[inline]
pub fn note_scan(tuples: u64) {
    OBS_SCAN_TUPLES.add(tuples);
}

/// Probes the sorted row storage of a [`Relation`] for all tuples whose
/// first `prefix.len()` components equal `prefix`, by binary search.
///
/// # Panics
/// Panics (in debug builds) if `prefix` is longer than the arity.
pub fn probe_prefix<'a>(rel: &'a Relation, prefix: &[Elem]) -> impl Iterator<Item = &'a [Elem]> {
    let range = rel.prefix_range(prefix);
    OBS_PROBE_OPS.incr();
    OBS_PROBES.add(range.len() as u64);
    rel.rows_in(range)
}

/// A hash index over a set of same-arity tuples, keyed by the values at
/// a fixed subset of positions.
///
/// The index owns flat copies of the indexed tuples, so it can outlive
/// (and be shared across threads independently of) the collection it
/// was built from — the property the parallel fixpoint rounds rely on.
#[derive(Debug, Clone)]
pub struct TupleIndex {
    arity: usize,
    key: Vec<usize>,
    rows: Vec<Elem>,
    map: HashMap<Vec<Elem>, Vec<u32>>,
}

impl TupleIndex {
    /// Builds an index over `tuples`, keyed by the positions in `key`.
    ///
    /// # Panics
    /// Panics (in debug builds) if a key position is out of range or a
    /// tuple has the wrong arity.
    pub fn build<'a, I>(arity: usize, key: &[usize], tuples: I) -> TupleIndex
    where
        I: IntoIterator<Item = &'a [Elem]>,
    {
        debug_assert!(key.iter().all(|&p| p < arity) || arity == 0);
        let mut idx = TupleIndex {
            arity,
            key: key.to_vec(),
            rows: Vec::new(),
            map: HashMap::new(),
        };
        OBS_BUILDS.incr();
        for t in tuples {
            idx.insert(t);
        }
        idx
    }

    /// Adds one tuple (used to maintain IDB indexes incrementally as a
    /// fixpoint round merges its delta).
    pub fn insert(&mut self, tuple: &[Elem]) {
        debug_assert_eq!(tuple.len(), self.arity);
        let id = (self.rows.len() / self.arity.max(1)) as u32;
        self.rows.extend_from_slice(tuple);
        let key_vals: Vec<Elem> = self.key.iter().map(|&p| tuple[p]).collect();
        self.map.entry(key_vals).or_default().push(id);
        OBS_BUILD_TUPLES.incr();
    }

    /// The key positions this index is built on.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        // Nullary tuples occupy no row storage, so count their ids.
        self.rows
            .len()
            .checked_div(self.arity)
            .unwrap_or_else(|| self.map.values().map(Vec::len).sum())
    }

    /// `true` if no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All tuples whose key positions hold exactly `key_vals` (in the
    /// order of [`TupleIndex::key`]).
    pub fn probe<'a>(&'a self, key_vals: &[Elem]) -> impl Iterator<Item = &'a [Elem]> {
        debug_assert_eq!(key_vals.len(), self.key.len());
        OBS_PROBE_OPS.incr();
        let ids: &[u32] = self.map.get(key_vals).map_or(&[], Vec::as_slice);
        OBS_PROBES.add(ids.len() as u64);
        let arity = self.arity;
        ids.iter()
            .map(move |&id| &self.rows[id as usize * arity..(id as usize + 1) * arity])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, Signature};

    #[test]
    fn hash_index_probes_exact_matches() {
        let tuples: Vec<Vec<Elem>> = vec![vec![0, 1], vec![2, 1], vec![2, 3], vec![4, 1]];
        let idx = TupleIndex::build(2, &[1], tuples.iter().map(Vec::as_slice));
        assert_eq!(idx.len(), 4);
        let hits: Vec<&[Elem]> = idx.probe(&[1]).collect();
        assert_eq!(hits, vec![&[0, 1][..], &[2, 1], &[4, 1]]);
        assert_eq!(idx.probe(&[9]).count(), 0);
    }

    #[test]
    fn empty_key_yields_every_tuple() {
        let tuples: Vec<Vec<Elem>> = vec![vec![0, 1], vec![2, 3]];
        let idx = TupleIndex::build(2, &[], tuples.iter().map(Vec::as_slice));
        assert_eq!(idx.probe(&[]).count(), 2);
    }

    #[test]
    fn incremental_inserts_visible() {
        let mut idx = TupleIndex::build(2, &[0], std::iter::empty());
        assert!(idx.is_empty());
        idx.insert(&[5, 7]);
        idx.insert(&[5, 8]);
        let hits: Vec<&[Elem]> = idx.probe(&[5]).collect();
        assert_eq!(hits, vec![&[5, 7][..], &[5, 8]]);
    }

    #[test]
    fn nullary_tuples_supported() {
        let tuples: Vec<Vec<Elem>> = vec![vec![]];
        let idx = TupleIndex::build(0, &[], tuples.iter().map(Vec::as_slice));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.probe(&[]).count(), 1);
    }

    #[test]
    fn prefix_probe_matches_filter() {
        let s = builders::grid(4, 3);
        let e = Signature::graph().relation("E").unwrap();
        let rel = s.rel(e);
        for u in s.domain() {
            let probed: Vec<&[Elem]> = probe_prefix(rel, &[u]).collect();
            let scanned: Vec<&[Elem]> = rel.iter().filter(|t| t[0] == u).collect();
            assert_eq!(probed, scanned, "prefix [{u}]");
        }
        // Full-tuple prefix degenerates to membership.
        let first = rel.iter().next().unwrap().to_vec();
        assert_eq!(probe_prefix(rel, &first).count(), 1);
        // Empty prefix is the whole relation.
        assert_eq!(probe_prefix(rel, &[]).count(), rel.len());
    }
}
