//! Columnar tuple arenas with row-id deduplication — the storage layer
//! under the Datalog fixpoint engines (see `docs/storage.md`).
//!
//! A [`TupleStore`] keeps one relation as `arity` flat per-column
//! `Vec<Elem>` arenas addressed by dense `u32` row ids. Appending is
//! O(1) amortized and never moves existing rows, so a row id handed out
//! once stays valid for the lifetime of the store — the property the
//! semi-naive engine's delta ranges and incremental indexes rely on.
//!
//! Deduplication is an open-addressing hash table over row ids that
//! hashes the column values of a row in place: membership tests and
//! inserts never materialize a `Vec<Elem>` per tuple, which is what the
//! old `HashSet<Vec<Elem>>` representation paid on every derived fact.
//! The hash function is a pluggable step function (default FNV-1a) so
//! tests can force every tuple onto one hash chain and exercise the
//! collision path.
//!
//! Work done by stores is metered under `queries.store.*`:
//!
//! * `queries.store.rows` — rows appended across all stores;
//! * `queries.store.arena_bytes` — bytes those rows occupy in arenas;
//! * `queries.store.rehashes` — dedup-table growth events;
//! * `queries.store.probe_allocs` — heap allocations probe paths had to
//!   fall back to (zero in the steady-state join loop; see
//!   [`note_probe_alloc`]);
//! * `queries.store.tombstones` — rows logically deleted by
//!   [`TupleStore::remove`]/[`TupleStore::remove_row`];
//! * `queries.store.compactions` — arena rebuilds that reclaimed
//!   tombstoned rows ([`TupleStore::compact`]).

use crate::{Elem, Relation};
use std::collections::HashSet;

static OBS_ROWS: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.rows");
static OBS_ARENA_BYTES: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.arena_bytes");
static OBS_REHASHES: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.rehashes");
static OBS_PROBE_ALLOCS: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.probe_allocs");
static OBS_TOMBSTONES: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.tombstones");
static OBS_COMPACTIONS: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.compactions");

/// Records that a probe path had to heap-allocate (a key or scratch
/// buffer outgrew its stack backing). The columnar join kernel reports
/// this on `datalog.rule` spans; it stays zero for realistic arities.
#[inline]
pub fn note_probe_alloc() {
    OBS_PROBE_ALLOCS.add(1);
}

/// FNV-1a offset basis — the seed for [`fnv_step`] folds.
pub const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// One FNV-1a step over the four little-endian bytes of an element.
///
/// Deterministic (unlike the std hasher, which is seeded per process),
/// so stores, indexes, and shard assignments are reproducible run to
/// run.
#[inline]
#[must_use]
pub fn fnv_step(mut h: u64, e: Elem) -> u64 {
    for b in e.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A pluggable hash-step function: folds one column value into the
/// running hash of a tuple. The default is [`fnv_step`]; tests install
/// degenerate steps to force collisions through the verify paths.
pub type ElemHasher = fn(u64, Elem) -> u64;

/// Sentinel for an empty dedup slot.
const EMPTY: u32 = u32::MAX;

/// Columnar storage for one relation: per-column arenas addressed by
/// dense row ids, with a hash-based dedup set over those ids.
///
/// Rows are append-only; [`TupleStore::push_if_new`] either hands out
/// the next row id or reports the existing duplicate. Set semantics
/// live in [`PartialEq`]: two stores are equal when they hold the same
/// tuples, whatever the insertion order.
///
/// Deletion is *logical*: [`TupleStore::remove`] tombstones a row
/// without moving anything, so live row ids stay stable — the property
/// the incremental engine's row-id deltas rely on. A tombstoned row
/// keeps its dedup slot; re-inserting the same tuple *revives* the old
/// row id instead of appending. [`TupleStore::compact`] rebuilds the
/// arenas to reclaim tombstones (invalidating row ids, which is why it
/// is an explicit call, not a side effect).
#[derive(Debug, Clone)]
pub struct TupleStore {
    arity: usize,
    cols: Vec<Vec<Elem>>,
    len: u32,
    /// Open-addressing table of row ids ([`EMPTY`] = free), sized to a
    /// power of two and kept under ~70% load. Tombstoned rows keep
    /// their slot so re-insertion revives them.
    slots: Vec<u32>,
    /// Tombstone bitmap, indexed by `row / 64`; lazily grown, so
    /// stores that never delete pay one `dead_count == 0` check.
    dead: Vec<u64>,
    /// Number of tombstoned rows (`len` minus live rows).
    dead_count: u32,
    hasher: ElemHasher,
}

impl TupleStore {
    /// An empty store for tuples of the given arity.
    pub fn new(arity: usize) -> TupleStore {
        TupleStore::with_hasher(arity, fnv_step)
    }

    /// An empty store with a custom hash-step function (tests use a
    /// constant step to drive every tuple down one collision chain).
    pub fn with_hasher(arity: usize, hasher: ElemHasher) -> TupleStore {
        TupleStore {
            arity,
            cols: vec![Vec::new(); arity],
            len: 0,
            slots: Vec::new(),
            dead: Vec::new(),
            dead_count: 0,
            hasher,
        }
    }

    /// A store holding the rows of a sorted EDB [`Relation`] — the
    /// bridge from the immutable input structure into the columnar
    /// subsystem. Row ids follow the relation's lexicographic order.
    pub fn from_relation(rel: &Relation) -> TupleStore {
        let mut st = TupleStore::new(rel.arity());
        for t in rel.iter() {
            st.push_if_new(t);
        }
        st
    }

    /// A store holding the given rows (duplicates collapse).
    pub fn from_rows<'a, I>(arity: usize, rows: I) -> TupleStore
    where
        I: IntoIterator<Item = &'a [Elem]>,
    {
        let mut st = TupleStore::new(arity);
        for t in rows {
            st.push_if_new(t);
        }
        st
    }

    /// The arity of the stored tuples.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) *live* rows — tombstoned rows don't count.
    pub fn len(&self) -> usize {
        (self.len - self.dead_count) as usize
    }

    /// Number of arena rows — live *and* tombstoned — as the row-id
    /// type. Row ids range over `0..rows32()`; delta ranges and index
    /// maintenance work in this coordinate space.
    pub fn rows32(&self) -> u32 {
        self.len
    }

    /// Alias of [`TupleStore::rows32`], kept for the append-only
    /// callers (the batch engines never tombstone, so for them arena
    /// rows and live rows coincide).
    pub fn len32(&self) -> u32 {
        self.len
    }

    /// Number of tombstoned rows awaiting [`TupleStore::compact`].
    pub fn tombstones(&self) -> usize {
        self.dead_count as usize
    }

    /// `true` iff `row` has not been tombstoned.
    #[inline]
    pub fn is_live(&self, row: u32) -> bool {
        self.dead_count == 0
            || self
                .dead
                .get((row / 64) as usize)
                .is_none_or(|w| w & (1 << (row % 64)) == 0)
    }

    /// `true` if the store holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.len == self.dead_count
    }

    /// Bytes occupied by the column arenas.
    pub fn arena_bytes(&self) -> usize {
        self.len as usize * self.arity * std::mem::size_of::<Elem>()
    }

    /// The value at `(row, col)`.
    ///
    /// # Panics
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn value(&self, row: u32, col: usize) -> Elem {
        self.cols[col][row as usize]
    }

    /// The full arena of one column, indexed by row id.
    pub fn col(&self, col: usize) -> &[Elem] {
        &self.cols[col]
    }

    /// Hash of the tuple `t` under this store's hash-step function.
    #[inline]
    pub fn tuple_hash(&self, t: &[Elem]) -> u64 {
        t.iter().fold(FNV_SEED, |h, &e| (self.hasher)(h, e))
    }

    /// Hash of a stored row, computed column-wise (no materialization).
    #[inline]
    pub fn row_hash(&self, row: u32) -> u64 {
        self.cols
            .iter()
            .fold(FNV_SEED, |h, c| (self.hasher)(h, c[row as usize]))
    }

    /// `true` iff the stored row equals `t`, compared column-wise.
    #[inline]
    fn row_eq(&self, row: u32, t: &[Elem]) -> bool {
        self.cols
            .iter()
            .zip(t.iter())
            .all(|(c, &v)| c[row as usize] == v)
    }

    /// The arena row holding `t`, live or tombstoned. At most one
    /// arena row ever holds a given tuple (re-insertion revives rather
    /// than duplicates), so the answer is unique.
    fn slot_of(&self, t: &[Elem]) -> Option<u32> {
        debug_assert_eq!(t.len(), self.arity);
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (self.tuple_hash(t) as usize) & mask;
        loop {
            match self.slots[i] {
                EMPTY => return None,
                id if self.row_eq(id, t) => return Some(id),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Membership test over the *live* rows: hashes `t`'s values
    /// directly and verifies every hash candidate against the arenas.
    /// No per-call allocation.
    pub fn contains(&self, t: &[Elem]) -> bool {
        self.slot_of(t).is_some_and(|id| self.is_live(id))
    }

    /// The row id of the live row equal to `t`, if any.
    pub fn find(&self, t: &[Elem]) -> Option<u32> {
        self.slot_of(t).filter(|&id| self.is_live(id))
    }

    /// Appends `t` unless an equal live row exists; returns the row id
    /// now holding `t`, or `None` on a duplicate. Re-inserting a
    /// tombstoned tuple *revives* its old row id (the returned id is
    /// then smaller than [`TupleStore::rows32`]` - 1`). O(1)
    /// amortized, no per-tuple heap allocation beyond arena growth.
    pub fn push_if_new(&mut self, t: &[Elem]) -> Option<u32> {
        debug_assert_eq!(t.len(), self.arity);
        if (self.len as usize + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (self.tuple_hash(t) as usize) & mask;
        loop {
            match self.slots[i] {
                EMPTY => break,
                id if self.row_eq(id, t) => {
                    if self.is_live(id) {
                        return None;
                    }
                    self.dead[(id / 64) as usize] &= !(1 << (id % 64));
                    self.dead_count -= 1;
                    return Some(id);
                }
                _ => i = (i + 1) & mask,
            }
        }
        let id = self.len;
        self.slots[i] = id;
        for (c, &v) in self.cols.iter_mut().zip(t.iter()) {
            c.push(v);
        }
        self.len += 1;
        OBS_ROWS.incr();
        OBS_ARENA_BYTES.add((self.arity * std::mem::size_of::<Elem>()) as u64);
        Some(id)
    }

    /// Tombstones the live row equal to `t`; returns its row id, or
    /// `None` if no live row matches. The arenas don't move: other row
    /// ids stay valid, and the dedup slot is kept so a later
    /// [`TupleStore::push_if_new`] of the same tuple revives this row.
    pub fn remove(&mut self, t: &[Elem]) -> Option<u32> {
        let id = self.find(t)?;
        self.remove_row(id);
        Some(id)
    }

    /// Tombstones row `row` directly (the row-id-addressed twin of
    /// [`TupleStore::remove`]); returns `false` if it was already dead.
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn remove_row(&mut self, row: u32) -> bool {
        assert!(row < self.len, "row id out of range");
        if !self.is_live(row) {
            return false;
        }
        let word = (row / 64) as usize;
        if self.dead.len() <= word {
            self.dead.resize(word + 1, 0);
        }
        self.dead[word] |= 1 << (row % 64);
        self.dead_count += 1;
        OBS_TOMBSTONES.incr();
        true
    }

    /// Rebuilds the arenas with only the live rows (in row-id order)
    /// and rehashes the dedup table, reclaiming every tombstone.
    /// Returns the old-row → new-row mapping, with [`u32::MAX`] marking
    /// rows that were dead. **All previously handed-out row ids are
    /// invalidated**; callers owning derived row-id state (indexes,
    /// delta lists) must rebuild it.
    pub fn compact(&mut self) -> Vec<u32> {
        let mut remap = vec![u32::MAX; self.len as usize];
        if self.dead_count == 0 {
            for (old, slot) in remap.iter_mut().enumerate() {
                *slot = old as u32;
            }
            return remap;
        }
        OBS_COMPACTIONS.incr();
        let mut next: u32 = 0;
        for old in 0..self.len {
            if !self.is_live(old) {
                continue;
            }
            let new = next;
            next += 1;
            remap[old as usize] = new;
            if new != old {
                for c in &mut self.cols {
                    c[new as usize] = c[old as usize];
                }
            }
        }
        for c in &mut self.cols {
            c.truncate(next as usize);
        }
        self.len = next;
        self.dead.clear();
        self.dead_count = 0;
        let cap = (next as usize * 10 / 7 + 1).next_power_of_two().max(16);
        let mask = cap - 1;
        let mut slots = vec![EMPTY; cap];
        for id in 0..self.len {
            let mut i = (self.row_hash(id) as usize) & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = id;
        }
        self.slots = slots;
        remap
    }

    /// Grows the dedup table 4× and reinserts every row id. Quadrupling
    /// (rather than doubling) keeps the total rehash work across a
    /// fixpoint run at ~1.33n row hashes instead of ~2n, at the cost of
    /// a transiently lower load factor — 4 bytes per empty slot.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 4).max(16);
        if !self.slots.is_empty() {
            OBS_REHASHES.incr();
        }
        let mask = cap - 1;
        let mut slots = vec![EMPTY; cap];
        for id in 0..self.len {
            let mut i = (self.row_hash(id) as usize) & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = id;
        }
        self.slots = slots;
    }

    /// Copies row `row` into `buf` (cleared first). Lets callers reuse
    /// one scratch buffer instead of allocating per row.
    pub fn read_row_into(&self, row: u32, buf: &mut Vec<Elem>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c[row as usize]));
    }

    /// Iterates the *live* rows as materialized tuples, in row-id
    /// order (tombstoned rows are skipped). Meant for output
    /// consumers; the join kernel reads columns directly.
    pub fn iter(&self) -> TupleIter<'_> {
        TupleIter {
            store: self,
            next: 0,
        }
    }
}

/// Iterator over the (materialized) rows of a [`TupleStore`].
#[derive(Debug, Clone)]
pub struct TupleIter<'a> {
    store: &'a TupleStore,
    next: u32,
}

impl Iterator for TupleIter<'_> {
    type Item = Vec<Elem>;

    fn next(&mut self) -> Option<Vec<Elem>> {
        while self.next < self.store.len {
            let row = self.next;
            self.next += 1;
            if self.store.is_live(row) {
                return Some(self.store.cols.iter().map(|c| c[row as usize]).collect());
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = (self.store.len - self.next) as usize;
        let dead = self.store.dead_count as usize;
        (rest.saturating_sub(dead), Some(rest))
    }
}

impl<'a> IntoIterator for &'a TupleStore {
    type Item = Vec<Elem>;
    type IntoIter = TupleIter<'a>;

    fn into_iter(self) -> TupleIter<'a> {
        self.iter()
    }
}

/// Set equality over the live rows: same tuple sets, whatever the
/// insertion order or tombstone layout.
impl PartialEq for TupleStore {
    fn eq(&self, other: &TupleStore) -> bool {
        if self.len() != other.len() {
            return false;
        }
        if self.is_empty() {
            return true;
        }
        if self.arity != other.arity {
            return false;
        }
        let mut buf = Vec::with_capacity(self.arity);
        (0..self.len).filter(|&id| self.is_live(id)).all(|id| {
            self.read_row_into(id, &mut buf);
            other.contains(&buf)
        })
    }
}

impl Eq for TupleStore {}

/// Equality against the legacy `HashSet` representation, so the naive
/// and scan oracles (and pre-columnar tests) compare without
/// conversion.
impl PartialEq<HashSet<Vec<Elem>>> for TupleStore {
    fn eq(&self, other: &HashSet<Vec<Elem>>) -> bool {
        self.len() == other.len() && other.iter().all(|t| self.contains(t))
    }
}

impl PartialEq<TupleStore> for HashSet<Vec<Elem>> {
    fn eq(&self, other: &TupleStore) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hash step that ignores the element: every tuple collides.
    fn collide(h: u64, _e: Elem) -> u64 {
        h
    }

    #[test]
    fn push_dedups_and_hands_out_dense_ids() {
        let mut st = TupleStore::new(2);
        assert_eq!(st.push_if_new(&[1, 2]), Some(0));
        assert_eq!(st.push_if_new(&[3, 4]), Some(1));
        assert_eq!(st.push_if_new(&[1, 2]), None);
        assert_eq!(st.len(), 2);
        assert_eq!(st.value(0, 1), 2);
        assert_eq!(st.col(0), &[1, 3]);
        assert!(st.contains(&[3, 4]));
        assert!(!st.contains(&[4, 3]));
    }

    #[test]
    fn iteration_follows_row_ids() {
        let mut st = TupleStore::new(2);
        st.push_if_new(&[5, 6]);
        st.push_if_new(&[0, 1]);
        let rows: Vec<Vec<Elem>> = st.iter().collect();
        assert_eq!(rows, vec![vec![5, 6], vec![0, 1]]);
        let via_loop: Vec<Vec<Elem>> = (&st).into_iter().collect();
        assert_eq!(rows, via_loop);
    }

    #[test]
    fn nullary_store_holds_at_most_one_row() {
        let mut st = TupleStore::new(0);
        assert!(!st.contains(&[]));
        assert_eq!(st.push_if_new(&[]), Some(0));
        assert_eq!(st.push_if_new(&[]), None);
        assert!(st.contains(&[]));
        assert_eq!(st.len(), 1);
        assert_eq!(st.iter().collect::<Vec<_>>(), vec![Vec::<Elem>::new()]);
    }

    #[test]
    fn colliding_hasher_still_dedups_exactly() {
        // Every tuple hashes identically: correctness must come from
        // the verify-against-arenas path alone.
        let mut st = TupleStore::with_hasher(2, collide);
        for u in 0..40u32 {
            assert_eq!(st.push_if_new(&[u, u + 1]), Some(u));
            assert_eq!(st.push_if_new(&[u, u + 1]), None);
        }
        assert_eq!(st.len(), 40);
        for u in 0..40u32 {
            assert!(st.contains(&[u, u + 1]));
            assert!(!st.contains(&[u + 1, u]));
        }
    }

    #[test]
    fn growth_rehashes_preserve_membership() {
        let mut st = TupleStore::new(3);
        for u in 0..500u32 {
            st.push_if_new(&[u, u % 7, u % 3]);
        }
        assert_eq!(st.len(), 500);
        for u in 0..500u32 {
            assert!(st.contains(&[u, u % 7, u % 3]));
        }
        assert_eq!(st.arena_bytes(), 500 * 3 * 4);
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let mut a = TupleStore::new(2);
        let mut b = TupleStore::new(2);
        a.push_if_new(&[1, 2]);
        a.push_if_new(&[3, 4]);
        b.push_if_new(&[3, 4]);
        b.push_if_new(&[1, 2]);
        assert_eq!(a, b);
        b.push_if_new(&[5, 6]);
        assert_ne!(a, b);

        let set: HashSet<Vec<Elem>> = [vec![1, 2], vec![3, 4]].into_iter().collect();
        assert_eq!(a, set);
        assert_eq!(set, a);
    }

    #[test]
    fn remove_tombstones_and_reinsert_revives_the_row_id() {
        let mut st = TupleStore::new(2);
        assert_eq!(st.push_if_new(&[1, 2]), Some(0));
        assert_eq!(st.push_if_new(&[3, 4]), Some(1));
        assert_eq!(st.remove(&[1, 2]), Some(0));
        assert_eq!(st.remove(&[1, 2]), None, "already dead");
        assert_eq!(st.remove(&[9, 9]), None, "never present");
        assert!(!st.contains(&[1, 2]));
        assert_eq!(st.find(&[1, 2]), None);
        assert!(!st.is_live(0));
        assert!(st.is_live(1));
        assert_eq!(st.len(), 1);
        assert_eq!(st.rows32(), 2);
        assert_eq!(st.tombstones(), 1);
        assert_eq!(st.iter().collect::<Vec<_>>(), vec![vec![3, 4]]);
        // Revival hands back the original row id, not a fresh one.
        assert_eq!(st.push_if_new(&[1, 2]), Some(0));
        assert_eq!(st.push_if_new(&[1, 2]), None);
        assert!(st.is_live(0));
        assert_eq!(st.tombstones(), 0);
        assert_eq!(st.find(&[1, 2]), Some(0));
    }

    #[test]
    fn remove_row_is_the_row_addressed_twin() {
        let mut st = TupleStore::new(1);
        st.push_if_new(&[7]);
        assert!(st.remove_row(0));
        assert!(!st.remove_row(0));
        assert!(!st.contains(&[7]));
    }

    #[test]
    fn compact_reclaims_tombstones_and_remaps() {
        let mut st = TupleStore::new(2);
        for u in 0..100u32 {
            st.push_if_new(&[u, u + 1]);
        }
        for u in (0..100u32).step_by(2) {
            st.remove(&[u, u + 1]);
        }
        let before: HashSet<Vec<Elem>> = st.iter().collect();
        let remap = st.compact();
        assert_eq!(st.len(), 50);
        assert_eq!(st.rows32(), 50);
        assert_eq!(st.tombstones(), 0);
        let after: HashSet<Vec<Elem>> = st.iter().collect();
        assert_eq!(before, after);
        for (old, &new) in remap.iter().enumerate() {
            if old % 2 == 0 {
                assert_eq!(new, u32::MAX, "dead rows map nowhere");
            } else {
                assert_eq!(st.value(new, 0), old as u32, "live rows keep values");
            }
        }
        for u in (1..100u32).step_by(2) {
            assert!(st.contains(&[u, u + 1]));
        }
        // Compacting a tombstone-free store is the identity.
        let id_map = st.compact();
        assert_eq!(id_map, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn set_equality_ignores_tombstone_layout() {
        let mut a = TupleStore::new(2);
        let mut b = TupleStore::new(2);
        a.push_if_new(&[1, 2]);
        a.push_if_new(&[3, 4]);
        a.remove(&[1, 2]);
        b.push_if_new(&[3, 4]);
        assert_eq!(a, b);
        let set: HashSet<Vec<Elem>> = [vec![3, 4]].into_iter().collect();
        assert_eq!(a, set);
        assert_eq!(set, a);
        a.push_if_new(&[1, 2]);
        assert_ne!(a, b);
    }

    #[test]
    fn colliding_hasher_removal_walks_the_chain() {
        let mut st = TupleStore::with_hasher(2, collide);
        for u in 0..20u32 {
            st.push_if_new(&[u, u]);
        }
        assert_eq!(st.remove(&[7, 7]), Some(7));
        assert!(!st.contains(&[7, 7]));
        for u in 0..20u32 {
            assert_eq!(st.contains(&[u, u]), u != 7);
        }
        let remap = st.compact();
        assert_eq!(remap[7], u32::MAX);
        assert_eq!(st.len(), 19);
        for u in 0..20u32 {
            assert_eq!(st.contains(&[u, u]), u != 7);
        }
    }

    #[test]
    fn relation_bridge_preserves_rows() {
        let s = crate::builders::grid(3, 3);
        let e = s.signature().relation("E").unwrap();
        let rel = s.rel(e);
        let st = TupleStore::from_relation(rel);
        assert_eq!(st.len(), rel.len());
        for t in rel.iter() {
            assert!(st.contains(t));
        }
        // Row ids follow lexicographic order of the sorted relation.
        assert_eq!(st.iter().next().unwrap().as_slice(), rel.row(0));
    }
}
