//! Columnar tuple arenas with row-id deduplication — the storage layer
//! under the Datalog fixpoint engines (see `docs/storage.md`).
//!
//! A [`TupleStore`] keeps one relation as `arity` flat per-column
//! `Vec<Elem>` arenas addressed by dense `u32` row ids. Appending is
//! O(1) amortized and never moves existing rows, so a row id handed out
//! once stays valid for the lifetime of the store — the property the
//! semi-naive engine's delta ranges and incremental indexes rely on.
//!
//! Deduplication is an open-addressing hash table over row ids that
//! hashes the column values of a row in place: membership tests and
//! inserts never materialize a `Vec<Elem>` per tuple, which is what the
//! old `HashSet<Vec<Elem>>` representation paid on every derived fact.
//! The hash function is a pluggable step function (default FNV-1a) so
//! tests can force every tuple onto one hash chain and exercise the
//! collision path.
//!
//! Work done by stores is metered under `queries.store.*`:
//!
//! * `queries.store.rows` — rows appended across all stores;
//! * `queries.store.arena_bytes` — bytes those rows occupy in arenas;
//! * `queries.store.rehashes` — dedup-table growth events;
//! * `queries.store.probe_allocs` — heap allocations probe paths had to
//!   fall back to (zero in the steady-state join loop; see
//!   [`note_probe_alloc`]).

use crate::{Elem, Relation};
use std::collections::HashSet;

static OBS_ROWS: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.rows");
static OBS_ARENA_BYTES: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.arena_bytes");
static OBS_REHASHES: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.rehashes");
static OBS_PROBE_ALLOCS: fmt_obs::Counter = fmt_obs::Counter::new("queries.store.probe_allocs");

/// Records that a probe path had to heap-allocate (a key or scratch
/// buffer outgrew its stack backing). The columnar join kernel reports
/// this on `datalog.rule` spans; it stays zero for realistic arities.
#[inline]
pub fn note_probe_alloc() {
    OBS_PROBE_ALLOCS.add(1);
}

/// FNV-1a offset basis — the seed for [`fnv_step`] folds.
pub const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// One FNV-1a step over the four little-endian bytes of an element.
///
/// Deterministic (unlike the std hasher, which is seeded per process),
/// so stores, indexes, and shard assignments are reproducible run to
/// run.
#[inline]
#[must_use]
pub fn fnv_step(mut h: u64, e: Elem) -> u64 {
    for b in e.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A pluggable hash-step function: folds one column value into the
/// running hash of a tuple. The default is [`fnv_step`]; tests install
/// degenerate steps to force collisions through the verify paths.
pub type ElemHasher = fn(u64, Elem) -> u64;

/// Sentinel for an empty dedup slot.
const EMPTY: u32 = u32::MAX;

/// Columnar storage for one relation: per-column arenas addressed by
/// dense row ids, with a hash-based dedup set over those ids.
///
/// Rows are append-only; [`TupleStore::push_if_new`] either hands out
/// the next row id or reports the existing duplicate. Set semantics
/// live in [`PartialEq`]: two stores are equal when they hold the same
/// tuples, whatever the insertion order.
#[derive(Debug, Clone)]
pub struct TupleStore {
    arity: usize,
    cols: Vec<Vec<Elem>>,
    len: u32,
    /// Open-addressing table of row ids ([`EMPTY`] = free), sized to a
    /// power of two and kept under ~70% load.
    slots: Vec<u32>,
    hasher: ElemHasher,
}

impl TupleStore {
    /// An empty store for tuples of the given arity.
    pub fn new(arity: usize) -> TupleStore {
        TupleStore::with_hasher(arity, fnv_step)
    }

    /// An empty store with a custom hash-step function (tests use a
    /// constant step to drive every tuple down one collision chain).
    pub fn with_hasher(arity: usize, hasher: ElemHasher) -> TupleStore {
        TupleStore {
            arity,
            cols: vec![Vec::new(); arity],
            len: 0,
            slots: Vec::new(),
            hasher,
        }
    }

    /// A store holding the rows of a sorted EDB [`Relation`] — the
    /// bridge from the immutable input structure into the columnar
    /// subsystem. Row ids follow the relation's lexicographic order.
    pub fn from_relation(rel: &Relation) -> TupleStore {
        let mut st = TupleStore::new(rel.arity());
        for t in rel.iter() {
            st.push_if_new(t);
        }
        st
    }

    /// A store holding the given rows (duplicates collapse).
    pub fn from_rows<'a, I>(arity: usize, rows: I) -> TupleStore
    where
        I: IntoIterator<Item = &'a [Elem]>,
    {
        let mut st = TupleStore::new(arity);
        for t in rows {
            st.push_if_new(t);
        }
        st
    }

    /// The arity of the stored tuples.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Number of rows as the row-id type.
    pub fn len32(&self) -> u32 {
        self.len
    }

    /// `true` if the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes occupied by the column arenas.
    pub fn arena_bytes(&self) -> usize {
        self.len as usize * self.arity * std::mem::size_of::<Elem>()
    }

    /// The value at `(row, col)`.
    ///
    /// # Panics
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn value(&self, row: u32, col: usize) -> Elem {
        self.cols[col][row as usize]
    }

    /// The full arena of one column, indexed by row id.
    pub fn col(&self, col: usize) -> &[Elem] {
        &self.cols[col]
    }

    /// Hash of the tuple `t` under this store's hash-step function.
    #[inline]
    pub fn tuple_hash(&self, t: &[Elem]) -> u64 {
        t.iter().fold(FNV_SEED, |h, &e| (self.hasher)(h, e))
    }

    /// Hash of a stored row, computed column-wise (no materialization).
    #[inline]
    pub fn row_hash(&self, row: u32) -> u64 {
        self.cols
            .iter()
            .fold(FNV_SEED, |h, c| (self.hasher)(h, c[row as usize]))
    }

    /// `true` iff the stored row equals `t`, compared column-wise.
    #[inline]
    fn row_eq(&self, row: u32, t: &[Elem]) -> bool {
        self.cols
            .iter()
            .zip(t.iter())
            .all(|(c, &v)| c[row as usize] == v)
    }

    /// Membership test: hashes `t`'s values directly and verifies every
    /// hash candidate against the arenas. No per-call allocation.
    pub fn contains(&self, t: &[Elem]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = (self.tuple_hash(t) as usize) & mask;
        loop {
            match self.slots[i] {
                EMPTY => return false,
                id if self.row_eq(id, t) => return true,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Appends `t` unless an equal row exists; returns the new row id,
    /// or `None` on a duplicate. O(1) amortized, no per-tuple heap
    /// allocation beyond arena growth.
    pub fn push_if_new(&mut self, t: &[Elem]) -> Option<u32> {
        debug_assert_eq!(t.len(), self.arity);
        if (self.len as usize + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (self.tuple_hash(t) as usize) & mask;
        loop {
            match self.slots[i] {
                EMPTY => break,
                id if self.row_eq(id, t) => return None,
                _ => i = (i + 1) & mask,
            }
        }
        let id = self.len;
        self.slots[i] = id;
        for (c, &v) in self.cols.iter_mut().zip(t.iter()) {
            c.push(v);
        }
        self.len += 1;
        OBS_ROWS.incr();
        OBS_ARENA_BYTES.add((self.arity * std::mem::size_of::<Elem>()) as u64);
        Some(id)
    }

    /// Grows the dedup table 4× and reinserts every row id. Quadrupling
    /// (rather than doubling) keeps the total rehash work across a
    /// fixpoint run at ~1.33n row hashes instead of ~2n, at the cost of
    /// a transiently lower load factor — 4 bytes per empty slot.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 4).max(16);
        if !self.slots.is_empty() {
            OBS_REHASHES.incr();
        }
        let mask = cap - 1;
        let mut slots = vec![EMPTY; cap];
        for id in 0..self.len {
            let mut i = (self.row_hash(id) as usize) & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = id;
        }
        self.slots = slots;
    }

    /// Copies row `row` into `buf` (cleared first). Lets callers reuse
    /// one scratch buffer instead of allocating per row.
    pub fn read_row_into(&self, row: u32, buf: &mut Vec<Elem>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c[row as usize]));
    }

    /// Iterates the rows as materialized tuples, in row-id order. Meant
    /// for output consumers; the join kernel reads columns directly.
    pub fn iter(&self) -> TupleIter<'_> {
        TupleIter {
            store: self,
            next: 0,
        }
    }
}

/// Iterator over the (materialized) rows of a [`TupleStore`].
#[derive(Debug, Clone)]
pub struct TupleIter<'a> {
    store: &'a TupleStore,
    next: u32,
}

impl Iterator for TupleIter<'_> {
    type Item = Vec<Elem>;

    fn next(&mut self) -> Option<Vec<Elem>> {
        if self.next >= self.store.len {
            return None;
        }
        let row = self.next;
        self.next += 1;
        Some(self.store.cols.iter().map(|c| c[row as usize]).collect())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = (self.store.len - self.next) as usize;
        (rest, Some(rest))
    }
}

impl<'a> IntoIterator for &'a TupleStore {
    type Item = Vec<Elem>;
    type IntoIter = TupleIter<'a>;

    fn into_iter(self) -> TupleIter<'a> {
        self.iter()
    }
}

/// Set equality: same arity-compatible tuple sets, any insertion order.
impl PartialEq for TupleStore {
    fn eq(&self, other: &TupleStore) -> bool {
        if self.len != other.len {
            return false;
        }
        if self.len == 0 {
            return true;
        }
        if self.arity != other.arity {
            return false;
        }
        let mut buf = Vec::with_capacity(self.arity);
        (0..self.len).all(|id| {
            self.read_row_into(id, &mut buf);
            other.contains(&buf)
        })
    }
}

impl Eq for TupleStore {}

/// Equality against the legacy `HashSet` representation, so the naive
/// and scan oracles (and pre-columnar tests) compare without
/// conversion.
impl PartialEq<HashSet<Vec<Elem>>> for TupleStore {
    fn eq(&self, other: &HashSet<Vec<Elem>>) -> bool {
        self.len() == other.len() && other.iter().all(|t| self.contains(t))
    }
}

impl PartialEq<TupleStore> for HashSet<Vec<Elem>> {
    fn eq(&self, other: &TupleStore) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hash step that ignores the element: every tuple collides.
    fn collide(h: u64, _e: Elem) -> u64 {
        h
    }

    #[test]
    fn push_dedups_and_hands_out_dense_ids() {
        let mut st = TupleStore::new(2);
        assert_eq!(st.push_if_new(&[1, 2]), Some(0));
        assert_eq!(st.push_if_new(&[3, 4]), Some(1));
        assert_eq!(st.push_if_new(&[1, 2]), None);
        assert_eq!(st.len(), 2);
        assert_eq!(st.value(0, 1), 2);
        assert_eq!(st.col(0), &[1, 3]);
        assert!(st.contains(&[3, 4]));
        assert!(!st.contains(&[4, 3]));
    }

    #[test]
    fn iteration_follows_row_ids() {
        let mut st = TupleStore::new(2);
        st.push_if_new(&[5, 6]);
        st.push_if_new(&[0, 1]);
        let rows: Vec<Vec<Elem>> = st.iter().collect();
        assert_eq!(rows, vec![vec![5, 6], vec![0, 1]]);
        let via_loop: Vec<Vec<Elem>> = (&st).into_iter().collect();
        assert_eq!(rows, via_loop);
    }

    #[test]
    fn nullary_store_holds_at_most_one_row() {
        let mut st = TupleStore::new(0);
        assert!(!st.contains(&[]));
        assert_eq!(st.push_if_new(&[]), Some(0));
        assert_eq!(st.push_if_new(&[]), None);
        assert!(st.contains(&[]));
        assert_eq!(st.len(), 1);
        assert_eq!(st.iter().collect::<Vec<_>>(), vec![Vec::<Elem>::new()]);
    }

    #[test]
    fn colliding_hasher_still_dedups_exactly() {
        // Every tuple hashes identically: correctness must come from
        // the verify-against-arenas path alone.
        let mut st = TupleStore::with_hasher(2, collide);
        for u in 0..40u32 {
            assert_eq!(st.push_if_new(&[u, u + 1]), Some(u));
            assert_eq!(st.push_if_new(&[u, u + 1]), None);
        }
        assert_eq!(st.len(), 40);
        for u in 0..40u32 {
            assert!(st.contains(&[u, u + 1]));
            assert!(!st.contains(&[u + 1, u]));
        }
    }

    #[test]
    fn growth_rehashes_preserve_membership() {
        let mut st = TupleStore::new(3);
        for u in 0..500u32 {
            st.push_if_new(&[u, u % 7, u % 3]);
        }
        assert_eq!(st.len(), 500);
        for u in 0..500u32 {
            assert!(st.contains(&[u, u % 7, u % 3]));
        }
        assert_eq!(st.arena_bytes(), 500 * 3 * 4);
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let mut a = TupleStore::new(2);
        let mut b = TupleStore::new(2);
        a.push_if_new(&[1, 2]);
        a.push_if_new(&[3, 4]);
        b.push_if_new(&[3, 4]);
        b.push_if_new(&[1, 2]);
        assert_eq!(a, b);
        b.push_if_new(&[5, 6]);
        assert_ne!(a, b);

        let set: HashSet<Vec<Elem>> = [vec![1, 2], vec![3, 4]].into_iter().collect();
        assert_eq!(a, set);
        assert_eq!(set, a);
    }

    #[test]
    fn relation_bridge_preserves_rows() {
        let s = crate::builders::grid(3, 3);
        let e = s.signature().relation("E").unwrap();
        let rel = s.rel(e);
        let st = TupleStore::from_relation(rel);
        assert_eq!(st.len(), rel.len());
        for t in rel.iter() {
            assert!(st.contains(t));
        }
        // Row ids follow lexicographic order of the sorted relation.
        assert_eq!(st.iter().next().unwrap().as_slice(), rel.row(0));
    }
}
