//! Resource budgets: fuel, wall-clock deadlines, and cooperative
//! cancellation for every engine in the toolbox.
//!
//! Every tool the survey describes has worst-case exponential cost
//! (combined complexity of FO evaluation is PSPACE-complete), so a
//! long-running service must be able to stop an adversarial query
//! without wedging a worker thread. A [`Budget`] is a small shared
//! handle that hot loops consult through a cheap atomic [`Budget::tick`]
//! call; when the budget runs out the engine unwinds cleanly with a
//! structured [`Exhausted`] error — never a panic, never a partial
//! write into caller-visible state.
//!
//! Three resources are tracked:
//!
//! * **fuel** — a deterministic tick allowance. Single-threaded engines
//!   consume fuel in a reproducible order, so running twice with the
//!   same fuel exhausts at the same tick (this is asserted by property
//!   tests).
//! * **deadline** — a wall-clock cutoff, checked on the first tick and
//!   every [`DEADLINE_CHECK_PERIOD`] ticks thereafter so the common
//!   path stays branch-cheap.
//! * **cancellation** — an external flag flipped by [`Budget::cancel`]
//!   from any thread; every tick observes it, which is what makes
//!   cancellation *cooperative* across `fan_out` worker shards (all
//!   shards share one handle).
//!
//! Tick placement rules for engine authors are documented in
//! `docs/budgets.md`: tick once per unit of work that is `O(1)`-ish
//! (an AST node visit, a game position expansion, a candidate tuple),
//! never per round — the goal is that no single inter-tick gap can
//! take more than microseconds on real inputs.
//!
//! ```
//! use fmt_structures::budget::{Budget, Resource};
//!
//! let b = Budget::with_fuel(2);
//! assert!(b.tick("doc.example").is_ok());
//! assert!(b.tick("doc.example").is_ok());
//! let err = b.tick("doc.example").unwrap_err();
//! assert_eq!(err.resource, Resource::Fuel);
//! assert_eq!(err.spent, 3);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deadline checks happen on the first metered tick and then every this
/// many ticks: `Instant::now()` is much more expensive than the relaxed
/// atomics on the common path.
pub const DEADLINE_CHECK_PERIOD: u64 = 64;

/// Exhausted-fuel errors observed process-wide.
static OBS_EXHAUSTED_FUEL: fmt_obs::Counter = fmt_obs::Counter::new("budget.exhausted.fuel");
/// Exceeded-deadline errors observed process-wide.
static OBS_EXHAUSTED_DEADLINE: fmt_obs::Counter =
    fmt_obs::Counter::new("budget.exhausted.deadline");
/// Cancellation errors observed process-wide.
static OBS_CANCELLED: fmt_obs::Counter = fmt_obs::Counter::new("budget.exhausted.cancelled");
/// Metered ticks consumed process-wide (unlimited budgets do not meter,
/// so this equals the sum of [`Budget::spent`] over all metered
/// budgets — the "no lost ticks" invariant of the cancellation tests).
static OBS_TICKS: fmt_obs::Counter = fmt_obs::Counter::new("budget.ticks");

/// Which resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The fuel allowance was consumed.
    Fuel,
    /// The wall-clock deadline passed.
    Deadline,
    /// [`Budget::cancel`] was called from another thread.
    Cancelled,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Resource::Fuel => "fuel",
            Resource::Deadline => "deadline",
            Resource::Cancelled => "cancelled",
        })
    }
}

/// The structured error returned when a budget runs out.
///
/// Carries enough to diagnose *where* the engine stopped: the resource
/// that ran out, the number of metered ticks spent when it was
/// detected, and the static label of the tick site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exhausted {
    /// Which resource ran out.
    pub resource: Resource,
    /// Metered ticks consumed when exhaustion was detected (0 when an
    /// unmetered budget was cancelled before any metered tick).
    pub spent: u64,
    /// Static label of the tick site, e.g. `"queries.datalog.indexed"`.
    pub at: &'static str,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.resource {
            Resource::Fuel => write!(
                f,
                "fuel exhausted after {} ticks at {}",
                self.spent, self.at
            ),
            Resource::Deadline => write!(
                f,
                "deadline exceeded after {} ticks at {}",
                self.spent, self.at
            ),
            Resource::Cancelled => {
                write!(f, "cancelled at {} ({} ticks spent)", self.at, self.spent)
            }
        }
    }
}

impl std::error::Error for Exhausted {}

/// Result alias used by every budget-aware engine entry point.
pub type BudgetResult<T> = Result<T, Exhausted>;

#[derive(Debug)]
struct Inner {
    /// Fuel allowance; `u64::MAX` means unlimited.
    fuel: u64,
    /// Wall-clock cutoff, if any.
    deadline: Option<Instant>,
    /// True iff fuel or deadline is set: the metered path counts ticks,
    /// the unmetered path is a single relaxed load.
    metered: bool,
    /// Metered ticks consumed so far.
    spent: AtomicU64,
    /// External cancellation flag.
    cancelled: AtomicBool,
}

/// A shared resource budget. Cloning is cheap (an [`Arc`] bump) and all
/// clones observe the same fuel pool, deadline, and cancellation flag —
/// hand clones to worker threads to get cooperative cancellation.
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    fn build(fuel: u64, deadline: Option<Instant>) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                fuel,
                deadline,
                metered: fuel != u64::MAX || deadline.is_some(),
                spent: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// A budget that never exhausts on its own (it can still be
    /// [cancelled](Budget::cancel)). Ticks on an unlimited budget are a
    /// single relaxed atomic load, so engines pay essentially nothing
    /// when no limit is requested.
    pub fn unlimited() -> Budget {
        Budget::build(u64::MAX, None)
    }

    /// A budget allowing exactly `fuel` metered ticks; tick `fuel + 1`
    /// fails. Fuel accounting is deterministic for single-threaded
    /// engines.
    pub fn with_fuel(fuel: u64) -> Budget {
        Budget::build(fuel, None)
    }

    /// A budget that exhausts once `timeout` has elapsed (measured from
    /// this call).
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget::build(u64::MAX, Some(Instant::now() + timeout))
    }

    /// A budget combining an optional fuel allowance and an optional
    /// timeout; `Budget::new(None, None)` is [`Budget::unlimited`].
    pub fn new(fuel: Option<u64>, timeout: Option<Duration>) -> Budget {
        Budget::build(
            fuel.unwrap_or(u64::MAX),
            timeout.map(|t| Instant::now() + t),
        )
    }

    /// Flips the cancellation flag: every subsequent tick on any clone
    /// of this handle fails with [`Resource::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
        fmt_obs::trace_instant!("budget.cancelled", spent = self.spent());
    }

    /// Whether [`Budget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Metered ticks consumed so far (always 0 for unlimited budgets,
    /// which skip metering).
    pub fn spent(&self) -> u64 {
        self.inner.spent.load(Ordering::Relaxed)
    }

    /// Whether this budget meters ticks (a fuel or deadline limit is
    /// set). Unmetered budgets only ever fail through cancellation.
    pub fn is_metered(&self) -> bool {
        self.inner.metered
    }

    /// Consumes one tick. The hot-path cost is one relaxed load
    /// (cancellation) for unlimited budgets, plus one relaxed
    /// `fetch_add` when metered; the wall clock is consulted only every
    /// [`DEADLINE_CHECK_PERIOD`] metered ticks.
    ///
    /// `at` is a static label for the call site (dot-separated, e.g.
    /// `"games.solver"`) carried verbatim into [`Exhausted::at`].
    #[inline]
    pub fn tick(&self, at: &'static str) -> BudgetResult<()> {
        let inner = &*self.inner;
        if inner.cancelled.load(Ordering::Relaxed) {
            OBS_CANCELLED.incr();
            let spent = inner.spent.load(Ordering::Relaxed);
            fmt_obs::trace_instant!(
                "budget.exhausted",
                resource = "cancelled",
                at = at,
                spent = spent
            );
            return Err(Exhausted {
                resource: Resource::Cancelled,
                spent,
                at,
            });
        }
        if !inner.metered {
            return Ok(());
        }
        self.tick_metered(at)
    }

    fn tick_metered(&self, at: &'static str) -> BudgetResult<()> {
        let inner = &*self.inner;
        let spent = inner.spent.fetch_add(1, Ordering::Relaxed) + 1;
        OBS_TICKS.incr();
        if spent > inner.fuel {
            OBS_EXHAUSTED_FUEL.incr();
            fmt_obs::trace_instant!(
                "budget.exhausted",
                resource = "fuel",
                at = at,
                spent = spent
            );
            return Err(Exhausted {
                resource: Resource::Fuel,
                spent,
                at,
            });
        }
        if let Some(deadline) = inner.deadline {
            if (spent == 1 || spent.is_multiple_of(DEADLINE_CHECK_PERIOD))
                && Instant::now() >= deadline
            {
                OBS_EXHAUSTED_DEADLINE.incr();
                fmt_obs::trace_instant!(
                    "budget.exhausted",
                    resource = "deadline",
                    at = at,
                    spent = spent
                );
                return Err(Exhausted {
                    resource: Resource::Deadline,
                    spent,
                    at,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.tick("test").unwrap();
        }
        assert_eq!(b.spent(), 0, "unlimited budgets do not meter");
        assert!(!b.is_metered());
    }

    #[test]
    fn fuel_exhausts_exactly_after_allowance() {
        let b = Budget::with_fuel(3);
        assert!(b.is_metered());
        for i in 1..=3u64 {
            b.tick("test").unwrap();
            assert_eq!(b.spent(), i);
        }
        let err = b.tick("test").unwrap_err();
        assert_eq!(err.resource, Resource::Fuel);
        assert_eq!(err.spent, 4);
        assert_eq!(err.at, "test");
    }

    #[test]
    fn fuel_accounting_is_deterministic() {
        let spend = |fuel: u64| -> u64 {
            let b = Budget::with_fuel(fuel);
            loop {
                if let Err(e) = b.tick("det") {
                    return e.spent;
                }
            }
        };
        assert_eq!(spend(17), spend(17));
        assert_eq!(spend(17), 18);
    }

    #[test]
    fn zero_timeout_trips_on_first_tick() {
        let b = Budget::with_timeout(Duration::from_millis(0));
        let err = b.tick("test").unwrap_err();
        assert_eq!(err.resource, Resource::Deadline);
        assert_eq!(err.spent, 1);
    }

    #[test]
    fn generous_timeout_does_not_trip() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        for _ in 0..1000 {
            b.tick("test").unwrap();
        }
        assert_eq!(b.spent(), 1000);
    }

    #[test]
    fn cancellation_is_observed_by_clones() {
        let b = Budget::unlimited();
        let c = b.clone();
        b.tick("test").unwrap();
        c.cancel();
        assert!(b.is_cancelled());
        let err = b.tick("test").unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
    }

    #[test]
    fn clones_share_one_fuel_pool() {
        let b = Budget::with_fuel(4);
        let c = b.clone();
        b.tick("a").unwrap();
        c.tick("b").unwrap();
        b.tick("a").unwrap();
        c.tick("b").unwrap();
        assert!(b.tick("a").is_err());
        assert!(c.tick("b").is_err());
        assert_eq!(b.spent(), c.spent());
    }

    #[test]
    fn combined_limits_report_first_to_trip() {
        // Tiny fuel, huge timeout: fuel trips.
        let b = Budget::new(Some(1), Some(Duration::from_secs(3600)));
        b.tick("test").unwrap();
        assert_eq!(b.tick("test").unwrap_err().resource, Resource::Fuel);
        // Huge fuel, zero timeout: deadline trips.
        let b = Budget::new(Some(1_000_000), Some(Duration::from_millis(0)));
        assert_eq!(b.tick("test").unwrap_err().resource, Resource::Deadline);
    }

    #[test]
    fn display_formats_are_stable() {
        let e = Exhausted {
            resource: Resource::Fuel,
            spent: 7,
            at: "x.y",
        };
        assert_eq!(e.to_string(), "fuel exhausted after 7 ticks at x.y");
        let e = Exhausted {
            resource: Resource::Cancelled,
            spent: 0,
            at: "x.y",
        };
        assert_eq!(e.to_string(), "cancelled at x.y (0 ticks spent)");
    }
}
