//! E13/E14 — the 0-1 law machinery: structure sampling, μₙ estimation
//! (serial work per sample), extension-axiom certification, and the
//! symbolic limit decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmt_bench::BENCH_SEED;
use fmt_logic::library;
use fmt_structures::Signature;
use fmt_zeroone::{extension, mu, sample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampling(c: &mut Criterion) {
    let sig = Signature::graph();
    let mut g = c.benchmark_group("sampling_uniform_structure");
    g.sample_size(20);
    for n in [16u32, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(BENCH_SEED);
            b.iter(|| black_box(sample::uniform_structure(&sig, n, &mut rng).num_tuples()));
        });
    }
    g.finish();
}

fn mu_estimation(c: &mut Criterion) {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let q2 = library::q2_distinguishing_neighbor(e);
    let mut g = c.benchmark_group("e13_mu_estimate_q2_100samples");
    g.sample_size(10);
    for n in [8u32, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(mu::mu_estimate(&sig, n, &q2, 100, BENCH_SEED)));
        });
    }
    g.finish();
}

fn mu_exact_tiny(c: &mut Criterion) {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let q1 = library::q1_all_pairs_adjacent(e);
    let mut g = c.benchmark_group("e13_mu_exact_q1");
    g.sample_size(10);
    for n in [2u32, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(mu::mu_exact(&sig, n, &q1)));
        });
    }
    g.finish();
}

fn axiom_certification(c: &mut Criterion) {
    let sig = Signature::graph();
    let mut g = c.benchmark_group("e14_certify_extension_axioms_level1");
    g.sample_size(10);
    for n in [32u32, 64, 128] {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        let s = sample::uniform_structure(&sig, n, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(extension::satisfies_extension_axioms(&s, 1)));
        });
    }
    g.finish();
}

fn symbolic_decision(c: &mut Criterion) {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut g = c.benchmark_group("e13_decide_mu_symbolic");
    g.sample_size(10);
    let cases = [
        ("q1_rank2", library::q1_all_pairs_adjacent(e)),
        ("q2_rank3", library::q2_distinguishing_neighbor(e)),
        ("dominating_rank2", library::dominating_vertex(e)),
    ];
    for (name, f) in &cases {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(fmt_zeroone::decide_mu(&sig, f)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    sampling,
    mu_estimation,
    mu_exact_tiny,
    axiom_certification,
    symbolic_decision
);
criterion_main!(benches);
