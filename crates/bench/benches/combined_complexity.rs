//! E1 — combined complexity of FO model checking (Stockmeyer/Vardi).
//!
//! Regenerates the paper's `O(nᵏ)` estimate as two sweeps: fixed query
//! over growing data (polynomial), and growing quantifier rank over
//! fixed data (exponential). The "table" is the criterion group output:
//! `data_sweep/{n}` and `rank_sweep/{k}`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmt_eval::naive::{Env, NaiveEvaluator};
use fmt_logic::{library, Formula, Var};
use fmt_structures::{builders, Signature};
use std::hint::black_box;

/// ∀x₁…∀xₖ ¬E(x₁,x₁): forces the evaluator through all nᵏ bindings.
fn deep_forall(k: u32) -> Formula {
    let e = Signature::graph().relation("E").unwrap();
    let body = Formula::atom(e, &[Var(0), Var(0)]).not();
    (0..k)
        .rev()
        .fold(body, |acc, i| Formula::forall(Var(i), acc))
}

fn data_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_data_sweep_k3");
    g.sample_size(10);
    let f = deep_forall(3);
    for n in [8u32, 16, 32, 64] {
        let s = builders::empty_graph(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ev = NaiveEvaluator::new(&s);
                let mut env = Env::for_formula(&f);
                black_box(ev.eval(&f, &mut env))
            });
        });
    }
    g.finish();
}

fn rank_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_rank_sweep_n16");
    g.sample_size(10);
    let s = builders::empty_graph(16);
    for k in [2u32, 3, 4, 5] {
        let f = deep_forall(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut ev = NaiveEvaluator::new(&s);
                let mut env = Env::for_formula(&f);
                black_box(ev.eval(&f, &mut env))
            });
        });
    }
    g.finish();
}

fn clique_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_clique_query");
    g.sample_size(10);
    let e = Signature::graph().relation("E").unwrap();
    // Near-complete graphs make the clique search do real work.
    for (k, n) in [(3u32, 32u32), (4, 24), (5, 16)] {
        let f = library::k_clique(e, k);
        let s = builders::complete_graph(n);
        g.bench_function(format!("k{k}_n{n}"), |b| {
            b.iter(|| {
                let mut ev = NaiveEvaluator::new(&s);
                let mut env = Env::for_formula(&f);
                black_box(ev.eval(&f, &mut env))
            });
        });
    }
    g.finish();
}

fn relalg_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_relalg_vs_naive");
    g.sample_size(10);
    let sig = Signature::graph();
    let f =
        fmt_logic::parser::parse_formula(&sig, "forall x. exists y. E(x, y) & (exists z. E(y, z))")
            .unwrap();
    let s = builders::undirected_cycle(256);
    g.bench_function("naive", |b| {
        b.iter(|| black_box(fmt_eval::naive::check_sentence(&s, &f)));
    });
    g.bench_function("relalg", |b| {
        b.iter(|| black_box(fmt_eval::relalg::check_sentence(&s, &f)));
    });
    g.finish();
}

criterion_group!(
    benches,
    data_sweep,
    rank_sweep,
    clique_workload,
    relalg_vs_naive
);
criterion_main!(benches);
