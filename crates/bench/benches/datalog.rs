//! E7 — Datalog evaluation: naive vs semi-naive on transitive closure
//! (chains, cycles) and same-generation (full binary trees), plus the
//! direct-BFS reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmt_queries::datalog::Program;
use fmt_queries::graph;
use fmt_structures::builders;
use std::hint::black_box;

fn tc_chain(c: &mut Criterion) {
    let prog = Program::transitive_closure();
    let mut g = c.benchmark_group("e7_tc_on_chain");
    g.sample_size(10);
    for n in [16u32, 32, 64] {
        let s = builders::directed_path(n);
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_naive(&s).derivations));
        });
        g.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_seminaive(&s).derivations));
        });
        g.bench_with_input(BenchmarkId::new("seminaive_scan", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_seminaive_scan(&s).derivations));
        });
        g.bench_with_input(BenchmarkId::new("bfs_reference", n), &n, |b, _| {
            b.iter(|| black_box(graph::transitive_closure(&s).num_tuples()));
        });
    }
    g.finish();
}

fn same_generation_trees(c: &mut Criterion) {
    let prog = Program::same_generation();
    let mut g = c.benchmark_group("e7_same_generation");
    g.sample_size(10);
    for d in [3u32, 4, 5] {
        let s = builders::full_binary_tree(d);
        g.bench_with_input(BenchmarkId::new("naive", d), &d, |b, _| {
            b.iter(|| black_box(prog.eval_naive(&s).derivations));
        });
        g.bench_with_input(BenchmarkId::new("seminaive", d), &d, |b, _| {
            b.iter(|| black_box(prog.eval_seminaive(&s).derivations));
        });
        g.bench_with_input(BenchmarkId::new("seminaive_scan", d), &d, |b, _| {
            b.iter(|| black_box(prog.eval_seminaive_scan(&s).derivations));
        });
        g.bench_with_input(BenchmarkId::new("seminaive_1_thread", d), &d, |b, _| {
            b.iter(|| black_box(prog.eval_seminaive_with(&s, 1).derivations));
        });
    }
    g.finish();
}

fn tc_cycle(c: &mut Criterion) {
    let prog = Program::transitive_closure();
    let mut g = c.benchmark_group("e7_tc_on_cycle");
    g.sample_size(10);
    for n in [16u32, 32] {
        let s = builders::directed_cycle(n);
        g.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_seminaive(&s).derivations));
        });
    }
    g.finish();
}

criterion_group!(benches, tc_chain, same_generation_trees, tc_cycle);
criterion_main!(benches);
