//! E10 — Theorem 3.11: the census pass is linear on bounded-degree
//! inputs while the textbook evaluator is superlinear; the crossover is
//! the figure this bench regenerates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmt_eval::bounded_degree::{BoundedDegreeEvaluator, HanfParameters};
use fmt_logic::parser::parse_formula;
use fmt_structures::{builders, Signature};
use std::hint::black_box;

fn census_vs_textbook(c: &mut Criterion) {
    let sig = Signature::graph();
    let f = parse_formula(
        &sig,
        "forall x. exists y. E(x, y) & (exists z. E(y, z) & !(z = x))",
    )
    .unwrap();
    let params = HanfParameters {
        radius: 2,
        threshold: 6,
    };
    let mut g = c.benchmark_group("e10_census_vs_textbook");
    g.sample_size(10);
    for exp in [9u32, 10, 11, 12] {
        let n = 1u32 << exp;
        let s = builders::undirected_cycle(n);
        g.bench_with_input(BenchmarkId::new("census", n), &n, |b, _| {
            // Fresh evaluator per measurement, primed on a small cycle
            // so the big input takes the table-hit (linear) path.
            b.iter(|| {
                let mut ev =
                    BoundedDegreeEvaluator::with_parameters(sig.clone(), f.clone(), 2, params);
                ev.evaluate(&builders::undirected_cycle(8));
                black_box(ev.evaluate(&s))
            });
        });
        g.bench_with_input(BenchmarkId::new("textbook", n), &n, |b, _| {
            b.iter(|| black_box(fmt_eval::naive::check_sentence(&s, &f)));
        });
    }
    g.finish();
}

fn census_pass_only(c: &mut Criterion) {
    // The pure linear pass (table already warm) on three input shapes.
    let sig = Signature::graph();
    let f = parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap();
    let params = HanfParameters {
        radius: 1,
        threshold: 4,
    };
    let mut g = c.benchmark_group("e10_census_pass_warm");
    g.sample_size(10);
    type Maker = fn(u32) -> fmt_structures::Structure;
    let shapes: Vec<(&str, Maker)> = vec![
        ("cycle", builders::undirected_cycle as Maker),
        ("path", builders::undirected_path as Maker),
    ];
    for (name, make) in shapes {
        for n in [4096u32, 16384] {
            let s = make(n);
            g.bench_function(format!("{name}_{n}"), |b| {
                let mut ev =
                    BoundedDegreeEvaluator::with_parameters(sig.clone(), f.clone(), 2, params);
                ev.evaluate(&make(16)); // warm the table
                ev.evaluate(&s); // first pass interns the types
                b.iter(|| black_box(ev.evaluate(&s)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, census_vs_textbook, census_pass_only);
criterion_main!(benches);
