//! E3/E16 — Ehrenfeucht–Fraïssé game solving, with the ablation groups
//! for the solver's optimizations (memoization, fresh-move pruning,
//! profile-guided reply ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmt_games::solver::{EfSolver, SolverConfig};
use fmt_structures::builders;
use std::hint::black_box;

fn orders_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_orders_game_n3");
    g.sample_size(10);
    for m in [8u32, 12, 16, 20] {
        let a = builders::linear_order(m);
        let b = builders::linear_order(m + 1);
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter(|| {
                let mut s = EfSolver::new(&a, &b);
                black_box(s.duplicator_wins(3))
            });
        });
    }
    g.finish();
}

fn rounds_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_rounds_on_L15_L16");
    g.sample_size(10);
    let a = builders::linear_order(15);
    let b = builders::linear_order(16);
    for n in [2u32, 3, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut s = EfSolver::new(&a, &b);
                black_box(s.duplicator_wins(n))
            });
        });
    }
    g.finish();
}

fn ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_ablation_L10_L11_n3");
    g.sample_size(10);
    let a = builders::linear_order(10);
    let b = builders::linear_order(11);
    let configs: [(&str, SolverConfig); 4] = [
        ("full", SolverConfig::default()),
        (
            "no_memo",
            SolverConfig {
                memoization: false,
                ..SolverConfig::default()
            },
        ),
        (
            "no_pruning",
            SolverConfig {
                fresh_move_pruning: false,
                ..SolverConfig::default()
            },
        ),
        (
            "no_profile_ordering",
            SolverConfig {
                profile_ordering: false,
                ..SolverConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let mut s = EfSolver::with_config(&a, &b, cfg);
                black_box(s.duplicator_wins(3))
            });
        });
    }
    g.finish();
}

fn graph_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_graph_pairs_n3");
    g.sample_size(10);
    let cases = [
        (
            "cycles_6_vs_3x2",
            builders::undirected_cycle(6),
            builders::copies(&builders::undirected_cycle(3), 2),
        ),
        (
            "path_vs_cycle_8",
            builders::directed_path(8),
            builders::directed_cycle(8),
        ),
    ];
    for (name, a, b) in &cases {
        g.bench_function(*name, |bench| {
            bench.iter(|| {
                let mut s = EfSolver::new(a, b);
                black_box(s.duplicator_wins(3))
            });
        });
    }
    g.finish();
}

fn pebble_and_bijection(c: &mut Criterion) {
    let mut g = c.benchmark_group("game_variants_L6_L7");
    g.sample_size(10);
    let a = builders::linear_order(6);
    let b = builders::linear_order(7);
    g.bench_function("ef_n3", |bench| {
        bench.iter(|| black_box(EfSolver::new(&a, &b).duplicator_wins(3)));
    });
    g.bench_function("pebble_k2_n3", |bench| {
        bench.iter(|| black_box(fmt_games::pebble::pebble_duplicator_wins(&a, &b, 2, 3)));
    });
    let c6 = builders::undirected_cycle(6);
    let c3x2 = builders::copies(&builders::undirected_cycle(3), 2);
    g.bench_function("bijective_n2_cycles6", |bench| {
        bench.iter(|| {
            black_box(fmt_games::bijection::bijection_duplicator_wins(
                &c6, &c3x2, 2,
            ))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    orders_sweep,
    rounds_sweep,
    ablation,
    graph_pairs,
    pebble_and_bijection
);
criterion_main!(benches);
