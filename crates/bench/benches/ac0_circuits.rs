//! E2 — the AC⁰ circuit family: compilation cost, evaluation cost, and
//! the depth/size table (printed once at start; depth must be constant
//! in n, size polynomial).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmt_eval::circuit;
use fmt_logic::parser::parse_formula;
use fmt_structures::{builders, Signature};
use std::hint::black_box;

fn depth_size_table() {
    let sig = Signature::graph();
    let f = parse_formula(&sig, "forall x. exists y. E(x, y) & !E(y, x)").unwrap();
    println!("\nE2 · circuit family of ∀x∃y (E(x,y) ∧ ¬E(y,x)):");
    println!("{:>6} {:>10} {:>10} {:>6}", "n", "inputs", "gates", "depth");
    for n in [2u32, 4, 8, 16, 32, 64] {
        let (c, _) = circuit::compile(&sig, &f, n);
        println!(
            "{:>6} {:>10} {:>10} {:>6}",
            n,
            c.num_inputs(),
            c.size(),
            c.depth()
        );
    }
    println!();
}

fn compile_sweep(c: &mut Criterion) {
    depth_size_table();
    let sig = Signature::graph();
    let f = parse_formula(&sig, "forall x. exists y. E(x, y) & !E(y, x)").unwrap();
    let mut g = c.benchmark_group("e2_compile");
    g.sample_size(10);
    for n in [8u32, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(circuit::compile(&sig, &f, n)));
        });
    }
    g.finish();
}

fn eval_sweep(c: &mut Criterion) {
    let sig = Signature::graph();
    let f = parse_formula(&sig, "forall x. exists y. E(x, y) & !E(y, x)").unwrap();
    let mut g = c.benchmark_group("e2_eval");
    g.sample_size(20);
    for n in [8u32, 16, 32, 64] {
        let (circuit, layout) = circuit::compile(&sig, &f, n);
        let s = builders::directed_cycle(n);
        let bits = layout.encode(&s);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(circuit.eval(&bits)));
        });
    }
    g.finish();
}

fn encode_sweep(c: &mut Criterion) {
    let sig = Signature::graph();
    let mut g = c.benchmark_group("e2_encode");
    g.sample_size(20);
    for n in [16u32, 64, 128] {
        let layout = circuit::InputLayout::new(&sig, n);
        let s = builders::complete_graph(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(layout.encode(&s)));
        });
    }
    g.finish();
}

criterion_group!(benches, compile_sweep, eval_sweep, encode_sweep);
criterion_main!(benches);
