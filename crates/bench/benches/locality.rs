//! E6/E8/E9 — the locality toolbox: neighborhood census cost (linear in
//! n for bounded degree), Hanf equivalence checks, Gaifman violation
//! search, and degree-spectrum computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmt_locality::{bndp, gaifman_local, hanf, GaifmanGraph, TypeCensus, TypeRegistry};
use fmt_queries::graph;
use fmt_structures::{builders, Elem, Structure};
use std::collections::HashSet;
use std::hint::black_box;

fn census_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("census_r2_on_cycles");
    g.sample_size(10);
    for n in [256u32, 1024, 4096, 16384] {
        let s = builders::undirected_cycle(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut reg = TypeRegistry::new();
                black_box(TypeCensus::compute(&s, 2, &mut reg).num_types())
            });
        });
    }
    g.finish();
}

fn gaifman_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("gaifman_graph_build");
    g.sample_size(10);
    for n in [1024u32, 8192, 65536] {
        let s = builders::grid(n / 32, 32);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(GaifmanGraph::new(&s).max_degree()));
        });
    }
    g.finish();
}

fn hanf_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_hanf_equivalence_r3");
    g.sample_size(10);
    for m in [32u32, 128, 512] {
        let a = builders::copies(&builders::undirected_cycle(m), 2);
        let b = builders::undirected_cycle(2 * m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter(|| black_box(hanf::hanf_equivalent(&a, &b, 3)));
        });
    }
    g.finish();
}

fn gaifman_violation_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_gaifman_violation_tc");
    g.sample_size(10);
    let tc_pairs = |s: &Structure| -> HashSet<Vec<Elem>> {
        let t = graph::transitive_closure(s);
        let e = t.signature().relation("E").unwrap();
        t.rel(e).iter().map(<[u32]>::to_vec).collect()
    };
    for r in [1u32, 2] {
        let s = builders::directed_path(6 * r + 8);
        let out = tc_pairs(&s);
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(gaifman_local::find_violation(&s, &out, 2, r).is_some()));
        });
    }
    g.finish();
}

fn degree_spectra(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_degree_spectrum_tc");
    g.sample_size(10);
    for n in [64u32, 256, 1024] {
        let s = builders::successor_chain(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let tc = graph::transitive_closure(&s);
                let e = tc.signature().relation("E").unwrap();
                black_box(bndp::degree_spectrum(&tc, e).len())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    census_sweep,
    gaifman_graph_build,
    hanf_check,
    gaifman_violation_search,
    degree_spectra
);
criterion_main!(benches);
