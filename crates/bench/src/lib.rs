//! # fmt-bench
//!
//! Criterion benchmark harness for the toolbox, one bench target per
//! performance-shaped experiment of DESIGN.md §5:
//!
//! | bench | experiment | claim measured |
//! |---|---|---|
//! | `combined_complexity` | E1 | naive evaluation exponential in rank, polynomial in data |
//! | `ac0_circuits` | E2 | circuit compile/eval cost polynomial; depth constant |
//! | `ef_games` | E3/E16 | game solving cost; ablation of memoization/pruning |
//! | `locality` | E6/E8/E9 | neighborhood census, Hanf checks, violation search |
//! | `datalog` | E7 | naive vs semi-naive fixpoint evaluation |
//! | `bounded_degree` | E10 | census pass linear vs textbook superlinear |
//! | `zero_one` | E13/E14 | sampling, μ estimation, symbolic 0-1 decision |
//!
//! Run all with `cargo bench`, or one with e.g.
//! `cargo bench --bench ef_games`.

/// Shared helper: a small deterministic RNG seed used across benches so
/// runs are comparable.
pub const BENCH_SEED: u64 = 0x2009_0629;
