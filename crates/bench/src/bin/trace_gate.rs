//! Trace gate: tracing must be honest when on and free when off.
//!
//! Two checks on the canonical `tc_path_512` workload:
//!
//! 1. **Attribution** — given a Chrome trace file recorded by
//!    `fmtk --trace` (path as argv[1], or recorded in-process when
//!    omitted), the file must parse as strict JSON and the engine's
//!    phase spans (`datalog.init` + every `datalog.round`) must cover
//!    at least 90% of the enclosing `datalog.eval` span: a trace that
//!    loses wall time to unattributed gaps is not worth reading.
//! 2. **Overhead** — with tracing off (the default), the instrumented
//!    engine must stay within 5% of the `indexed.secs` baseline
//!    recorded in `BENCH_datalog.json`, same protocol as the
//!    `budget_overhead` gate (min-of-N batches, early exit, respawned
//!    by `scripts/check.sh` on unlucky layouts).

use fmt_obs::json::{self, Json};
use fmt_queries::datalog::Program;
use fmt_structures::builders;
use std::time::Instant;

/// Measurement batch size; the minimum filters out scheduler noise.
const BATCH: usize = 5;

/// Maximum batches before this process gives up (see `budget_overhead`).
const MAX_BATCHES: usize = 8;

/// Allowed tracing-off slowdown over the recorded baseline.
const MAX_OVERHEAD: f64 = 0.05;

/// Required fraction of `datalog.eval` covered by its phase spans.
const MIN_ATTRIBUTION: f64 = 0.9;

/// Extracts `indexed.secs` for the `tc_path` / `param:512` row (same
/// hand-rolled scan as `budget_overhead`, kept in sync).
fn baseline_secs(json: &str) -> f64 {
    let row_start = json
        .find("\"name\":\"tc_path\",\"param\":512")
        .expect("BENCH_datalog.json has no tc_path_512 row");
    let row = &json[row_start..];
    let key = "\"indexed\":{\"secs\":";
    let at = row.find(key).expect("tc_path_512 row has no indexed.secs");
    let rest = &row[at + key.len()..];
    let end = rest
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("indexed.secs parses as f64")
}

/// Sums the `dur` of all complete events named `name`.
fn total_dur(events: &[Json], name: &str) -> f64 {
    events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
        .filter_map(|e| e.get("dur").and_then(Json::as_f64))
        .sum()
}

/// Checks attribution on a Chrome trace: parses strictly, then requires
/// init + rounds to cover ≥ 90% of the eval span.
fn check_attribution(text: &str, origin: &str) {
    let parsed = json::parse(text)
        .unwrap_or_else(|e| panic!("{origin}: chrome trace is not valid JSON: {e}"));
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{origin}: no traceEvents array"));
    assert!(!events.is_empty(), "{origin}: empty trace");
    let eval = total_dur(events, "datalog.eval");
    assert!(eval > 0.0, "{origin}: no datalog.eval span");
    let phases = total_dur(events, "datalog.init") + total_dur(events, "datalog.round");
    let coverage = phases / eval;
    println!(
        "{origin}: {} events, eval {eval:.0}us, phases {phases:.0}us, attribution {:.1}%",
        events.len(),
        coverage * 100.0
    );
    assert!(
        coverage >= MIN_ATTRIBUTION,
        "{origin}: phase spans cover only {:.1}% of datalog.eval (need ≥ {:.0}%)",
        coverage * 100.0,
        MIN_ATTRIBUTION * 100.0
    );
}

fn min_secs(runs: usize, mut run: impl FnMut()) -> f64 {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let s = builders::directed_path(512);
    let prog = Program::transitive_closure();

    // Attribution: an externally recorded trace (the CLI run from
    // scripts/check.sh) when given, else one recorded right here.
    match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
            check_attribution(&text, &path);
        }
        None => {
            fmt_obs::trace::start();
            let _ = prog.eval_seminaive(&s);
            let trace = fmt_obs::trace::stop();
            check_attribution(&trace.to_chrome_json(), "<in-process>");
        }
    }
    assert!(
        !fmt_obs::trace::enabled(),
        "tracing must be off for the overhead measurement"
    );

    // Overhead: tracing-off instrumented engine vs the recorded
    // baseline, batched min-of-N with early exit.
    let json = std::fs::read_to_string("BENCH_datalog.json")
        .expect("run from the repo root, where BENCH_datalog.json lives");
    let baseline = baseline_secs(&json);
    let threshold = baseline * (1.0 + MAX_OVERHEAD);
    let mut off = f64::INFINITY;
    let mut batches = 0;
    while batches < MAX_BATCHES {
        batches += 1;
        let m = min_secs(BATCH, || {
            let _ = prog.eval_seminaive(&s);
        });
        off = off.min(m);
        if off <= threshold {
            break;
        }
    }
    let overhead = off / baseline - 1.0;
    println!(
        "tc_path_512 indexed: baseline {baseline:.6}s, tracing-off {off:.6}s \
         (min of {}), overhead {:+.1}%",
        batches * BATCH,
        overhead * 100.0
    );
    assert!(
        off <= threshold,
        "trace overhead gate failed: tracing-off run {off:.6}s exceeds \
         baseline {baseline:.6}s by more than {:.0}%",
        MAX_OVERHEAD * 100.0
    );
    println!("trace gate passed (attribution ≥ 90%, tracing-off ≤ 5%)");
}
