//! Goal-directed pruning gate: a magic-sets point query on
//! `tc_path_512` must derive ≥5× fewer tuples than full
//! materialization.
//!
//! This is the `scripts/check.sh` twin of `magic_bench`: it enforces
//! the same bar without touching `BENCH_datalog.json`. Unlike the
//! timing gates it needs no respawn discipline — the engines count
//! every derived tuple, so the derivation ratio is a deterministic
//! property of the rewrite and one run is authoritative. Three point
//! goals cover the demand-cone sizes that should prune: a 192-node
//! cone, the benched 64-node cone, and the 2-node near-sink cone.
//! (Near-*source* goals legitimately prune little — the cone is almost
//! the whole path — so they are benchmarked but not gated.)

use fmt_queries::datalog::Program;
use fmt_queries::magic;
use fmt_structures::builders;

/// Required derivation ratio of full materialization over the rewrite.
const MIN_PRUNING: f64 = 5.0;

/// Path length: `tc_path_512`, matching the other datalog gates.
const NODES: u32 = 512;

/// Bound source vertices of the gated point goals.
const SOURCES: [u32; 3] = [320, 448, 510];

fn main() {
    let s = builders::directed_path(NODES);
    let prog = Program::transitive_closure();
    let full = prog.eval_seminaive(&s);
    let full_derivations = full.derivations;

    let mut all_ok = true;
    for source in SOURCES {
        let goal_src = format!("tc({source}, gy)?");
        let goal = magic::parse_goal(&goal_src).expect("goal parses");
        let mq = magic::rewrite(&prog, &goal).expect("goal rewrites");
        let es = mq.prepare(&s);
        let out = mq.program.eval_seminaive(&es);
        assert_eq!(
            mq.answers(&s, &out),
            mq.filter(&s, full.relation(mq.orig_idb)),
            "tc({source}, gy)?: rewrite must stay sound and complete while being gated"
        );
        let pruning = full_derivations as f64 / (out.derivations.max(1)) as f64;
        let ok = pruning >= MIN_PRUNING;
        all_ok &= ok;
        println!(
            "tc_path_{NODES} ⊢ tc({source}, gy)?: derivations {full_derivations} → {} \
             ({pruning:.1}x pruning) [{}]",
            out.derivations,
            if ok { "ok" } else { "FAIL" }
        );
    }
    assert!(
        all_ok,
        "magic gate failed: a point query must derive ≥ {MIN_PRUNING:.0}× fewer tuples \
         than full materialization on tc_path_{NODES}"
    );
    println!("magic gate passed (≥ {MIN_PRUNING:.0}x derivation pruning per point query)");
}
