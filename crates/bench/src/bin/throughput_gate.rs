//! Columnar-engine throughput gate: ≥5× tuples/sec over the pre-arena
//! baseline.
//!
//! The flat `TupleStore` rewrite of the indexed semi-naive engine was
//! accepted against a hard bar: on `tc_path_512` and `sg_tree_9` the
//! engine must emit output tuples at least 5× faster than the last
//! row-oriented engine did. The baseline figures are embedded below —
//! they are the `indexed.tuples_per_sec` values recorded in
//! `BENCH_datalog.json` immediately before the columnar storage landed,
//! i.e. a historical fact rather than a moving target (re-running
//! `datalog_bench` rewrites the JSON with post-columnar numbers, so the
//! file cannot serve as the pre-columnar reference).
//!
//! Measurement discipline matches the budget-overhead gate: batched
//! min-of-N wall times with early exit once the bar is met, and
//! `scripts/check.sh` respawns the whole binary a few times because
//! per-process layout (ASLR, heap placement) moves hot-loop timings by
//! several percent. A real regression fails every spawn.

use fmt_queries::datalog::Program;
use fmt_structures::{builders, Structure};
use std::time::Instant;

/// Measurement batch size; the minimum filters out scheduler noise.
const BATCH: usize = 5;

/// Maximum batches before this process gives up and check.sh respawns.
const MAX_BATCHES: usize = 8;

/// Required throughput multiple over the pre-columnar baseline.
const MIN_SPEEDUP: f64 = 5.0;

/// One gated workload: name, parameter, baseline tuples/sec, builder,
/// and program constructor.
type Baseline = (
    &'static str,
    u32,
    f64,
    fn(u32) -> Structure,
    fn() -> Program,
);

/// `indexed.tuples_per_sec` recorded in `BENCH_datalog.json` by the
/// last pre-columnar engine (commit that introduced the budget gates).
const BASELINES: &[Baseline] = &[
    (
        "tc_path",
        512,
        1_010_563.5,
        builders::directed_path,
        Program::transitive_closure,
    ),
    (
        "sg_tree",
        9,
        534_211.2,
        builders::full_binary_tree,
        Program::same_generation,
    ),
];

fn min_secs(runs: usize, mut run: impl FnMut()) -> f64 {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let mut failed = false;
    for &(name, param, baseline_tps, build, program) in BASELINES {
        let s = build(param);
        let prog = program();

        // Warm-up run doubles as a correctness check and pins the
        // output size the throughput figure is computed over.
        let out = prog.eval_seminaive(&s);
        let output_tuples: u64 = (0..prog.num_idbs())
            .map(|i| out.relation(i).len() as u64)
            .sum();

        // tuples/sec ≥ 5× baseline  ⟺  secs ≤ output / (5 × baseline).
        let threshold = output_tuples as f64 / (MIN_SPEEDUP * baseline_tps);
        let mut best = f64::INFINITY;
        let mut batches = 0;
        while batches < MAX_BATCHES {
            batches += 1;
            let m = min_secs(BATCH, || {
                let _ = prog.eval_seminaive(&s);
            });
            best = best.min(m);
            if best <= threshold {
                break;
            }
        }
        let tps = output_tuples as f64 / best.max(1e-9);
        let speedup = tps / baseline_tps;
        let verdict = if speedup >= MIN_SPEEDUP { "ok" } else { "FAIL" };
        println!(
            "{name}_{param}: {output_tuples} tuples in {best:.6}s (min of {}) = {tps:.0} t/s, \
             {speedup:.2}x over pre-columnar {baseline_tps:.0} t/s [{verdict}]",
            batches * BATCH
        );
        failed |= speedup < MIN_SPEEDUP;
    }
    assert!(
        !failed,
        "throughput gate failed: columnar engine must emit tuples ≥ {MIN_SPEEDUP:.0}× faster \
         than the pre-columnar baseline on every gated workload"
    );
    println!("throughput gate passed (≥ {MIN_SPEEDUP:.0}x on all gated workloads)");
}
