//! Datalog join-engine perf harness: indexed/parallel semi-naive vs the
//! written-order scan engine, on the canonical workloads (transitive
//! closure over paths and grids, same-generation over full binary
//! trees).
//!
//! Writes `BENCH_datalog.json` into the current directory and enforces
//! the engine's acceptance bar: on TC over the 512-node path and SG
//! over the depth-9 binary tree, the indexed engine must compare at
//! least 5× fewer tuples than the scan engine — with identical output
//! relations, iterations, and per-round deltas.
//!
//! The scan engine's tuple-visit count is measured directly where
//! feasible. SG at depth 9 would scan ≈ |e|²·Σ|Δ| ≈ 3.6 × 10¹¹ tuples,
//! so there the count comes from an exact closed-form cost model that
//! this harness first validates (to the tuple) against measured counts
//! at every feasible size.

use fmt_queries::datalog::{Output, Program};
use fmt_structures::{builders, Structure};
use std::fmt::Write as _;
use std::time::Instant;

/// Total tuples the scan engine visits on `tc(x,y) :- e(x,y);
/// tc(x,z) :- e(x,y), tc(y,z)`: initialization scans `e` once per rule,
/// then every delta round scans `e` once and the delta once per edge.
fn tc_scan_model(edges: u64, history: &[u64]) -> u64 {
    let rounds = &history[..history.len() - 1];
    2 * edges + rounds.iter().map(|&d| edges + edges * d).sum::<u64>()
}

/// Same for `sg(x,x); sg(x,y) :- e(xp,x), e(yp,y), sg(xp,yp)`: each
/// round scans `e`, then `e` again per edge, then the delta per edge
/// pair (the fact rule has no body and scans nothing).
fn sg_scan_model(edges: u64, history: &[u64]) -> u64 {
    let rounds = &history[..history.len() - 1];
    let e2 = edges * edges;
    edges + e2 + rounds.iter().map(|&d| edges + e2 + e2 * d).sum::<u64>()
}

/// Tuple-comparison counters of one evaluation, via the obs registry.
fn count_work(run: impl Fn() -> Output, keys: &[&str]) -> u64 {
    fmt_obs::enable();
    fmt_obs::reset();
    let _ = run();
    let snap = fmt_obs::snapshot();
    fmt_obs::disable();
    keys.iter().map(|k| snap.counter(k).unwrap_or(0)).sum()
}

const INDEXED_KEYS: &[&str] = &["queries.index.probes", "queries.index.scan_tuples"];
const SCAN_KEYS: &[&str] = &["queries.datalog.scan_tuples"];

/// `indexed.tuples_per_sec` recorded by the last pre-columnar engine on
/// the gated workloads — the fixed reference the `speedup_vs_baseline`
/// field (and `throughput_gate`) measures the columnar engine against.
const BASELINE_TPS: &[(&str, u32, f64)] =
    &[("tc_path", 512, 1_010_563.5), ("sg_tree", 9, 534_211.2)];

struct Workload {
    name: &'static str,
    param: u32,
    run_scan: bool,
    model: fn(u64, &[u64]) -> u64,
    build: fn(u32) -> Structure,
    program: fn() -> Program,
}

fn main() {
    let workloads = [
        Workload {
            name: "tc_path",
            param: 128,
            run_scan: true,
            model: tc_scan_model,
            build: builders::directed_path,
            program: Program::transitive_closure,
        },
        Workload {
            name: "tc_path",
            param: 512,
            run_scan: true,
            model: tc_scan_model,
            build: builders::directed_path,
            program: Program::transitive_closure,
        },
        Workload {
            name: "tc_grid",
            param: 8,
            run_scan: true,
            model: tc_scan_model,
            build: |k| builders::grid(k, k),
            program: Program::transitive_closure,
        },
        Workload {
            name: "sg_tree",
            param: 4,
            run_scan: true,
            model: sg_scan_model,
            build: builders::full_binary_tree,
            program: Program::same_generation,
        },
        Workload {
            name: "sg_tree",
            param: 6,
            run_scan: true,
            model: sg_scan_model,
            build: builders::full_binary_tree,
            program: Program::same_generation,
        },
        Workload {
            name: "sg_tree",
            param: 9,
            run_scan: false, // ≈ 3.6e11 scanned tuples: modeled instead
            model: sg_scan_model,
            build: builders::full_binary_tree,
            program: Program::same_generation,
        },
    ];

    let mut rows = Vec::new();
    let mut gate_ratios: Vec<(String, f64)> = Vec::new();
    for w in &workloads {
        let s = (w.build)(w.param);
        let prog = (w.program)();
        let e = s.signature().relation("E").expect("graph signature");
        let edges = s.rel(e).len() as u64;

        let t0 = Instant::now();
        let indexed = prog.eval_seminaive(&s);
        let indexed_secs = t0.elapsed().as_secs_f64();
        let output_tuples: u64 = (0..prog.num_idbs())
            .map(|i| indexed.relation(i).len() as u64)
            .sum();
        let indexed_work = count_work(|| prog.eval_seminaive(&s), INDEXED_KEYS);

        let model_scan = (w.model)(edges, &indexed.delta_history);
        let (scan_secs, scan_work) = if w.run_scan {
            let t0 = Instant::now();
            let scan = prog.eval_seminaive_scan(&s);
            let secs = t0.elapsed().as_secs_f64();
            for i in 0..prog.num_idbs() {
                assert_eq!(scan.relation(i), indexed.relation(i), "{} IDB {i}", w.name);
            }
            assert_eq!(scan.iterations, indexed.iterations, "{}", w.name);
            assert_eq!(scan.delta_history, indexed.delta_history, "{}", w.name);
            let measured = count_work(|| prog.eval_seminaive_scan(&s), SCAN_KEYS);
            assert_eq!(
                measured, model_scan,
                "{}({}): scan-cost model must match measurement exactly",
                w.name, w.param
            );
            (Some(secs), measured)
        } else {
            (None, model_scan)
        };

        // Per-phase attribution from one extra traced run (the timed run
        // above stays tracing-off so `indexed_secs` is untouched).
        fmt_obs::trace::start();
        let _ = prog.eval_seminaive(&s);
        let phase_trace = fmt_obs::trace::stop();
        let phase_us = |name: &str| -> u64 {
            phase_trace
                .events
                .iter()
                .filter(|e| e.name == name)
                .filter_map(|e| e.dur_us)
                .sum()
        };

        let ratio = scan_work as f64 / indexed_work.max(1) as f64;
        println!(
            "{:8} n={:<4} edges={:<5} rounds={:<3} derivations={:<8} indexed {:.3}s ({} cmp) scan {} ({} cmp{}) ratio {:.1}x",
            w.name,
            w.param,
            edges,
            indexed.iterations,
            indexed.derivations,
            indexed_secs,
            indexed_work,
            scan_secs.map_or("modeled".into(), |s| format!("{s:.3}s")),
            scan_work,
            if w.run_scan { "" } else { ", modeled" },
            ratio
        );

        if (w.name, w.param) == ("tc_path", 512) || (w.name, w.param) == ("sg_tree", 9) {
            gate_ratios.push((format!("{}_{}", w.name, w.param), ratio));
        }

        let mut row = String::from("    {");
        let _ = write!(
            row,
            "\"name\":\"{}\",\"param\":{},\"size\":{},\"edges\":{},\"rounds\":{},\"derivations\":{},\"output_tuples\":{},",
            w.name, w.param, s.size(), edges, indexed.iterations, indexed.derivations, output_tuples
        );
        let tps = output_tuples as f64 / indexed_secs.max(1e-9);
        let _ = write!(
            row,
            "\"indexed\":{{\"secs\":{indexed_secs:.6},\"tuples_per_sec\":{tps:.1},\"compared_tuples\":{indexed_work}",
        );
        if let Some(&(_, _, baseline_tps)) = BASELINE_TPS
            .iter()
            .find(|&&(n, p, _)| (n, p) == (w.name, w.param))
        {
            let _ = write!(
                row,
                ",\"baseline_tuples_per_sec\":{:.1},\"speedup_vs_baseline\":{:.2}",
                baseline_tps,
                tps / baseline_tps
            );
        }
        row.push_str("},");
        match scan_secs {
            Some(secs) => {
                let _ = write!(
                    row,
                    "\"scan\":{{\"secs\":{:.6},\"tuples_per_sec\":{:.1},\"compared_tuples\":{},\"modeled\":false}},",
                    secs,
                    output_tuples as f64 / secs.max(1e-9),
                    scan_work
                );
            }
            None => {
                let _ = write!(
                    row,
                    "\"scan\":{{\"compared_tuples\":{scan_work},\"modeled\":true}},",
                );
            }
        }
        let _ = write!(row, "\"comparison_ratio\":{ratio:.2},");
        let _ = write!(
            row,
            "\"phases\":{{\"init_us\":{},\"plan_us\":{},\"join_us\":{},\"dedup_us\":{},\"merge_us\":{}}}}}",
            phase_us("datalog.init"),
            phase_us("datalog.plan"),
            phase_us("datalog.join"),
            phase_us("datalog.dedup"),
            phase_us("datalog.merge")
        );
        rows.push(row);
    }

    for (name, ratio) in &gate_ratios {
        assert!(
            *ratio >= 5.0,
            "{name}: indexed engine must beat the scan engine by ≥ 5× in tuple comparisons, got {ratio:.2}×"
        );
    }

    let json = format!(
        "{{\n  \"bench\":\"datalog\",\n  \"gate\":\"indexed engine compares ≥5× fewer tuples than scan on tc_path_512 and sg_tree_9\",\n  \"workloads\":[\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_datalog.json", &json).expect("write BENCH_datalog.json");
    println!(
        "wrote BENCH_datalog.json ({} workloads, gate ratios: {})",
        workloads.len(),
        gate_ratios
            .iter()
            .map(|(n, r)| format!("{n}={r:.1}x"))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
