//! Goal-directed evaluation perf harness: a magic-sets point query vs
//! full materialization.
//!
//! The workload is transitive closure over the 512-node directed path —
//! the same `tc_path_512` instance the batch and incremental layers are
//! gated on — with the point goal `tc(448, gy)?`. Full materialization
//! derives all 130816 reachability facts; the rewritten program only
//! explores the 64-node demand cone downstream of node 448. Pruning is
//! reported two ways: the **derivation ratio** (deterministic — the
//! engines count every derived tuple, so this is a property of the
//! rewrite, not of the machine) and the wall-time speedup (recorded for
//! the curious, never gated — small queries are timer-noise-bound).
//! The acceptance bar is a ≥5× derivation ratio; the measured figures
//! land in `BENCH_datalog.json` under `"magic"`.

use fmt_queries::datalog::Program;
use fmt_queries::magic;
use fmt_structures::builders;
use std::time::Instant;

/// Measurement batch size; the minimum filters out scheduler noise.
const BATCH: usize = 5;

/// Required derivation ratio of full materialization over the rewrite.
const MIN_PRUNING: f64 = 5.0;

/// Path length: `tc_path_512`, matching the other datalog gates.
const NODES: u32 = 512;

/// Bound source vertex of the point goal.
const SOURCE: u32 = 448;

fn min_secs(runs: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..runs).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let s = builders::directed_path(NODES);
    let prog = Program::transitive_closure();
    let goal_src = format!("tc({SOURCE}, gy)?");
    let goal = magic::parse_goal(&goal_src).expect("goal parses");
    let mq = magic::rewrite(&prog, &goal).expect("goal rewrites");
    assert!(!mq.transparent, "a point query must actually rewrite");

    // Full materialization: every reachability fact.
    let full = prog.eval_seminaive(&s);
    let full_tuples = full.relation(0).len();
    let full_derivations = full.derivations;
    let full_secs = min_secs(BATCH, || {
        let t0 = Instant::now();
        let _ = prog.eval_seminaive(&s);
        t0.elapsed().as_secs_f64()
    });

    // Goal-directed: the rewritten program over the seeded structure.
    let es = mq.prepare(&s);
    let out = mq.program.eval_seminaive(&es);
    let answers = mq.answers(&s, &out).len();
    let magic_derivations = out.derivations;
    let magic_secs = min_secs(BATCH, || {
        let t0 = Instant::now();
        let _ = mq.program.eval_seminaive(&es);
        t0.elapsed().as_secs_f64()
    });
    assert_eq!(
        mq.answers(&s, &out),
        mq.filter(&s, full.relation(mq.orig_idb)),
        "rewrite must stay sound and complete while being benchmarked"
    );

    let pruning = full_derivations as f64 / (magic_derivations.max(1)) as f64;
    let speedup = full_secs / magic_secs.max(1e-12);
    println!(
        "tc_path_{NODES} ⊢ tc({SOURCE}, gy)?: {answers} answers of {full_tuples} tuples; \
         derivations {full_derivations} → {magic_derivations} ({pruning:.1}x pruning), \
         wall {full_secs:.6}s → {magic_secs:.6}s ({speedup:.1}x)"
    );

    // Replace any previous magic block, then append ours before the
    // closing brace (same merge idiom as datalog_incr_bench).
    let json = std::fs::read_to_string("BENCH_datalog.json")
        .unwrap_or_else(|_| "{\n  \"bench\":\"datalog\"\n}\n".to_owned());
    let body = match json.find(",\n  \"magic\"") {
        Some(cut) => format!("{}\n}}\n", &json[..cut]),
        None => json,
    };
    let trimmed = body
        .trim_end()
        .strip_suffix('}')
        .expect("BENCH_datalog.json ends with a closing brace")
        .trim_end()
        .to_owned();
    let appended = format!(
        "{trimmed},\n  \"magic\":{{\"workload\":\"tc_path_{NODES}\",\"goal\":\"tc({SOURCE}, gy)?\",\
         \"gate\":\"point query derives ≥5× fewer tuples than full materialization\",\
         \"answers\":{answers},\"full_tuples\":{full_tuples},\
         \"full_derivations\":{full_derivations},\"magic_derivations\":{magic_derivations},\
         \"pruning\":{pruning:.2},\"full_secs\":{full_secs:.6},\"magic_secs\":{magic_secs:.6},\
         \"speedup\":{speedup:.2}}}\n}}\n"
    );
    std::fs::write("BENCH_datalog.json", appended).expect("write BENCH_datalog.json");

    assert!(
        pruning >= MIN_PRUNING,
        "magic gate failed: the rewrite derived {magic_derivations} tuples, \
         more than 1/{MIN_PRUNING:.0} of the full materialization's {full_derivations}"
    );
    println!("magic bench passed (≥ {MIN_PRUNING:.0}x derivation pruning)");
}
