//! Incremental-maintenance perf harness: single-edge churn through the
//! [`DatalogRuntime`] vs from-scratch semi-naive recomputation.
//!
//! The workload is transitive closure over the 512-node directed path —
//! the same `tc_path_512` instance the batch engine is gated on. After
//! the initial materialization, each churn cycle retracts the final
//! edge `E(510, 511)`, polls, re-inserts it, and polls again: two
//! updates whose maintenance work (511 overdeletions, then 511
//! re-derivations) is a tiny slice of the 130816-tuple fixpoint a
//! from-scratch run rebuilds. The acceptance bar is that one
//! maintained update is at least 5× faster than one recomputation;
//! the measured figures land in `BENCH_datalog.json` under
//! `"incremental"`.

use fmt_queries::datalog::Program;
use fmt_queries::incremental::DatalogRuntime;
use fmt_structures::builders;
use std::time::Instant;

/// Measurement batch size; the minimum filters out scheduler noise.
const BATCH: usize = 5;

/// Required speedup of one maintained update over one from-scratch run.
const MIN_SPEEDUP: f64 = 5.0;

/// Path length: `tc_path_512`, matching the batch-engine gate.
const NODES: u32 = 512;

fn min_secs(runs: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..runs).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let s = builders::directed_path(NODES);
    let prog = Program::transitive_closure();
    let e = prog.signature().relation("E").unwrap();

    // From-scratch reference: full semi-naive fixpoint per update.
    let out = prog.eval_seminaive(&s);
    let tuples = out.relation(0).len();
    let scratch_secs = min_secs(BATCH, || {
        let t0 = Instant::now();
        let _ = prog.eval_seminaive(&s);
        t0.elapsed().as_secs_f64()
    });

    // Initial materialization through the runtime, timed for the
    // record, then steady-state churn on the final edge.
    let mut rt = DatalogRuntime::from_structure(prog.clone(), &s)
        .expect("benchmark programs are negation-free");
    let t0 = Instant::now();
    rt.poll();
    let initial_secs = t0.elapsed().as_secs_f64();
    assert_eq!(rt.query(0).len(), tuples, "initial poll must match batch");

    let last = (NODES - 2, NODES - 1);
    let cycle = |rt: &mut DatalogRuntime| {
        let t0 = Instant::now();
        rt.retract(e, &[last.0, last.1]);
        rt.poll();
        rt.insert(e, &[last.0, last.1]);
        rt.poll();
        t0.elapsed().as_secs_f64()
    };
    cycle(&mut rt); // warm-up: builds goal plans and indexes
    assert_eq!(rt.query(0).len(), tuples, "churn must restore the extent");
    let update_secs = min_secs(BATCH, || cycle(&mut rt)) / 2.0;
    assert_eq!(rt.query(0).len(), tuples, "churn must restore the extent");

    let speedup = scratch_secs / update_secs.max(1e-12);
    println!(
        "tc_path_{NODES}: {tuples} tuples; scratch {scratch_secs:.6}s/update, \
         incremental {update_secs:.6}s/update (initial poll {initial_secs:.6}s), \
         speedup {speedup:.1}x"
    );

    // Replace any previous incremental block, then append ours before
    // the closing brace (same merge idiom as budget_overhead).
    let json = std::fs::read_to_string("BENCH_datalog.json")
        .unwrap_or_else(|_| "{\n  \"bench\":\"datalog\"\n}\n".to_owned());
    let body = match json.find(",\n  \"incremental\"") {
        Some(cut) => format!("{}\n}}\n", &json[..cut]),
        None => json,
    };
    let trimmed = body
        .trim_end()
        .strip_suffix('}')
        .expect("BENCH_datalog.json ends with a closing brace")
        .trim_end()
        .to_owned();
    let appended = format!(
        "{trimmed},\n  \"incremental\":{{\"workload\":\"tc_path_{NODES}\",\
         \"gate\":\"maintained single-edge update ≥5× faster than from-scratch recomputation\",\
         \"output_tuples\":{tuples},\"scratch_secs\":{scratch_secs:.6},\
         \"initial_poll_secs\":{initial_secs:.6},\"update_secs\":{update_secs:.6},\
         \"speedup\":{speedup:.2}}}\n}}\n"
    );
    std::fs::write("BENCH_datalog.json", appended).expect("write BENCH_datalog.json");

    assert!(
        speedup >= MIN_SPEEDUP,
        "incremental gate failed: maintained update {update_secs:.6}s must be ≥ \
         {MIN_SPEEDUP:.0}× faster than from-scratch {scratch_secs:.6}s"
    );
    println!("incremental bench passed (≥ {MIN_SPEEDUP:.0}x per maintained update)");
}
