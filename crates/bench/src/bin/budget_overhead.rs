//! Budget overhead gate: the budget layer must be free when unused.
//!
//! Runs the indexed Datalog engine on the canonical `tc_path_512`
//! workload under `Budget::unlimited()` (the path every pre-existing
//! entry point now delegates through) and compares the min-of-N wall
//! time against the recorded baseline in `BENCH_datalog.json` — the
//! `indexed.secs` figure measured when the indexed engine landed. The
//! gate fails if the budgeted run is more than 5% slower.
//!
//! The measurement is appended to `BENCH_datalog.json` under a
//! `budget_overhead` key (replaced on re-runs, so the file stays
//! idempotent across `scripts/check.sh` invocations).

use fmt_queries::datalog::Program;
use fmt_structures::budget::Budget;
use fmt_structures::builders;
use std::time::Instant;

/// Measurement batch size; the minimum filters out scheduler noise.
const BATCH: usize = 5;

/// Maximum batches before this process gives up. Per-process layout
/// (ASLR, heap placement) swings hot-loop timings by several percent,
/// so `scripts/check.sh` retries the whole binary a few times: a real
/// regression fails every spawn, an unlucky layout only one.
const MAX_BATCHES: usize = 8;

/// Allowed slowdown over the recorded baseline.
const MAX_OVERHEAD: f64 = 0.05;

/// Extracts `indexed.secs` for the `tc_path` / `param:512` row from the
/// bench JSON (hand-rolled: the workspace deliberately has no JSON
/// parser dependency).
fn baseline_secs(json: &str) -> f64 {
    let row_start = json
        .find("\"name\":\"tc_path\",\"param\":512")
        .expect("BENCH_datalog.json has no tc_path_512 row");
    let row = &json[row_start..];
    let key = "\"indexed\":{\"secs\":";
    let at = row.find(key).expect("tc_path_512 row has no indexed.secs");
    let rest = &row[at + key.len()..];
    let end = rest
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("indexed.secs parses as f64")
}

fn min_secs(runs: usize, mut run: impl FnMut()) -> f64 {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let json = std::fs::read_to_string("BENCH_datalog.json")
        .expect("run from the repo root, where BENCH_datalog.json lives");
    let baseline = baseline_secs(&json);

    let s = builders::directed_path(512);
    let prog = Program::transitive_closure();
    let unlimited = Budget::unlimited();

    // Warm-up run doubles as a correctness check.
    let out = prog
        .try_eval_seminaive_with(&s, 0, &unlimited)
        .expect("unlimited budget cannot exhaust");
    assert_eq!(out.relation(0).len(), 512 * 511 / 2, "tc_path_512 output");

    // Batched min-of-N with early exit: the gate asks whether the
    // budgeted engine can still *reach* the baseline, so once a batch
    // minimum lands inside the threshold there is nothing left to
    // learn. A genuine regression never reaches it, however many
    // batches run; transient machine contention does.
    let threshold = baseline * (1.0 + MAX_OVERHEAD);
    let mut budgeted = f64::INFINITY;
    let mut batches = 0;
    while batches < MAX_BATCHES {
        batches += 1;
        let m = min_secs(BATCH, || {
            let _ = prog.try_eval_seminaive_with(&s, 0, &unlimited);
        });
        budgeted = budgeted.min(m);
        if budgeted <= threshold {
            break;
        }
    }
    let runs = batches * BATCH;
    // The unbudgeted entry point (now a delegation) measured alongside,
    // for the record: it should be indistinguishable from `budgeted`.
    let delegated = min_secs(BATCH, || {
        let _ = prog.eval_seminaive(&s);
    });

    let overhead = budgeted / baseline - 1.0;
    println!(
        "tc_path_512 indexed: baseline {baseline:.6}s, unlimited-budget {budgeted:.6}s \
         (min of {runs}), delegated {delegated:.6}s, overhead {:+.1}%",
        overhead * 100.0
    );

    // Replace any previous budget_overhead block, then append ours
    // before the closing brace.
    let body = match json.find(",\n  \"budget_overhead\"") {
        Some(cut) => format!("{}\n}}\n", &json[..cut]),
        None => json,
    };
    let trimmed = body
        .trim_end()
        .strip_suffix('}')
        .expect("BENCH_datalog.json ends with a closing brace")
        .trim_end()
        .to_owned();
    let appended = format!(
        "{trimmed},\n  \"budget_overhead\":{{\"workload\":\"tc_path_512\",\
         \"gate\":\"unlimited-budget indexed run within 5% of recorded baseline\",\
         \"baseline_secs\":{baseline:.6},\"unlimited_budget_secs\":{budgeted:.6},\
         \"delegated_secs\":{delegated:.6},\"runs\":{runs},\"overhead\":{overhead:.4}}}\n}}\n"
    );
    std::fs::write("BENCH_datalog.json", appended).expect("write BENCH_datalog.json");

    assert!(
        budgeted <= baseline * (1.0 + MAX_OVERHEAD),
        "budget overhead gate failed: unlimited-budget run {budgeted:.6}s exceeds \
         baseline {baseline:.6}s by more than {:.0}%",
        MAX_OVERHEAD * 100.0
    );
    println!(
        "budget overhead gate passed (≤ {:.0}%)",
        MAX_OVERHEAD * 100.0
    );
}
