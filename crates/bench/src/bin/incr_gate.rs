//! Incremental-maintenance throughput gate: a maintained single-edge
//! update on `tc_path_512` must run ≥5× faster than from-scratch
//! recomputation.
//!
//! This is the `scripts/check.sh` twin of `datalog_incr_bench`: it
//! enforces the same bar without touching `BENCH_datalog.json`, using
//! the measurement discipline of the other gates — batched min-of-N
//! wall times with early exit once the bar is met, and check.sh
//! respawns the whole binary a few times because per-process layout
//! moves hot-loop timings by several percent. A real regression fails
//! every spawn.

use fmt_queries::datalog::Program;
use fmt_queries::incremental::DatalogRuntime;
use fmt_structures::builders;
use std::time::Instant;

/// Measurement batch size; the minimum filters out scheduler noise.
const BATCH: usize = 5;

/// Maximum batches before this process gives up and check.sh respawns.
const MAX_BATCHES: usize = 8;

/// Required speedup of one maintained update over one from-scratch run.
const MIN_SPEEDUP: f64 = 5.0;

/// Path length: `tc_path_512`, matching the batch-engine gates.
const NODES: u32 = 512;

fn min_secs(runs: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..runs).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let s = builders::directed_path(NODES);
    let prog = Program::transitive_closure();
    let e = prog.signature().relation("E").unwrap();

    let out = prog.eval_seminaive(&s);
    let tuples = out.relation(0).len();
    let scratch_secs = min_secs(BATCH, || {
        let t0 = Instant::now();
        let _ = prog.eval_seminaive(&s);
        t0.elapsed().as_secs_f64()
    });

    let mut rt =
        DatalogRuntime::from_structure(prog.clone(), &s).expect("gate programs are negation-free");
    rt.poll();
    let last = (NODES - 2, NODES - 1);
    let cycle = |rt: &mut DatalogRuntime| {
        let t0 = Instant::now();
        rt.retract(e, &[last.0, last.1]);
        rt.poll();
        rt.insert(e, &[last.0, last.1]);
        rt.poll();
        t0.elapsed().as_secs_f64()
    };
    cycle(&mut rt); // warm-up: builds goal plans and indexes
    assert_eq!(rt.query(0).len(), tuples, "churn must restore the extent");

    // update ≥ 5× faster  ⟺  cycle/2 ≤ scratch / 5.
    let threshold = scratch_secs / MIN_SPEEDUP;
    let mut best = f64::INFINITY;
    let mut batches = 0;
    while batches < MAX_BATCHES {
        batches += 1;
        let m = min_secs(BATCH, || cycle(&mut rt)) / 2.0;
        best = best.min(m);
        if best <= threshold {
            break;
        }
    }
    assert_eq!(rt.query(0).len(), tuples, "churn must restore the extent");
    let speedup = scratch_secs / best.max(1e-12);
    let verdict = if speedup >= MIN_SPEEDUP { "ok" } else { "FAIL" };
    println!(
        "tc_path_{NODES}: scratch {scratch_secs:.6}s, maintained update {best:.6}s \
         (min of {}), speedup {speedup:.1}x [{verdict}]",
        batches * BATCH
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "incremental gate failed: maintained update must be ≥ {MIN_SPEEDUP:.0}× faster \
         than from-scratch recomputation on tc_path_{NODES}"
    );
    println!("incremental gate passed (≥ {MIN_SPEEDUP:.0}x per maintained update)");
}
