//! MSO model checking by exhaustive set quantification.
//!
//! The survey's combined-complexity theorem covers FO *and MSO*: both
//! are PSPACE-complete with both the structure and the sentence as
//! input. The naive MSO evaluator below makes the cost structure
//! visible: each set quantifier multiplies the work by `2ⁿ`
//! (set assignments are bitmasks over the domain, so `n ≤ 64`).
//!
//! Despite the exponential cost, this is the positive half of the
//! expressivity story (experiment E17): `fmt_logic::mso` defines
//! connectivity, reachability and bipartiteness in MSO — the very
//! queries Corollary 3.2 proves FO cannot define — and this evaluator
//! verifies those definitions against the reference graph algorithms.

use fmt_logic::mso::{MsoFormula, SetVar};
use fmt_logic::{Term, Var};
use fmt_structures::{Elem, Structure};

/// Environment for MSO evaluation: first-order bindings plus one
/// bitmask per set variable.
#[derive(Debug, Clone)]
pub struct MsoEnv {
    vars: Vec<Option<Elem>>,
    sets: Vec<Option<u64>>,
}

impl MsoEnv {
    /// An environment sized for the given formula.
    pub fn for_formula(f: &MsoFormula) -> MsoEnv {
        MsoEnv {
            vars: vec![None; f.max_var().map_or(0, |m| m as usize + 1)],
            sets: vec![None; f.max_set_var().map_or(0, |m| m as usize + 1)],
        }
    }

    /// Binds a first-order variable.
    pub fn bind_var(&mut self, v: Var, e: Elem) {
        self.vars[v.0 as usize] = Some(e);
    }

    /// Binds a set variable to an explicit element set.
    pub fn bind_set(&mut self, x: SetVar, elems: &[Elem]) {
        let mut mask = 0u64;
        for &e in elems {
            mask |= 1 << e;
        }
        self.sets[x.0 as usize] = Some(mask);
    }
}

/// Statistics from an MSO evaluation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsoStats {
    /// Set assignments tried across all set quantifiers.
    pub set_assignments: u64,
}

/// Checks an MSO sentence on a structure.
///
/// # Panics
/// Panics if `f` is not a sentence or the domain exceeds 64 elements
/// (set assignments are bitmask-encoded; MSO evaluation is exponential
/// anyway, so this is not the binding constraint in practice).
pub fn check_sentence(s: &Structure, f: &MsoFormula) -> bool {
    check_sentence_with_stats(s, f).0
}

/// Like [`check_sentence`], also returning work statistics.
pub fn check_sentence_with_stats(s: &Structure, f: &MsoFormula) -> (bool, MsoStats) {
    assert!(f.is_sentence(), "check_sentence requires an MSO sentence");
    assert!(s.size() <= 64, "MSO evaluation is bitmask-bound to n ≤ 64");
    let mut env = MsoEnv::for_formula(f);
    let mut stats = MsoStats::default();
    let v = eval(s, f, &mut env, &mut stats);
    (v, stats)
}

/// Evaluates an MSO formula under an environment binding all its free
/// (first-order and set) variables.
pub fn eval(s: &Structure, f: &MsoFormula, env: &mut MsoEnv, stats: &mut MsoStats) -> bool {
    let term = |t: &Term, env: &MsoEnv| -> Elem {
        match t {
            Term::Var(v) => env.vars[v.0 as usize].expect("unbound variable"),
            Term::Const(c) => s.constant(*c),
        }
    };
    match f {
        MsoFormula::True => true,
        MsoFormula::False => false,
        MsoFormula::Atom { rel, args } => {
            let tuple: Vec<Elem> = args.iter().map(|t| term(t, env)).collect();
            s.holds(*rel, &tuple)
        }
        MsoFormula::Eq(a, b) => term(a, env) == term(b, env),
        MsoFormula::In(t, x) => {
            let e = term(t, env);
            let mask = env.sets[x.0 as usize].expect("unbound set variable");
            mask & (1 << e) != 0
        }
        MsoFormula::Not(g) => !eval(s, g, env, stats),
        MsoFormula::And(fs) => fs.iter().all(|g| {
            // Borrow checker: evaluate sequentially.
            eval(s, g, env, stats)
        }),
        MsoFormula::Or(fs) => fs.iter().any(|g| eval(s, g, env, stats)),
        MsoFormula::Implies(a, b) => !eval(s, a, env, stats) || eval(s, b, env, stats),
        MsoFormula::Exists(v, g) => {
            let old = env.vars[v.0 as usize];
            let mut found = false;
            for d in s.domain() {
                env.vars[v.0 as usize] = Some(d);
                if eval(s, g, env, stats) {
                    found = true;
                    break;
                }
            }
            env.vars[v.0 as usize] = old;
            found
        }
        MsoFormula::Forall(v, g) => {
            let old = env.vars[v.0 as usize];
            let mut all = true;
            for d in s.domain() {
                env.vars[v.0 as usize] = Some(d);
                if !eval(s, g, env, stats) {
                    all = false;
                    break;
                }
            }
            env.vars[v.0 as usize] = old;
            all
        }
        MsoFormula::ExistsSet(x, g) => {
            let old = env.sets[x.0 as usize];
            let n = s.size();
            let total: u64 = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
            let mut found = false;
            let mut mask: u64 = 0;
            loop {
                stats.set_assignments += 1;
                env.sets[x.0 as usize] = Some(mask);
                if eval(s, g, env, stats) {
                    found = true;
                    break;
                }
                if mask == total {
                    break;
                }
                mask += 1;
            }
            env.sets[x.0 as usize] = old;
            found
        }
        MsoFormula::ForallSet(x, g) => {
            let old = env.sets[x.0 as usize];
            let n = s.size();
            let total: u64 = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
            let mut all = true;
            let mut mask: u64 = 0;
            loop {
                stats.set_assignments += 1;
                env.sets[x.0 as usize] = Some(mask);
                if !eval(s, g, env, stats) {
                    all = false;
                    break;
                }
                if mask == total {
                    break;
                }
                mask += 1;
            }
            env.sets[x.0 as usize] = old;
            all
        }
    }
}

/// Evaluates an MSO formula with free FO variables `Var(0..k)` bound to
/// `binding` (no free set variables allowed).
pub fn check_with_binding(s: &Structure, f: &MsoFormula, binding: &[Elem]) -> bool {
    assert!(
        f.free_set_vars().is_empty(),
        "free set variables are not supported here"
    );
    assert!(s.size() <= 64);
    let mut env = MsoEnv::for_formula(f);
    for (i, &e) in binding.iter().enumerate() {
        env.bind_var(Var(i as u32), e);
    }
    let mut stats = MsoStats::default();
    eval(s, f, &mut env, &mut stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::mso::{mso_bipartite, mso_connectivity, mso_reachable};
    use fmt_queries::graph;
    use fmt_structures::{builders, Signature};

    fn e() -> fmt_structures::RelId {
        Signature::graph().relation("E").unwrap()
    }

    #[test]
    fn mso_connectivity_matches_reference() {
        let f = mso_connectivity(e());
        let suite = vec![
            builders::undirected_cycle(5),
            builders::copies(&builders::undirected_cycle(3), 2),
            builders::directed_path(5),
            builders::empty_graph(3),
            builders::empty_graph(1),
            builders::empty_graph(0),
            builders::full_binary_tree(2),
        ];
        for s in suite {
            assert_eq!(
                check_sentence(&s, &f),
                graph::is_connected(&s),
                "n = {}",
                s.size()
            );
        }
    }

    #[test]
    fn mso_bipartite_matches_reference() {
        let f = mso_bipartite(e());
        // Bipartite: even cycles, paths, trees. Not: odd cycles.
        assert!(check_sentence(&builders::undirected_cycle(6), &f));
        assert!(!check_sentence(&builders::undirected_cycle(5), &f));
        assert!(check_sentence(&builders::undirected_path(7), &f));
        assert!(check_sentence(&builders::full_binary_tree(2), &f));
        assert!(check_sentence(&builders::empty_graph(4), &f));
        assert!(!check_sentence(&builders::complete_graph(3), &f));
    }

    #[test]
    fn mso_reachability_matches_bfs() {
        let f = mso_reachable(e());
        let s = builders::copies(&builders::undirected_path(3), 2); // 0-1-2, 3-4-5
        for x in 0..6u32 {
            for y in 0..6u32 {
                let expected = (x < 3) == (y < 3);
                assert_eq!(
                    check_with_binding(&s, &f, &[x, y]),
                    expected,
                    "reach({x},{y})"
                );
            }
        }
    }

    #[test]
    fn fo_embedding_agrees_with_fo_evaluator() {
        let sig = Signature::graph();
        let sources = [
            "forall x. exists y. E(x, y)",
            "exists x y. E(x, y) & !(x = y)",
            "forall x y. (E(x, y) <-> E(y, x))",
        ];
        let suite = [
            builders::directed_cycle(4),
            builders::undirected_path(5),
            builders::empty_graph(3),
        ];
        for src in sources {
            let fo = fmt_logic::parser::parse_formula(&sig, src).unwrap();
            let mso = fmt_logic::mso::MsoFormula::from_fo(&fo);
            for s in &suite {
                assert_eq!(
                    check_sentence(s, &mso),
                    crate::naive::check_sentence(s, &fo),
                    "{src} on n = {}",
                    s.size()
                );
            }
        }
    }

    #[test]
    fn set_quantifier_cost_is_exponential() {
        let f = mso_connectivity(e());
        let (_, small) = check_sentence_with_stats(&builders::undirected_cycle(4), &f);
        let (_, large) = check_sentence_with_stats(&builders::undirected_cycle(8), &f);
        // ∀X over 2^4 vs 2^8 assignments (early exits aside).
        assert!(large.set_assignments > 4 * small.set_assignments);
    }

    #[test]
    fn even_is_not_expressible_but_mso_sees_structure() {
        // Sanity contrast: connectivity (not FO, per Corollary 3.2) is
        // decided correctly by its MSO sentence on the paper's Hanf
        // pair, where every FO sentence of low rank fails to separate.
        let m = 5;
        let two = builders::copies(&builders::undirected_cycle(m), 2);
        let one = builders::undirected_cycle(2 * m);
        let f = mso_connectivity(e());
        assert!(!check_sentence(&two, &f));
        assert!(check_sentence(&one, &f));
    }

    #[test]
    fn explicit_set_binding() {
        let s = builders::undirected_path(4);
        // φ(X) open: every element of X has a neighbor in X.
        use fmt_logic::mso::{MsoFormula, SetVar};
        use fmt_logic::{Term, Var};
        let x = SetVar(0);
        let [u, w] = [Var(0), Var(1)];
        let adj = MsoFormula::Atom {
            rel: e(),
            args: vec![Term::Var(u), Term::Var(w)],
        };
        let phi = MsoFormula::Forall(
            u,
            Box::new(MsoFormula::In(Term::Var(u), x).implies(MsoFormula::Exists(
                w,
                Box::new(MsoFormula::In(Term::Var(w), x).and(adj)),
            ))),
        );
        let mut env = MsoEnv::for_formula(&phi);
        let mut stats = MsoStats::default();
        env.bind_set(x, &[0, 1]);
        assert!(eval(&s, &phi, &mut env, &mut stats));
        env.bind_set(x, &[0, 2]); // 0 and 2 are not adjacent
        assert!(!eval(&s, &phi, &mut env, &mut stats));
        env.bind_set(x, &[]); // vacuously true
        assert!(eval(&s, &phi, &mut env, &mut stats));
    }
}
