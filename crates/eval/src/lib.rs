//! # fmt-eval
//!
//! Query evaluation engines for FO over finite structures — the
//! complexity-landscape half of the toolbox (Libkin, PODS'09, §2, §3.5).
//!
//! The survey's complexity story has four acts, each implemented here:
//!
//! 1. **Combined complexity is PSPACE-complete** (Stockmeyer '74, Vardi
//!    '82). [`naive`] is the textbook recursive model checker running in
//!    `O(n^k)` time and `O(k · log n)` space; [`qbf`] provides the QBF
//!    substrate and the hardness reduction QBF → FO model checking.
//! 2. **Data complexity is in AC⁰**. [`circuit`] implements Boolean
//!    circuits with unbounded fan-in and the FO → circuit-family
//!    compiler of the paper's proof sketch (∃ ↦ big OR, ∀ ↦ big AND,
//!    ground atoms ↦ inputs): for a fixed sentence, depth is constant
//!    and size polynomial in the domain size.
//! 3. **Set-at-a-time evaluation**: [`relalg`] evaluates FO bottom-up
//!    over relations of satisfying assignments (the relational-algebra
//!    view of FO as a query language), in `O(n^width)`.
//! 4. **Linear-time evaluation on bounded degree** (Seese; Thm 3.11 in
//!    the survey): [`bounded_degree`] implements the
//!    neighborhood-census algorithm built on threshold Hanf-locality
//!    (Thm 3.10), and [`local`] provides the Gaifman-normal-form
//!    machinery (r-local formulas and basic local sentences, Thm 3.12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded_degree;
pub mod circuit;
pub mod local;
pub mod mso;
pub mod naive;
pub mod qbf;
pub mod relalg;

pub use naive::{answers, check_sentence, NaiveEvaluator};
pub use relalg::Table;
