//! Gaifman's theorem machinery (Theorem 3.12): `r`-local formulas and
//! basic local sentences.
//!
//! Gaifman's theorem says every FO sentence is equivalent to a Boolean
//! combination of *basic local sentences*
//!
//! ```text
//! ∃x₁ … ∃xₙ ( ⋀ᵢ φ(xᵢ)  ∧  ⋀_{i≠j} d(xᵢ, xⱼ) > 2r )
//! ```
//!
//! where `φ(x)` is `r`-local: all its quantifiers range over the
//! radius-`r` ball around `x`. This module evaluates both building
//! blocks directly:
//!
//! * [`eval_r_local`] evaluates an `r`-local formula at a point by
//!   extracting the point's `r`-neighborhood and evaluating there
//!   (relativized quantification = evaluation in the induced
//!   substructure);
//! * [`BasicLocalSentence`] finds a *scattered* set of witnesses —
//!   `n` points, pairwise more than `2r` apart, all satisfying the
//!   local formula — by backtracking over candidates;
//! * [`LocalSentence`] closes these under Boolean combinations.

use fmt_locality::{neighborhood, GaifmanGraph};
use fmt_logic::{Formula, Var};
use fmt_structures::{Elem, Structure};

/// Evaluates an `r`-local formula `φ(x)` (free variable `Var(0)`) at
/// `center`: quantifiers are relativized to `B_r(center)` by evaluating
/// in the induced neighborhood.
///
/// # Panics
/// Panics if `f`'s free variables are not exactly `{Var(0)}`.
pub fn eval_r_local(s: &Structure, g: &GaifmanGraph, f: &Formula, center: Elem, r: u32) -> bool {
    let fv: Vec<Var> = f.free_vars().into_iter().collect();
    assert_eq!(
        fv,
        vec![Var(0)],
        "r-local formulas have one free variable Var(0)"
    );
    let nb = neighborhood(s, g, &[center], r);
    let mut env = crate::naive::Env::for_formula(f);
    env.bind(Var(0), nb.distinguished[0]);
    crate::naive::NaiveEvaluator::new(&nb.structure).eval(f, &mut env)
}

/// A basic local sentence
/// `∃x₁…xₙ (⋀ φ(xᵢ) ∧ ⋀_{i≠j} d(xᵢ,xⱼ) > 2r)`.
#[derive(Debug, Clone)]
pub struct BasicLocalSentence {
    /// Number of scattered witnesses `n` (must be ≥ 1).
    pub count: usize,
    /// Locality radius `r`.
    pub radius: u32,
    /// The `r`-local formula `φ(x)` with free variable `Var(0)`.
    pub local: Formula,
}

impl BasicLocalSentence {
    /// Builds a basic local sentence, validating the local formula's
    /// free variables.
    pub fn new(count: usize, radius: u32, local: Formula) -> Result<Self, String> {
        if count == 0 {
            return Err("witness count must be at least 1".into());
        }
        let fv: Vec<Var> = local.free_vars().into_iter().collect();
        if fv != vec![Var(0)] {
            return Err(format!(
                "local formula must have exactly the free variable x0, found {fv:?}"
            ));
        }
        Ok(BasicLocalSentence {
            count,
            radius,
            local,
        })
    }

    /// Evaluates the sentence on `s`: finds the candidate set
    /// `L = {v | N_r(v) ⊨ φ(v)}` and searches it for `count` points
    /// pairwise more than `2·radius` apart.
    pub fn evaluate(&self, s: &Structure) -> bool {
        self.witnesses(s).is_some()
    }

    /// Like [`BasicLocalSentence::evaluate`] but returns the scattered
    /// witness tuple.
    pub fn witnesses(&self, s: &Structure) -> Option<Vec<Elem>> {
        let g = GaifmanGraph::new(s);
        let candidates: Vec<Elem> = s
            .domain()
            .filter(|&v| eval_r_local(s, &g, &self.local, v, self.radius))
            .collect();
        if candidates.len() < self.count {
            return None;
        }
        // Backtracking search for a scattered subset. Distances from
        // each chosen point are computed once.
        let min_dist = 2 * self.radius;
        let mut chosen: Vec<Elem> = Vec::with_capacity(self.count);
        let mut dists: Vec<Vec<u32>> = Vec::with_capacity(self.count);
        fn search(
            g: &GaifmanGraph,
            candidates: &[Elem],
            start: usize,
            need: usize,
            min_dist: u32,
            chosen: &mut Vec<Elem>,
            dists: &mut Vec<Vec<u32>>,
        ) -> bool {
            if need == 0 {
                return true;
            }
            for (i, &c) in candidates.iter().enumerate().skip(start) {
                if dists.iter().any(|d| d[c as usize] <= min_dist) {
                    continue;
                }
                chosen.push(c);
                dists.push(g.distances_from(&[c]));
                if search(g, candidates, i + 1, need - 1, min_dist, chosen, dists) {
                    return true;
                }
                chosen.pop();
                dists.pop();
            }
            false
        }
        if search(
            &g,
            &candidates,
            0,
            self.count,
            min_dist,
            &mut chosen,
            &mut dists,
        ) {
            Some(chosen)
        } else {
            None
        }
    }
}

/// A Boolean combination of basic local sentences — the normal form of
/// Theorem 3.12.
#[derive(Debug, Clone)]
pub enum LocalSentence {
    /// A basic local sentence.
    Basic(BasicLocalSentence),
    /// Negation.
    Not(Box<LocalSentence>),
    /// Conjunction.
    And(Vec<LocalSentence>),
    /// Disjunction.
    Or(Vec<LocalSentence>),
}

impl LocalSentence {
    /// Evaluates the Boolean combination on `s`.
    pub fn evaluate(&self, s: &Structure) -> bool {
        match self {
            LocalSentence::Basic(b) => b.evaluate(s),
            LocalSentence::Not(g) => !g.evaluate(s),
            LocalSentence::And(gs) => gs.iter().all(|g| g.evaluate(s)),
            LocalSentence::Or(gs) => gs.iter().any(|g| g.evaluate(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::parser::parse_formula;
    use fmt_structures::{builders, Signature};

    #[test]
    fn r_local_evaluation_on_path() {
        let sig = Signature::graph();
        // "x has at least two distinct neighbors" is 1-local.
        // Mention x first so the free variable is Var(0).
        let f = parse_formula(
            &sig,
            "x = x & exists y z. !(y = z) & (E(x,y) | E(y,x)) & (E(x,z) | E(z,x))",
        )
        .unwrap();
        let s = builders::undirected_path(6);
        let g = GaifmanGraph::new(&s);
        assert!(!eval_r_local(&s, &g, &f, 0, 1)); // endpoint: one neighbor
        assert!(eval_r_local(&s, &g, &f, 2, 1)); // interior: two
        assert!(!eval_r_local(&s, &g, &f, 5, 1));
    }

    #[test]
    fn locality_restricts_vision() {
        let sig = Signature::graph();
        // "there are two elements related by E somewhere" — at radius 0
        // a single point sees no edges at all (its ball is just itself).
        let f = parse_formula(&sig, "x = x & exists y z. E(y, z)").unwrap();
        let s = builders::undirected_path(5);
        let g = GaifmanGraph::new(&s);
        assert!(!eval_r_local(&s, &g, &f, 2, 0));
        assert!(eval_r_local(&s, &g, &f, 2, 1));
    }

    #[test]
    fn basic_local_sentence_isolated_vertices() {
        let sig = Signature::graph();
        // φ(x) = "x is isolated" (1-local).
        // Mention x first so the free variable is Var(0).
        let iso = parse_formula(&sig, "x = x & forall y. !E(x, y) & !E(y, x)").unwrap();
        let two_isolated = BasicLocalSentence::new(2, 1, iso.clone()).unwrap();

        let s = builders::empty_graph(3);
        assert!(two_isolated.evaluate(&s));
        let t = builders::undirected_path(5); // no isolated vertices
        assert!(!two_isolated.evaluate(&t));
        // One isolated vertex is not enough.
        let one = builders::undirected_path(4)
            .disjoint_union(&builders::empty_graph(1))
            .unwrap();
        assert!(!two_isolated.evaluate(&one));
    }

    #[test]
    fn scattering_constraint_matters() {
        let sig = Signature::graph();
        // φ(x) = "x has degree exactly 1" (an endpoint), 1-local.
        let endpoint = parse_formula(
            &sig,
            "x = x & (exists y. E(x, y)) & forall y z. (E(x,y) & E(x,z)) -> y = z",
        )
        .unwrap();
        // A path of length 6 has exactly 2 endpoints, at distance 5 > 4.
        let b = BasicLocalSentence::new(2, 2, endpoint.clone()).unwrap();
        assert!(b.evaluate(&builders::undirected_path(6)));
        // A path of length 4: endpoints at distance 3 ≤ 4 — not
        // scattered enough for r = 2.
        assert!(!b.evaluate(&builders::undirected_path(4)));
        // But scattered enough for r = 1 (need distance > 2).
        let b1 = BasicLocalSentence::new(2, 1, endpoint).unwrap();
        assert!(b1.evaluate(&builders::undirected_path(4)));
    }

    #[test]
    fn witnesses_are_scattered_and_local() {
        let sig = Signature::graph();
        let deg2 = parse_formula(&sig, "x = x & exists y z. !(y = z) & E(x,y) & E(x,z)").unwrap();
        let b = BasicLocalSentence::new(3, 1, deg2).unwrap();
        let s = builders::undirected_cycle(20);
        let w = b.witnesses(&s).expect("cycle has plenty of witnesses");
        assert_eq!(w.len(), 3);
        let g = GaifmanGraph::new(&s);
        for (i, &a) in w.iter().enumerate() {
            for &c in &w[i + 1..] {
                assert!(g.distance(a, c).unwrap() > 2);
            }
        }
    }

    #[test]
    fn boolean_combinations() {
        let sig = Signature::graph();
        let has_vertex = parse_formula(&sig, "x = x").unwrap();
        let some_vertex = BasicLocalSentence::new(1, 0, has_vertex.clone()).unwrap();
        let two_vertices_far = BasicLocalSentence::new(2, 1, has_vertex).unwrap();
        // "nonempty and NOT two far-apart vertices" — true on a small
        // clique, false on a long path and on the empty graph.
        let combo = LocalSentence::And(vec![
            LocalSentence::Basic(some_vertex),
            LocalSentence::Not(Box::new(LocalSentence::Basic(two_vertices_far))),
        ]);
        assert!(combo.evaluate(&builders::complete_graph(3)));
        assert!(!combo.evaluate(&builders::undirected_path(10)));
        assert!(!combo.evaluate(&builders::empty_graph(0)));
    }

    #[test]
    fn validation() {
        let sig = Signature::graph();
        let two_free = parse_formula(&sig, "E(x, y)").unwrap();
        assert!(BasicLocalSentence::new(1, 1, two_free).is_err());
        let closed = parse_formula(&sig, "exists x. E(x, x)").unwrap();
        assert!(BasicLocalSentence::new(1, 1, closed).is_err());
        let ok = parse_formula(&sig, "E(x, x)").unwrap();
        assert!(BasicLocalSentence::new(0, 1, ok.clone()).is_err());
        assert!(BasicLocalSentence::new(1, 1, ok).is_ok());
    }
}
