//! The textbook recursive model checker.
//!
//! This is the algorithm behind the survey's combined-complexity
//! estimate: checking `A ⊨ φ` takes `O(n^k)` time (`n` = structure
//! size, `k` = query size) and `O(k · log n)` space — each quantifier
//! loops over the domain and recursion depth is bounded by the formula.
//! The exponential dependence on `k` (and only on `k`) is measured by
//! experiment E1.

use fmt_logic::{Formula, Query, Term, Var};
use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::index;
use fmt_structures::{Elem, RelId, Structure};

/// Budget tick site label for this engine.
const AT: &str = "eval.naive";

/// Quantifier nodes entered (each loops over the whole domain).
static OBS_QUANTIFIERS: fmt_obs::Counter = fmt_obs::Counter::new("eval.naive.quantifier_nodes");
/// Candidate bindings that failed to decide their quantifier (the
/// evaluator backed out and tried the next domain element).
static OBS_BACKTRACKS: fmt_obs::Counter = fmt_obs::Counter::new("eval.naive.backtracks");

/// A variable assignment (environment) for evaluation. Slots are
/// indexed by variable index; quantifiers save and restore shadowed
/// values.
#[derive(Debug, Clone)]
pub struct Env {
    slots: Vec<Option<Elem>>,
}

impl Env {
    /// An environment with room for variables `0..capacity`.
    pub fn new(capacity: usize) -> Env {
        Env {
            slots: vec![None; capacity],
        }
    }

    /// An environment sized for the given formula.
    pub fn for_formula(f: &Formula) -> Env {
        Env::new(f.max_var().map_or(0, |m| m as usize + 1))
    }

    /// Binds a variable (returns the previous value for restoration).
    pub fn bind(&mut self, v: Var, e: Elem) -> Option<Elem> {
        self.slots[v.0 as usize].replace(e)
    }

    /// Restores a previous binding.
    pub fn restore(&mut self, v: Var, old: Option<Elem>) {
        self.slots[v.0 as usize] = old;
    }

    /// Current value of a variable.
    ///
    /// # Panics
    /// Panics if the variable is unbound — evaluation only ever reads
    /// variables in scope.
    pub fn get(&self, v: Var) -> Elem {
        self.slots[v.0 as usize].expect("unbound variable during evaluation")
    }
}

/// A model checker with an operation counter (used by the complexity
/// experiments to measure work independently of wall-clock noise).
#[derive(Debug)]
pub struct NaiveEvaluator<'a> {
    structure: &'a Structure,
    budget: Budget,
    /// Number of evaluation steps performed so far (AST-node visits).
    pub ops: u64,
}

impl<'a> NaiveEvaluator<'a> {
    /// Creates an evaluator for one structure with an unlimited budget.
    pub fn new(structure: &'a Structure) -> NaiveEvaluator<'a> {
        NaiveEvaluator::with_budget(structure, Budget::unlimited())
    }

    /// Creates an evaluator that consults `budget` on every AST-node
    /// visit; use [`NaiveEvaluator::try_eval`] to observe exhaustion.
    pub fn with_budget(structure: &'a Structure, budget: Budget) -> NaiveEvaluator<'a> {
        NaiveEvaluator {
            structure,
            budget,
            ops: 0,
        }
    }

    fn term(&self, t: &Term, env: &Env) -> Elem {
        match t {
            Term::Var(v) => env.get(*v),
            Term::Const(c) => self.structure.constant(*c),
        }
    }

    /// Evaluates `φ` under `env` (all free variables must be bound).
    ///
    /// # Panics
    /// Panics if the evaluator's budget exhausts; construct with
    /// [`NaiveEvaluator::with_budget`] and call
    /// [`NaiveEvaluator::try_eval`] to handle exhaustion instead.
    pub fn eval(&mut self, f: &Formula, env: &mut Env) -> bool {
        self.try_eval(f, env)
            .expect("budget exhausted in NaiveEvaluator::eval; use try_eval")
    }

    /// Evaluates `φ` under `env`, stopping cleanly when the budget runs
    /// out. `env` is fully restored before an error propagates, so a
    /// failed call leaves no partial bindings behind.
    pub fn try_eval(&mut self, f: &Formula, env: &mut Env) -> BudgetResult<bool> {
        self.budget.tick(AT)?;
        self.ops += 1;
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom { rel, args } => {
                let tuple: Vec<Elem> = args.iter().map(|t| self.term(t, env)).collect();
                Ok(self.structure.holds(*rel, &tuple))
            }
            Formula::Eq(a, b) => Ok(self.term(a, env) == self.term(b, env)),
            Formula::Not(g) => Ok(!self.try_eval(g, env)?),
            Formula::And(fs) => {
                for g in fs {
                    if !self.try_eval(g, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for g in fs {
                    if self.try_eval(g, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(a, b) => Ok(!self.try_eval(a, env)? || self.try_eval(b, env)?),
            Formula::Iff(a, b) => Ok(self.try_eval(a, env)? == self.try_eval(b, env)?),
            Formula::Exists(v, g) => {
                OBS_QUANTIFIERS.incr();
                // ∃v over a bare positive atom mentioning v: the
                // witnesses are exactly the matching tuples, so scan (a
                // sorted prefix range of) the relation instead of the
                // whole domain.
                if let Formula::Atom { rel, args } = g.as_ref() {
                    if args.iter().any(|t| matches!(t, Term::Var(w) if w == v)) {
                        return self.exists_atom(*rel, args, *v, env);
                    }
                }
                self.quantifier_loop(*v, g, env, false)
            }
            Formula::Forall(v, g) => {
                OBS_QUANTIFIERS.incr();
                self.quantifier_loop(*v, g, env, true)
            }
        }
    }

    /// Shared ∃/∀ domain loop: `forall` decides on the first `false`,
    /// `exists` on the first `true`. Restores `env` on every exit path,
    /// including budget exhaustion.
    fn quantifier_loop(
        &mut self,
        v: Var,
        g: &Formula,
        env: &mut Env,
        forall: bool,
    ) -> BudgetResult<bool> {
        let mut decided = false;
        let mut outcome = Ok(forall);
        let old = env.bind(v, 0);
        for d in self.structure.domain() {
            env.slots[v.0 as usize] = Some(d);
            match self.try_eval(g, env) {
                Ok(val) if val != forall => {
                    outcome = Ok(val);
                    decided = true;
                }
                Ok(_) => OBS_BACKTRACKS.incr(),
                Err(e) => {
                    outcome = Err(e);
                    decided = true;
                }
            }
            if decided {
                break;
            }
        }
        env.restore(v, old);
        outcome
    }

    /// Decides `∃v R(t̄)` where `v` occurs in `t̄`: every argument other
    /// than `v` is already bound, so the satisfying tuples are found by
    /// scanning the relation — narrowed to a sorted prefix range when
    /// the arguments before the first occurrence of `v` are bound.
    fn exists_atom(
        &mut self,
        rel: RelId,
        args: &[Term],
        v: Var,
        env: &mut Env,
    ) -> BudgetResult<bool> {
        let r = self.structure.rel(rel);
        let mut prefix: Vec<Elem> = Vec::new();
        for t in args {
            match t {
                Term::Var(w) if *w == v => break,
                other => prefix.push(self.term(other, env)),
            }
        }
        'tuples: for row in index::probe_prefix(r, &prefix) {
            self.budget.tick(AT)?;
            self.ops += 1;
            let mut witness: Option<Elem> = None;
            for (i, t) in args.iter().enumerate() {
                match t {
                    Term::Var(w) if *w == v => match witness {
                        None => witness = Some(row[i]),
                        Some(prev) if prev != row[i] => continue 'tuples,
                        _ => {}
                    },
                    other => {
                        if self.term(other, env) != row[i] {
                            continue 'tuples;
                        }
                    }
                }
            }
            return Ok(true);
        }
        Ok(false)
    }
}

/// Checks a sentence on a structure: `A ⊨ φ`.
///
/// # Panics
/// Panics if `f` has free variables (bind them or use [`answers`]).
pub fn check_sentence(s: &Structure, f: &Formula) -> bool {
    check_sentence_budgeted(s, f, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`check_sentence`]: stops cleanly with
/// [`Exhausted`](fmt_structures::budget::Exhausted) when `budget` runs
/// out.
///
/// # Panics
/// Panics if `f` has free variables (bind them or use
/// [`answers_budgeted`]).
pub fn check_sentence_budgeted(s: &Structure, f: &Formula, budget: &Budget) -> BudgetResult<bool> {
    assert!(f.is_sentence(), "check_sentence requires a sentence");
    let mut span = fmt_obs::trace_span!("eval.naive.sentence", size = s.size());
    let mut env = Env::for_formula(f);
    let result = NaiveEvaluator::with_budget(s, budget.clone()).try_eval(f, &mut env);
    if let Ok(holds) = &result {
        span.record_field("holds", *holds);
    }
    result
}

/// Computes the full answer set `Q(A) = {d̄ | A ⊨ φ(d̄)}` of a query by
/// iterating all bindings of the answer variables, in sorted order.
///
/// For a Boolean query this is `{()}` or `∅`, matching the survey's
/// convention.
pub fn answers(s: &Structure, q: &Query) -> Vec<Vec<Elem>> {
    answers_budgeted(s, q, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`answers`]: stops cleanly when `budget` runs out, in which
/// case no partial answer set escapes.
pub fn answers_budgeted(s: &Structure, q: &Query, budget: &Budget) -> BudgetResult<Vec<Vec<Elem>>> {
    let mut span = fmt_obs::trace_span!("eval.naive.answers", size = s.size());
    let result = answers_inner(s, q, budget);
    if let Ok(rows) = &result {
        span.record_field("answers", rows.len());
    }
    result
}

fn answers_inner(s: &Structure, q: &Query, budget: &Budget) -> BudgetResult<Vec<Vec<Elem>>> {
    let f = q.formula();
    let mut env = Env::for_formula(f);
    let mut ev = NaiveEvaluator::with_budget(s, budget.clone());
    let free = q.free();
    let mut out = Vec::new();
    if free.is_empty() {
        if ev.try_eval(f, &mut env)? {
            out.push(Vec::new());
        }
        return Ok(out);
    }
    let n = s.size();
    if n == 0 {
        return Ok(out);
    }
    let m = free.len();
    let mut tuple = vec![0 as Elem; m];
    loop {
        for (i, &v) in free.iter().enumerate() {
            env.bind(v, tuple[i]);
        }
        if ev.try_eval(f, &mut env)? {
            out.push(tuple.clone());
        }
        // Odometer.
        let mut pos = m;
        loop {
            if pos == 0 {
                return Ok(out);
            }
            pos -= 1;
            tuple[pos] += 1;
            if tuple[pos] < n {
                break;
            }
            tuple[pos] = 0;
            if pos == 0 {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::{library, parser::parse_formula, Query};
    use fmt_structures::{builders, Signature};

    fn graph_sig() -> std::sync::Arc<Signature> {
        Signature::graph()
    }

    #[test]
    fn cardinality_sentences() {
        let s = builders::set(5);
        assert!(check_sentence(&s, &library::at_least(5)));
        assert!(!check_sentence(&s, &library::at_least(6)));
        assert!(check_sentence(&s, &library::at_most(5)));
        assert!(check_sentence(&s, &library::exactly(5)));
        assert!(!check_sentence(&s, &library::exactly(4)));
    }

    #[test]
    fn empty_structure_semantics() {
        let s = builders::set(0);
        // ∃x true is false on the empty structure; ∀x false is true.
        let f = Formula::exists(Var(0), Formula::True);
        assert!(!check_sentence(&s, &f));
        let g = Formula::forall(Var(0), Formula::False);
        assert!(check_sentence(&s, &g));
    }

    #[test]
    fn order_axioms_hold_on_linear_orders() {
        let sig = Signature::order();
        let lt = sig.relation("<").unwrap();
        let ax = library::strict_total_order(lt);
        for n in 0..6 {
            assert!(check_sentence(&builders::linear_order(n), &ax), "L_{n}");
        }
        // A cycle-shaped "order" violates the axioms.
        let bad = {
            use fmt_structures::StructureBuilder;
            let mut b = StructureBuilder::new(sig, 3);
            b.add(lt, &[0, 1]).unwrap();
            b.add(lt, &[1, 2]).unwrap();
            b.add(lt, &[2, 0]).unwrap();
            b.build().unwrap()
        };
        assert!(!check_sentence(&bad, &ax));
    }

    #[test]
    fn k_clique_detection() {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let k4 = builders::complete_graph(4);
        assert!(check_sentence(&k4, &library::k_clique(e, 4)));
        assert!(!check_sentence(&k4, &library::k_clique(e, 5)));
        let c5 = builders::undirected_cycle(5);
        assert!(check_sentence(&c5, &library::k_clique(e, 2)));
        assert!(!check_sentence(&c5, &library::k_clique(e, 3)));
    }

    #[test]
    fn quantifier_shadowing() {
        let sig = graph_sig();
        // exists x. (E(x,x) | exists x. E(x,x)) on a graph with one loop.
        let f = parse_formula(&sig, "exists x. (!E(x,x) & exists x. E(x,x))").unwrap();
        use fmt_structures::StructureBuilder;
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig.clone(), 2);
        b.add(e, &[1, 1]).unwrap();
        let s = b.build().unwrap();
        // x = 0 has no loop, inner x = 1 has one: satisfied.
        assert!(check_sentence(&s, &f));
    }

    #[test]
    fn answers_of_unary_query() {
        let sig = graph_sig();
        // Elements with at least one out-edge.
        let q = Query::parse(&sig, "exists y. E(x, y)").unwrap();
        let s = builders::directed_path(4); // 0->1->2->3
        let a = answers(&s, &q);
        assert_eq!(a, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn answers_of_binary_query_sorted() {
        let sig = graph_sig();
        let q = Query::parse(&sig, "E(x, y)").unwrap();
        let s = builders::directed_path(3);
        let a = answers(&s, &q);
        assert_eq!(a, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn boolean_answers_convention() {
        let sig = graph_sig();
        let q = Query::parse_sentence(&sig, "exists x y. E(x, y)").unwrap();
        assert_eq!(
            answers(&builders::directed_path(2), &q),
            vec![Vec::<u32>::new()]
        );
        assert!(answers(&builders::empty_graph(3), &q).is_empty());
    }

    #[test]
    fn dist_formula_agrees_with_bfs() {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let s = builders::undirected_path(7);
        let f = library::dist_at_most(e, 3);
        let q = Query::new(sig, f).unwrap();
        let a = answers(&s, &q);
        for x in 0..7u32 {
            for y in 0..7u32 {
                let within = (x as i32 - y as i32).abs() <= 3;
                assert_eq!(a.contains(&vec![x, y]), within, "({x},{y})");
            }
        }
    }

    #[test]
    fn ops_counter_grows_with_rank() {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let s = builders::empty_graph(10);
        let mut ev = NaiveEvaluator::new(&s);
        let mut env = Env::for_formula(&library::k_clique(e, 2));
        ev.eval(&library::k_clique(e, 2), &mut env);
        let ops2 = ev.ops;
        let f3 = library::k_clique(e, 3);
        let mut env3 = Env::for_formula(&f3);
        let mut ev3 = NaiveEvaluator::new(&s);
        ev3.eval(&f3, &mut env3);
        // On the empty graph the clique search fails fast; use forall
        // nesting instead for a guaranteed blowup.
        let deep2 = parse_formula(&sig, "forall x. forall y. !E(x,y)").unwrap();
        let deep3 = parse_formula(&sig, "forall x. forall y. forall z. !E(x,y) | !E(y,z)").unwrap();
        let mut a = NaiveEvaluator::new(&s);
        a.eval(&deep2, &mut Env::for_formula(&deep2));
        let mut b = NaiveEvaluator::new(&s);
        b.eval(&deep3, &mut Env::for_formula(&deep3));
        assert!(b.ops > a.ops * 5, "ops {} vs {}", b.ops, a.ops);
        let _ = (ops2, ev3);
    }

    #[test]
    fn exists_atom_fast_path() {
        let sig = graph_sig();
        // Both shapes route through the relation-scan fast path: a bound
        // prefix (E(x, y)) and a repeated quantified variable (E(y, y)).
        let q = Query::parse(&sig, "exists y. E(x, y)").unwrap();
        let s = builders::directed_path(5);
        assert_eq!(answers(&s, &q), vec![vec![0], vec![1], vec![2], vec![3]]);
        let loops = parse_formula(&sig, "exists y. E(y, y)").unwrap();
        assert!(!check_sentence(&s, &loops));
        assert!(check_sentence(&builders::directed_cycle(1), &loops));
    }

    #[test]
    fn constants_evaluated() {
        let sig = Signature::builder()
            .relation("E", 2)
            .constant("root")
            .finish_arc();
        let e = sig.relation("E").unwrap();
        let c = sig.constant("root").unwrap();
        use fmt_structures::StructureBuilder;
        let mut b = StructureBuilder::new(sig.clone(), 3);
        b.add(e, &[0, 1]).unwrap();
        b.set_constant(c, 0);
        let s = b.build().unwrap();
        let f = parse_formula(&sig, "exists y. E(root, y)").unwrap();
        assert!(check_sentence(&s, &f));
        let g = parse_formula(&sig, "exists y. E(y, root)").unwrap();
        assert!(!check_sentence(&s, &g));
    }

    use fmt_logic::Formula;
    use fmt_logic::Var;
}
