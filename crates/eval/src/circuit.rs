//! Boolean circuits and the FO → AC⁰ compiler.
//!
//! The survey's data-complexity upper bound: *for a fixed FO sentence,
//! query evaluation is in AC⁰* — there is a family of Boolean circuits,
//! one per domain size `n`, of **constant depth** and **polynomial
//! size**, with unbounded fan-in AND/OR gates, deciding `A ⊨ φ` from the
//! 0/1 encoding of `A`. The proof idea (Abiteboul–Hull–Vianu) is
//! implemented literally by [`compile`]:
//!
//! * every ground atom `R(d₁, …, dₖ)` becomes an input bit;
//! * Boolean connectives become the corresponding gates;
//! * `∃x φ(x)` becomes an unbounded fan-in OR over the `n`
//!   instantiations `φ(d)`, and `∀` an AND.
//!
//! Experiment E2 measures that [`Circuit::depth`] is independent of `n`
//! while [`Circuit::size`] grows polynomially, and cross-validates
//! circuit output against the direct evaluators.

use fmt_logic::{Formula, Term};
use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::{Elem, Signature, Structure};

/// Budget tick site label for this engine.
const AT: &str = "eval.circuit";

/// Reference to a gate within a [`Circuit`] (index into the gate list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateRef(pub u32);

/// A gate of an unbounded fan-in Boolean circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// An input bit.
    Input(u32),
    /// A constant.
    Const(bool),
    /// Negation.
    Not(GateRef),
    /// Unbounded fan-in AND (empty = true).
    And(Vec<GateRef>),
    /// Unbounded fan-in OR (empty = false).
    Or(Vec<GateRef>),
}

/// A Boolean circuit in topological order (gates only reference earlier
/// gates), with a single output.
#[derive(Debug, Clone)]
pub struct Circuit {
    num_inputs: u32,
    gates: Vec<Gate>,
    output: GateRef,
}

impl Circuit {
    /// Number of input bits.
    pub fn num_inputs(&self) -> u32 {
        self.num_inputs
    }

    /// Number of gates (circuit size).
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// Circuit depth: the longest path from an input/constant to the
    /// output, counting AND/OR/NOT gates. For circuits compiled from a
    /// fixed sentence this is **constant in the domain size** — the AC⁰
    /// property.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            depth[i] = match g {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Not(a) => depth[a.0 as usize] + 1,
                Gate::And(xs) | Gate::Or(xs) => {
                    xs.iter().map(|x| depth[x.0 as usize]).max().unwrap_or(0) + 1
                }
            };
        }
        depth[self.output.0 as usize]
    }

    /// Evaluates the circuit on an input bit vector.
    ///
    /// # Panics
    /// Panics if `bits.len() != self.num_inputs()`.
    pub fn eval(&self, bits: &[bool]) -> bool {
        self.try_eval(bits, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// Budgeted [`Circuit::eval`], ticking once per gate evaluated.
    ///
    /// # Panics
    /// Panics if `bits.len() != self.num_inputs()`.
    pub fn try_eval(&self, bits: &[bool], budget: &Budget) -> BudgetResult<bool> {
        assert_eq!(bits.len(), self.num_inputs as usize);
        let mut span = fmt_obs::trace_span!("eval.circuit.eval", gates = self.gates.len());
        let mut val = vec![false; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            budget.tick(AT)?;
            val[i] = match g {
                Gate::Input(j) => bits[*j as usize],
                Gate::Const(b) => *b,
                Gate::Not(a) => !val[a.0 as usize],
                Gate::And(xs) => xs.iter().all(|x| val[x.0 as usize]),
                Gate::Or(xs) => xs.iter().any(|x| val[x.0 as usize]),
            };
        }
        let out = val[self.output.0 as usize];
        span.record_field("output", out);
        Ok(out)
    }
}

/// Maps ground atoms `R(d̄)` to input-bit indices for domain size `n`:
/// relation `R` of arity `k` occupies a block of `n^k` bits in row-major
/// (odometer) order.
#[derive(Debug, Clone)]
pub struct InputLayout {
    n: u32,
    /// Starting bit of each relation's block.
    offsets: Vec<u32>,
    total: u32,
}

impl InputLayout {
    /// Builds the layout for `sig` at domain size `n`.
    ///
    /// # Panics
    /// Panics if the signature has constants (the standard encoding
    /// treats the instance as pure relations) or if the layout exceeds
    /// `u32` bits.
    pub fn new(sig: &Signature, n: u32) -> InputLayout {
        assert_eq!(
            sig.num_constants(),
            0,
            "circuit encoding requires a constant-free signature"
        );
        let mut offsets = Vec::with_capacity(sig.num_relations());
        let mut total: u64 = 0;
        for (_, _, arity) in sig.relations() {
            offsets.push(total as u32);
            total += (n as u64).pow(arity as u32);
            assert!(total <= u32::MAX as u64, "input layout too large");
        }
        InputLayout {
            n,
            offsets,
            total: total as u32,
        }
    }

    /// Total number of input bits.
    pub fn total_bits(&self) -> u32 {
        self.total
    }

    /// The bit index of the ground atom `rel(tuple)`.
    pub fn bit(&self, rel: fmt_structures::RelId, tuple: &[Elem]) -> u32 {
        let mut idx: u64 = 0;
        for &e in tuple {
            debug_assert!(e < self.n);
            idx = idx * self.n as u64 + e as u64;
        }
        self.offsets[rel.0] + idx as u32
    }

    /// Encodes a structure of matching size as an input bit vector.
    ///
    /// # Panics
    /// Panics if the structure's size differs from the layout's.
    pub fn encode(&self, s: &Structure) -> Vec<bool> {
        assert_eq!(s.size(), self.n, "structure size does not match layout");
        let mut bits = vec![false; self.total as usize];
        for (r, _, _) in s.signature().relations() {
            for t in s.rel(r).iter() {
                bits[self.bit(r, t) as usize] = true;
            }
        }
        bits
    }
}

struct Compiler<'a> {
    layout: &'a InputLayout,
    gates: Vec<Gate>,
    budget: &'a Budget,
}

impl Compiler<'_> {
    /// Appends a gate, ticking the budget: every compiled subformula
    /// instantiation pushes at least one gate, so metering gate creation
    /// bounds the whole `O(n^rank)` compilation.
    fn push(&mut self, g: Gate) -> BudgetResult<GateRef> {
        self.budget.tick(AT)?;
        self.gates.push(g);
        Ok(GateRef(self.gates.len() as u32 - 1))
    }

    fn compile(&mut self, f: &Formula, env: &mut Vec<Option<Elem>>) -> BudgetResult<GateRef> {
        match f {
            Formula::True => self.push(Gate::Const(true)),
            Formula::False => self.push(Gate::Const(false)),
            Formula::Atom { rel, args } => {
                let tuple: Vec<Elem> = args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => {
                            env[v.0 as usize].expect("unbound variable during compilation")
                        }
                        Term::Const(_) => unreachable!("constant-free signatures only"),
                    })
                    .collect();
                let bit = self.layout.bit(*rel, &tuple);
                self.push(Gate::Input(bit))
            }
            Formula::Eq(a, b) => {
                let val = |t: &Term, env: &[Option<Elem>]| match t {
                    Term::Var(v) => env[v.0 as usize].expect("unbound variable"),
                    Term::Const(_) => unreachable!("constant-free signatures only"),
                };
                // Equality of ground elements is decided at compile time.
                self.push(Gate::Const(val(a, env) == val(b, env)))
            }
            Formula::Not(g) => {
                let a = self.compile(g, env)?;
                self.push(Gate::Not(a))
            }
            Formula::And(fs) => {
                let xs: Vec<GateRef> = fs
                    .iter()
                    .map(|g| self.compile(g, env))
                    .collect::<BudgetResult<_>>()?;
                self.push(Gate::And(xs))
            }
            Formula::Or(fs) => {
                let xs: Vec<GateRef> = fs
                    .iter()
                    .map(|g| self.compile(g, env))
                    .collect::<BudgetResult<_>>()?;
                self.push(Gate::Or(xs))
            }
            Formula::Implies(a, b) => {
                let ga = self.compile(a, env)?;
                let na = self.push(Gate::Not(ga))?;
                let gb = self.compile(b, env)?;
                self.push(Gate::Or(vec![na, gb]))
            }
            Formula::Iff(a, b) => {
                let ga = self.compile(a, env)?;
                let gb = self.compile(b, env)?;
                let na = self.push(Gate::Not(ga))?;
                let nb = self.push(Gate::Not(gb))?;
                let both = self.push(Gate::And(vec![ga, gb]))?;
                let neither = self.push(Gate::And(vec![na, nb]))?;
                self.push(Gate::Or(vec![both, neither]))
            }
            Formula::Exists(v, g) => {
                // ∃ becomes an unbounded fan-in OR over all
                // instantiations — the heart of the AC⁰ construction.
                let n = self.layout.n;
                let old = env[v.0 as usize];
                let mut xs = Vec::with_capacity(n as usize);
                let mut err = None;
                for d in 0..n {
                    env[v.0 as usize] = Some(d);
                    match self.compile(g, env) {
                        Ok(r) => xs.push(r),
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                env[v.0 as usize] = old;
                match err {
                    Some(e) => Err(e),
                    None => self.push(Gate::Or(xs)),
                }
            }
            Formula::Forall(v, g) => {
                let n = self.layout.n;
                let old = env[v.0 as usize];
                let mut xs = Vec::with_capacity(n as usize);
                let mut err = None;
                for d in 0..n {
                    env[v.0 as usize] = Some(d);
                    match self.compile(g, env) {
                        Ok(r) => xs.push(r),
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                env[v.0 as usize] = old;
                match err {
                    Some(e) => Err(e),
                    None => self.push(Gate::And(xs)),
                }
            }
        }
    }
}

/// Compiles a sentence into the `n`-th member of its AC⁰ circuit family.
///
/// The returned circuit, fed the [`InputLayout::encode`]-ing of any
/// σ-structure with domain `{0, …, n−1}`, outputs `A ⊨ φ`.
///
/// # Panics
/// Panics if `f` is not a sentence or if the signature has constants.
pub fn compile(sig: &Signature, f: &Formula, n: u32) -> (Circuit, InputLayout) {
    compile_budgeted(sig, f, n, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`compile`], ticking once per gate created: the circuit has
/// `O(n^rank)` gates, so compilation itself must be interruptible.
///
/// # Panics
/// Panics if `f` is not a sentence or if the signature has constants.
pub fn compile_budgeted(
    sig: &Signature,
    f: &Formula,
    n: u32,
    budget: &Budget,
) -> BudgetResult<(Circuit, InputLayout)> {
    assert!(f.is_sentence(), "compile requires a sentence");
    let mut span = fmt_obs::trace_span!("eval.circuit.compile", n = n);
    let layout = InputLayout::new(sig, n);
    let mut c = Compiler {
        layout: &layout,
        gates: Vec::new(),
        budget,
    };
    let vars = f.max_var().map_or(0, |m| m as usize + 1);
    let mut env = vec![None; vars];
    let output = c.compile(f, &mut env)?;
    OBS_COMPILES.incr();
    OBS_GATES.record(c.gates.len() as u64);
    span.record_field("gates", c.gates.len());
    Ok((
        Circuit {
            num_inputs: layout.total_bits(),
            gates: c.gates,
            output,
        },
        layout,
    ))
}

/// Circuit-family members compiled.
static OBS_COMPILES: fmt_obs::Counter = fmt_obs::Counter::new("eval.circuit.compiles");
/// Gate count of each compiled circuit.
static OBS_GATES: fmt_obs::Histogram = fmt_obs::Histogram::new("eval.circuit.gates");

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::{library, parser::parse_formula};
    use fmt_structures::{builders, Signature};

    #[test]
    fn circuit_matches_direct_evaluation() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let sentences = vec![
            library::k_clique(e, 3),
            library::q1_all_pairs_adjacent(e),
            library::q2_distinguishing_neighbor(e),
            library::no_isolated_vertex(e),
            parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap(),
        ];
        let structures = vec![
            builders::directed_path(4),
            builders::undirected_cycle(4),
            builders::complete_graph(4),
            builders::empty_graph(4),
        ];
        for f in &sentences {
            let (circuit, layout) = compile(&sig, f, 4);
            for s in &structures {
                let bits = layout.encode(s);
                assert_eq!(
                    circuit.eval(&bits),
                    crate::naive::check_sentence(s, f),
                    "circuit disagrees on {}",
                    f.display(&sig)
                );
            }
        }
    }

    #[test]
    fn depth_constant_in_n() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "forall x. exists y. E(x, y) & !E(y, x)").unwrap();
        let depths: Vec<usize> = [2u32, 4, 8, 16]
            .iter()
            .map(|&n| compile(&sig, &f, n).0.depth())
            .collect();
        assert!(
            depths.windows(2).all(|w| w[0] == w[1]),
            "depth must not depend on n: {depths:?}"
        );
    }

    #[test]
    fn size_polynomial_in_n() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap();
        // Two nested quantifiers: size Θ(n²).
        let s4 = compile(&sig, &f, 4).0.size();
        let s8 = compile(&sig, &f, 8).0.size();
        let s16 = compile(&sig, &f, 16).0.size();
        // Ratio approaches 4 when n doubles.
        assert!(s8 > 3 * s4 / 2 && s16 > 3 * s8 / 2);
        assert!(s16 < 6 * s8, "growth should be polynomial (quadratic)");
    }

    #[test]
    fn layout_bits() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let layout = InputLayout::new(&sig, 3);
        assert_eq!(layout.total_bits(), 9);
        assert_eq!(layout.bit(e, &[0, 0]), 0);
        assert_eq!(layout.bit(e, &[1, 2]), 5);
        assert_eq!(layout.bit(e, &[2, 2]), 8);
    }

    #[test]
    fn encode_roundtrip() {
        let s = builders::directed_cycle(3);
        let layout = InputLayout::new(s.signature(), 3);
        let bits = layout.encode(&s);
        assert_eq!(bits.iter().filter(|&&b| b).count(), 3);
        let e = s.signature().relation("E").unwrap();
        assert!(bits[layout.bit(e, &[0, 1]) as usize]);
        assert!(!bits[layout.bit(e, &[1, 0]) as usize]);
    }

    #[test]
    fn equality_resolved_at_compile_time() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x y. E(x, y) & !(x = y)").unwrap();
        let (circuit, layout) = compile(&sig, &f, 3);
        let loop_only = {
            use fmt_structures::StructureBuilder;
            let e = sig.relation("E").unwrap();
            let mut b = StructureBuilder::new(sig.clone(), 3);
            b.add(e, &[1, 1]).unwrap();
            b.build().unwrap()
        };
        assert!(!circuit.eval(&layout.encode(&loop_only)));
        let edge = builders::directed_path(3);
        assert!(circuit.eval(&layout.encode(&edge)));
    }

    #[test]
    fn empty_domain_circuit() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x. true").unwrap();
        let (circuit, layout) = compile(&sig, &f, 0);
        assert_eq!(layout.total_bits(), 0);
        assert!(!circuit.eval(&[]));
        let g = parse_formula(&sig, "forall x. false").unwrap();
        let (c2, _) = compile(&sig, &g, 0);
        assert!(c2.eval(&[]));
    }

    #[test]
    fn multiple_relations_layout() {
        let sig = Signature::builder()
            .relation("P", 1)
            .relation("E", 2)
            .finish_arc();
        let p = sig.relation("P").unwrap();
        let e = sig.relation("E").unwrap();
        let layout = InputLayout::new(&sig, 4);
        assert_eq!(layout.total_bits(), 4 + 16);
        assert_eq!(layout.bit(p, &[3]), 3);
        assert_eq!(layout.bit(e, &[0, 0]), 4);
    }
}
