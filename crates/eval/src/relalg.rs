//! Bottom-up, set-at-a-time FO evaluation — the relational-algebra view
//! of "FO as a query language".
//!
//! Each subformula is evaluated to the [`Table`] of its satisfying
//! assignments (a relation over its free variables). Connectives become
//! algebra operators: `∧` is a natural join, `∨` a (schema-aligned)
//! union, `∃` a projection, `∀` a division by the domain, and `¬` a
//! complement relative to `domainᵃʳⁱᵗʸ`. Cost is `O(n^width)` where
//! `width` is the number of distinct variables — the engine behind the
//! data-complexity story, and the reference implementation the
//! bounded-degree evaluator and circuit compiler are validated against.

use fmt_logic::{nf, Formula, Query, Term, Var};
use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::index::{self, TupleIndex};
use fmt_structures::{Elem, Structure};
use std::collections::HashSet;

/// Budget tick site label for this engine.
const AT: &str = "eval.relalg";

/// A relation over a set of variables: the satisfying assignments of a
/// subformula. `vars` is kept sorted; each row assigns `row[i]` to
/// `vars[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// The schema: sorted distinct variables.
    pub vars: Vec<Var>,
    /// The rows, aligned with `vars`.
    pub rows: HashSet<Vec<Elem>>,
}

impl Table {
    /// The table over no variables representing `true` (one empty row)
    /// or `false` (no rows).
    pub fn boolean(b: bool) -> Table {
        let mut rows = HashSet::new();
        if b {
            rows.insert(Vec::new());
        }
        Table { vars: vec![], rows }
    }

    /// `true` iff this is a Boolean table containing the empty row.
    pub fn as_bool(&self) -> bool {
        debug_assert!(self.vars.is_empty());
        !self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Projects onto a subset of the schema (which must be contained in
    /// `self.vars`).
    fn project(&self, keep: &[Var]) -> Table {
        let idx: Vec<usize> = keep
            .iter()
            .map(|v| self.vars.binary_search(v).expect("projection var"))
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| idx.iter().map(|&i| r[i]).collect())
            .collect();
        Table {
            vars: keep.to_vec(),
            rows,
        }
    }

    /// Extends the schema with missing variables, crossing with the full
    /// domain `0..n` for each — in one pass over the rows, emitting each
    /// output row directly in the target column order (rather than
    /// materializing an intermediate row set per added variable).
    /// Ticks the budget once per emitted row: the output is `n^fresh`
    /// times larger than the input, so this loop can dominate.
    fn extend_to(&self, target: &[Var], n: u32, budget: &Budget) -> BudgetResult<Table> {
        debug_assert!(target.windows(2).all(|w| w[0] < w[1]));
        if target == self.vars.as_slice() {
            return Ok(self.clone());
        }
        // Each target column is either an existing column or the next
        // fresh domain-valued one.
        enum Src {
            Old(usize),
            Fresh(usize),
        }
        let mut src: Vec<Src> = Vec::with_capacity(target.len());
        let mut fresh = 0usize;
        for &v in target {
            match self.vars.binary_search(&v) {
                Ok(i) => src.push(Src::Old(i)),
                Err(_) => {
                    src.push(Src::Fresh(fresh));
                    fresh += 1;
                }
            }
        }
        if fresh > 0 && n == 0 {
            return Ok(Table {
                vars: target.to_vec(),
                rows: HashSet::new(),
            });
        }
        // Odometer over the fresh columns; returns false on wrap-around.
        fn bump(assign: &mut [Elem], n: u32) -> bool {
            for a in assign.iter_mut().rev() {
                *a += 1;
                if *a < n {
                    return true;
                }
                *a = 0;
            }
            false
        }
        let combos = (n as usize).saturating_pow(fresh as u32);
        let mut rows: HashSet<Vec<Elem>> =
            HashSet::with_capacity(self.rows.len().saturating_mul(combos));
        let mut assign = vec![0 as Elem; fresh];
        for r in &self.rows {
            loop {
                budget.tick(AT)?;
                rows.insert(
                    src.iter()
                        .map(|c| match *c {
                            Src::Old(i) => r[i],
                            Src::Fresh(j) => assign[j],
                        })
                        .collect(),
                );
                if !bump(&mut assign, n) {
                    break;
                }
            }
        }
        Ok(Table {
            vars: target.to_vec(),
            rows,
        })
    }

    /// Natural join. Ticks the budget once per probed left row and once
    /// per produced row.
    fn join(&self, other: &Table, budget: &Budget) -> BudgetResult<Table> {
        // Shared variables and their positions.
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.binary_search(v).is_ok())
            .collect();
        let self_shared: Vec<usize> = shared
            .iter()
            .map(|v| self.vars.binary_search(v).unwrap())
            .collect();
        let other_shared: Vec<usize> = shared
            .iter()
            .map(|v| other.vars.binary_search(v).unwrap())
            .collect();
        let other_extra: Vec<usize> = (0..other.vars.len())
            .filter(|i| !other_shared.contains(i))
            .collect();

        // Hash-index `other` on the shared key (the same index structure
        // the Datalog join engine probes).
        let index = TupleIndex::build(
            other.vars.len(),
            &other_shared,
            other.rows.iter().map(Vec::as_slice),
        );

        let mut vars: Vec<Var> = self.vars.clone();
        vars.extend(other_extra.iter().map(|&i| other.vars[i]));
        let mut order: Vec<usize> = (0..vars.len()).collect();
        order.sort_by_key(|&i| vars[i]);
        let out_vars: Vec<Var> = order.iter().map(|&i| vars[i]).collect();

        let mut rows = HashSet::new();
        let mut key: Vec<Elem> = Vec::with_capacity(self_shared.len());
        for r in &self.rows {
            budget.tick(AT)?;
            key.clear();
            key.extend(self_shared.iter().map(|&i| r[i]));
            for m in index.probe(&key) {
                budget.tick(AT)?;
                let mut combined: Vec<Elem> = r.clone();
                combined.extend(other_extra.iter().map(|&i| m[i]));
                let sorted: Vec<Elem> = order.iter().map(|&i| combined[i]).collect();
                rows.insert(sorted);
            }
        }
        Ok(Table {
            vars: out_vars,
            rows,
        })
    }

    /// Complement relative to `domain^vars`. Ticks the budget once per
    /// enumerated tuple — the loop visits all `n^arity` of them.
    fn complement(&self, n: u32, budget: &Budget) -> BudgetResult<Table> {
        let m = self.vars.len();
        let mut rows = HashSet::new();
        if m == 0 {
            return Ok(Table::boolean(!self.as_bool()));
        }
        let mut tuple = vec![0 as Elem; m];
        if n == 0 {
            return Ok(Table {
                vars: self.vars.clone(),
                rows,
            });
        }
        loop {
            budget.tick(AT)?;
            if !self.rows.contains(&tuple) {
                rows.insert(tuple.clone());
            }
            let mut pos = m;
            loop {
                if pos == 0 {
                    return Ok(Table {
                        vars: self.vars.clone(),
                        rows,
                    });
                }
                pos -= 1;
                tuple[pos] += 1;
                if tuple[pos] < n {
                    break;
                }
                tuple[pos] = 0;
                if pos == 0 {
                    return Ok(Table {
                        vars: self.vars.clone(),
                        rows,
                    });
                }
            }
        }
    }
}

/// Evaluates a formula bottom-up, returning the table of satisfying
/// assignments over its free variables (in sorted order).
///
/// The formula is first converted to NNF so that negation only occurs on
/// atoms (where complementation is `O(n^arity)`).
pub fn eval(s: &Structure, f: &Formula) -> Table {
    eval_budgeted(s, f, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`eval`]: stops cleanly with
/// [`Exhausted`](fmt_structures::budget::Exhausted) when `budget` runs
/// out; no partial table escapes.
pub fn eval_budgeted(s: &Structure, f: &Formula, budget: &Budget) -> BudgetResult<Table> {
    let mut span = fmt_obs::trace_span!("eval.relalg.eval", size = s.size());
    let g = nf::nnf(f);
    let t = eval_nnf(s, &g, budget)?;
    span.record_field("rows", t.rows.len());
    Ok(t)
}

/// Operator applications (one per NNF node evaluated).
static OBS_OPS: fmt_obs::Counter = fmt_obs::Counter::new("eval.relalg.operators");
/// Output cardinality of each operator application.
static OBS_OP_ROWS: fmt_obs::Histogram = fmt_obs::Histogram::new("eval.relalg.op_rows");

/// Operator label for a span, one per NNF connective.
fn op_name(f: &Formula) -> &'static str {
    match f {
        Formula::True | Formula::False => "const",
        Formula::Atom { .. } => "atom",
        Formula::Eq(..) => "eq",
        Formula::Not(..) => "complement",
        Formula::And(..) => "join",
        Formula::Or(..) => "union",
        Formula::Exists(..) => "project",
        Formula::Forall(..) => "divide",
        Formula::Implies(..) | Formula::Iff(..) => "rewrite",
    }
}

fn eval_nnf(s: &Structure, f: &Formula, budget: &Budget) -> BudgetResult<Table> {
    let mut span = fmt_obs::trace_span!("eval.relalg.op", op = op_name(f));
    let t = eval_nnf_node(s, f, budget)?;
    OBS_OPS.incr();
    OBS_OP_ROWS.record(t.rows.len() as u64);
    span.record_field("rows", t.rows.len());
    Ok(t)
}

fn eval_nnf_node(s: &Structure, f: &Formula, budget: &Budget) -> BudgetResult<Table> {
    budget.tick(AT)?;
    let n = s.size();
    match f {
        Formula::True => Ok(Table::boolean(true)),
        Formula::False => Ok(Table::boolean(false)),
        Formula::Atom { rel, args } => atom_table(s, *rel, args, budget),
        Formula::Eq(a, b) => Ok(eq_table(s, a, b)),
        Formula::Not(g) => {
            // NNF: g is an atom, an equality, or a constant.
            let t = eval_nnf(s, g, budget)?;
            t.complement(n, budget)
        }
        Formula::And(fs) => {
            // Natural join of all conjuncts; the resulting schema is the
            // union of the conjunct schemas = the free variables of the
            // conjunction.
            let mut acc = Table::boolean(true);
            for g in fs {
                acc = acc.join(&eval_nnf(s, g, budget)?, budget)?;
            }
            Ok(acc)
        }
        Formula::Or(fs) => {
            let target = target_vars(f);
            let mut rows = HashSet::new();
            for g in fs {
                let t = eval_nnf(s, g, budget)?.extend_to(&target, n, budget)?;
                rows.extend(t.rows);
            }
            Ok(Table { vars: target, rows })
        }
        Formula::Exists(v, g) => {
            let t = eval_nnf(s, g, budget)?;
            if t.vars.binary_search(v).is_err() {
                // v does not occur free in the body: ∃v φ ≡ φ ∧ "domain
                // nonempty".
                if n == 0 {
                    return Ok(Table {
                        vars: t.vars.clone(),
                        rows: HashSet::new(),
                    });
                }
                return Ok(t);
            }
            let keep: Vec<Var> = t.vars.iter().copied().filter(|w| w != v).collect();
            Ok(t.project(&keep))
        }
        Formula::Forall(v, g) => {
            let t = eval_nnf(s, g, budget)?;
            if t.vars.binary_search(v).is_err() {
                // ∀v φ ≡ φ ∨ "domain empty".
                if n == 0 {
                    let mut rows = HashSet::new();
                    if t.vars.is_empty() {
                        rows.insert(Vec::new());
                    }
                    return Ok(Table {
                        vars: t.vars.clone(),
                        rows,
                    });
                }
                return Ok(t);
            }
            // Division: keep assignments whose v-extensions all hold.
            let vi = t.vars.binary_search(v).unwrap();
            let keep: Vec<Var> = t.vars.iter().copied().filter(|w| w != v).collect();
            use std::collections::HashMap;
            let mut counts: HashMap<Vec<Elem>, u32> = HashMap::new();
            for r in &t.rows {
                budget.tick(AT)?;
                let mut key = r.clone();
                key.remove(vi);
                *counts.entry(key).or_insert(0) += 1;
            }
            let rows = counts
                .into_iter()
                .filter(|&(_, c)| c == n)
                .map(|(k, _)| k)
                .collect();
            if n == 0 {
                // ∀ over the empty domain is vacuously true for every
                // assignment of the other variables — but there are no
                // assignments over an empty domain either, except the
                // empty one.
                let mut rows = HashSet::new();
                if keep.is_empty() {
                    rows.insert(Vec::new());
                }
                return Ok(Table { vars: keep, rows });
            }
            Ok(Table { vars: keep, rows })
        }
        Formula::Implies(..) | Formula::Iff(..) => {
            unreachable!("NNF output contains no implications")
        }
    }
}

fn target_vars(f: &Formula) -> Vec<Var> {
    f.free_vars().into_iter().collect()
}

fn atom_table(
    s: &Structure,
    rel: fmt_structures::RelId,
    args: &[Term],
    budget: &Budget,
) -> BudgetResult<Table> {
    // Distinct variables in sorted order form the schema.
    let mut vars: Vec<Var> = args.iter().filter_map(Term::as_var).collect();
    vars.sort_unstable();
    vars.dedup();
    // A leading run of constant arguments narrows the scan to a sorted
    // prefix range of the relation instead of the full extent.
    let prefix: Vec<Elem> = args
        .iter()
        .map_while(|a| match a {
            Term::Const(c) => Some(s.constant(*c)),
            Term::Var(_) => None,
        })
        .collect();
    let mut rows = HashSet::new();
    'tuples: for t in index::probe_prefix(s.rel(rel), &prefix) {
        budget.tick(AT)?;
        // Check constants and repeated-variable consistency.
        let mut assignment: Vec<Option<Elem>> = vec![None; vars.len()];
        for (i, a) in args.iter().enumerate() {
            match a {
                Term::Const(c) => {
                    if s.constant(*c) != t[i] {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    let vi = vars.binary_search(v).unwrap();
                    match assignment[vi] {
                        None => assignment[vi] = Some(t[i]),
                        Some(prev) if prev != t[i] => continue 'tuples,
                        _ => {}
                    }
                }
            }
        }
        rows.insert(assignment.into_iter().map(Option::unwrap).collect());
    }
    Ok(Table { vars, rows })
}

fn eq_table(s: &Structure, a: &Term, b: &Term) -> Table {
    let n = s.size();
    match (a, b) {
        (Term::Const(c1), Term::Const(c2)) => Table::boolean(s.constant(*c1) == s.constant(*c2)),
        (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
            let mut rows = HashSet::new();
            if s.constant(*c) < n {
                rows.insert(vec![s.constant(*c)]);
            }
            Table {
                vars: vec![*v],
                rows,
            }
        }
        (Term::Var(v1), Term::Var(v2)) if v1 == v2 => {
            let rows = (0..n).map(|d| vec![d]).collect();
            Table {
                vars: vec![*v1],
                rows,
            }
        }
        (Term::Var(v1), Term::Var(v2)) => {
            let mut vars = vec![*v1, *v2];
            vars.sort_unstable();
            let rows = (0..n).map(|d| vec![d, d]).collect();
            Table { vars, rows }
        }
    }
}

/// Evaluates a query and returns its sorted answer set, matching
/// [`crate::naive::answers`] (including the answer-variable order of the
/// query).
pub fn answers(s: &Structure, q: &Query) -> Vec<Vec<Elem>> {
    answers_budgeted(s, q, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`answers`]: stops cleanly when `budget` runs out.
pub fn answers_budgeted(s: &Structure, q: &Query, budget: &Budget) -> BudgetResult<Vec<Vec<Elem>>> {
    let t = eval_budgeted(s, q.formula(), budget)?;
    // t.vars is sorted; q.free() may order differently.
    let idx: Vec<usize> = q
        .free()
        .iter()
        .map(|v| t.vars.binary_search(v).expect("schema mismatch"))
        .collect();
    let mut out: Vec<Vec<Elem>> = t
        .rows
        .iter()
        .map(|r| idx.iter().map(|&i| r[i]).collect())
        .collect();
    out.sort_unstable();
    Ok(out)
}

/// Checks a sentence via bottom-up evaluation.
pub fn check_sentence(s: &Structure, f: &Formula) -> bool {
    check_sentence_budgeted(s, f, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`check_sentence`]: stops cleanly when `budget` runs out.
///
/// # Panics
/// Panics if `f` has free variables.
pub fn check_sentence_budgeted(s: &Structure, f: &Formula, budget: &Budget) -> BudgetResult<bool> {
    assert!(f.is_sentence(), "check_sentence requires a sentence");
    Ok(eval_budgeted(s, f, budget)?.as_bool())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::{library, Query};
    use fmt_structures::{builders, Signature};

    #[test]
    fn agrees_with_naive_on_suite() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let structures = vec![
            builders::directed_path(5),
            builders::undirected_cycle(6),
            builders::complete_graph(4),
            builders::empty_graph(4),
            builders::full_binary_tree(2),
            builders::empty_graph(0),
        ];
        let sentences = vec![
            library::at_least(3),
            library::k_clique(e, 3),
            library::k_path(e, 2),
            library::q1_all_pairs_adjacent(e),
            library::q2_distinguishing_neighbor(e),
            library::dominating_vertex(e),
            library::no_isolated_vertex(e),
        ];
        for s in &structures {
            for f in &sentences {
                assert_eq!(
                    check_sentence(s, f),
                    crate::naive::check_sentence(s, f),
                    "disagreement on {} over size {}",
                    f.display(&sig),
                    s.size()
                );
            }
        }
    }

    #[test]
    fn agrees_with_naive_on_open_queries() {
        let sig = Signature::graph();
        let queries = [
            "E(x, y)",
            "exists z. E(x, z) & E(z, y)",
            "!E(x, y) & !(x = y)",
            "forall z. E(z, x) -> E(z, y)",
            "E(x, x) | exists y. E(x, y) & !(y = x)",
        ];
        let structures = vec![
            builders::directed_path(4),
            builders::undirected_cycle(5),
            builders::full_binary_tree(2),
        ];
        for src in queries {
            let q = Query::parse(&sig, src).unwrap();
            for s in &structures {
                assert_eq!(
                    answers(s, &q),
                    crate::naive::answers(s, &q),
                    "disagreement on {src} over size {}",
                    s.size()
                );
            }
        }
    }

    #[test]
    fn join_with_shared_and_fresh_vars() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "E(x, y) & E(y, z)").unwrap();
        let s = builders::directed_path(4);
        let a = answers(&s, &q);
        assert_eq!(a, vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn union_aligns_schemas() {
        let sig = Signature::graph();
        // x free on one side only.
        let q = Query::parse(&sig, "E(x, y) | E(y, x)").unwrap();
        let s = builders::directed_path(3);
        let a = answers(&s, &q);
        assert_eq!(a, vec![vec![0, 1], vec![1, 0], vec![1, 2], vec![2, 1]]);
    }

    #[test]
    fn negated_atom_complement() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "!E(x, y)").unwrap();
        let s = builders::complete_graph(3);
        // Complete loop-free graph: only the diagonal is missing.
        let a = answers(&s, &q);
        assert_eq!(a, vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
    }

    #[test]
    fn forall_division() {
        let sig = Signature::graph();
        // Vertices dominated by every vertex: ∀y (y = x ∨ E(y,x)).
        let q = Query::parse(&sig, "forall y. y = x | E(y, x)").unwrap();
        let k3 = builders::complete_graph(3);
        assert_eq!(answers(&k3, &q).len(), 3);
        let p3 = builders::directed_path(3);
        assert!(answers(&p3, &q).is_empty());
    }

    #[test]
    fn vacuous_quantifiers() {
        let sig = Signature::graph();
        let s2 = builders::empty_graph(2);
        let s0 = builders::empty_graph(0);
        let f = Query::parse_sentence(&sig, "exists x. true").unwrap();
        assert!(check_sentence(&s2, f.formula()));
        assert!(!check_sentence(&s0, f.formula()));
        let g = Query::parse_sentence(&sig, "forall x. false").unwrap();
        assert!(!check_sentence(&s2, g.formula()));
        assert!(check_sentence(&s0, g.formula()));
    }

    #[test]
    fn repeated_variable_in_atom() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "E(x, x)").unwrap();
        let s = builders::directed_cycle(1); // one self-loop
        assert_eq!(answers(&s, &q), vec![vec![0]]);
        let t = builders::directed_path(3);
        assert!(answers(&t, &q).is_empty());
    }

    #[test]
    fn equality_tables() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "x = y").unwrap();
        let s = builders::empty_graph(3);
        assert_eq!(answers(&s, &q), vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
    }
}
