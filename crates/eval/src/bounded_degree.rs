//! Linear-time FO evaluation on bounded-degree structures
//! (Theorem 3.11, Seese's theorem), via threshold Hanf-locality
//! (Theorem 3.10).
//!
//! The survey's algorithm: for a sentence φ and degree bound `k`, find
//! `(m, r)` such that `G ⇆*ₘ,ᵣ G′` implies `G ⊨ φ ⟺ G′ ⊨ φ` on
//! degree-≤k structures. Then the truth of φ on `G` depends only on the
//! **capped census**: for each radius-`r` neighborhood type τ, the count
//! of nodes realizing τ, capped at `m`. Evaluating φ therefore splits
//! into
//!
//! 1. a *census pass* over the input — `O(n)` for fixed `(k, r)`, since
//!    each ball has bounded size; and
//! 2. a lookup in a table indexed by capped censuses, populated by a
//!    precomputation that is independent of the (large) input.
//!
//! [`BoundedDegreeEvaluator`] implements this with a memoized table:
//! the first structure exhibiting a given capped census pays a full
//! evaluation; every later structure with the same capped census —
//! in particular, every larger member of a growing family — costs only
//! the linear census pass. This is exactly the precomputation/linear-
//! pass split of the paper, with the table filled lazily (on small
//! family members) instead of by enumerating abstract censuses, which
//! sidesteps the realizability problem while preserving soundness:
//! a table hit is justified by Theorem 3.10.
//!
//! ## Parameters
//!
//! [`hanf_parameters`] computes sound `(m, r)` from the quantifier rank
//! `q` and degree bound `k`, following the Fagin–Stockmeyer–Vardi
//! argument: `r = (3^q − 1)/2`, and the threshold is
//! `m = q · b(2r) + 1` where `b(R)` bounds the size of a radius-`R`
//! ball in a degree-≤k graph (each of the ≤ q spoiler moves can "block"
//! at most one ball's worth of candidates of each type). Conservative
//! parameters keep every table hit sound; [`BoundedDegreeEvaluator::
//! with_parameters`] allows tighter, manually calibrated values for
//! benchmarking, and the test suite cross-validates both modes against
//! direct evaluation.

use fmt_locality::{GaifmanGraph, TypeCensus, TypeRegistry};
use fmt_logic::Formula;
use fmt_structures::{Signature, Structure};
use std::collections::HashMap;
use std::sync::Arc;

/// Sound threshold-Hanf parameters for a quantifier rank and degree
/// bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HanfParameters {
    /// Neighborhood radius `r`.
    pub radius: u32,
    /// Count threshold `m`.
    pub threshold: usize,
}

/// Maximum number of nodes in a radius-`radius` ball of a graph with
/// maximum (Gaifman) degree `k`, i.e. `1 + k·Σᵢ₌₀^{r−1}(k−1)ⁱ`
/// (saturating).
pub fn ball_size_bound(k: usize, radius: u32) -> usize {
    if radius == 0 {
        return 1;
    }
    match k {
        0 => 1,
        1 => 2,
        _ => {
            let mut frontier: usize = k;
            let mut total: usize = 1;
            for _ in 0..radius {
                total = total.saturating_add(frontier);
                frontier = frontier.saturating_mul(k - 1);
            }
            total
        }
    }
}

/// Computes conservative `(m, r)` for sentences of quantifier rank `q`
/// on degree-≤k structures (see the module docs).
pub fn hanf_parameters(q: u32, k: usize) -> HanfParameters {
    let radius = (3u32.saturating_pow(q).saturating_sub(1)) / 2;
    let blocked = ball_size_bound(k, radius.saturating_mul(2));
    let threshold = (q as usize).saturating_mul(blocked).saturating_add(1);
    HanfParameters { radius, threshold }
}

/// Runtime statistics of a [`BoundedDegreeEvaluator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Structures evaluated in total.
    pub evaluated: usize,
    /// Evaluations answered from the census table (linear-time path).
    pub table_hits: usize,
    /// Evaluations that required a full (non-linear) evaluation.
    pub full_evaluations: usize,
    /// Inputs that exceeded the degree bound (evaluated directly,
    /// never cached).
    pub degree_overflows: usize,
}

/// The Theorem-3.11 evaluator: census pass + capped-census table.
#[derive(Debug)]
pub struct BoundedDegreeEvaluator {
    sig: Arc<Signature>,
    sentence: Formula,
    degree_bound: usize,
    params: HanfParameters,
    registry: TypeRegistry,
    table: HashMap<Vec<(u32, u64)>, bool>,
    /// Statistics (hits vs full evaluations).
    pub stats: EvalStats,
}

impl BoundedDegreeEvaluator {
    /// Creates an evaluator with the conservative sound parameters of
    /// [`hanf_parameters`].
    ///
    /// # Panics
    /// Panics if `sentence` is not a sentence.
    pub fn new(sig: Arc<Signature>, sentence: Formula, degree_bound: usize) -> Self {
        let params = hanf_parameters(sentence.quantifier_rank(), degree_bound);
        Self::with_parameters(sig, sentence, degree_bound, params)
    }

    /// Creates an evaluator with explicit `(m, r)` — for experiments
    /// with manually calibrated (smaller) parameters. Soundness is then
    /// the caller's responsibility; the test suite cross-validates.
    ///
    /// # Panics
    /// Panics if `sentence` is not a sentence.
    pub fn with_parameters(
        sig: Arc<Signature>,
        sentence: Formula,
        degree_bound: usize,
        params: HanfParameters,
    ) -> Self {
        assert!(
            sentence.is_sentence(),
            "bounded-degree evaluation needs a sentence"
        );
        BoundedDegreeEvaluator {
            sig,
            sentence,
            degree_bound,
            params,
            registry: TypeRegistry::new(),
            table: HashMap::new(),
            stats: EvalStats::default(),
        }
    }

    /// The parameters in use.
    pub fn parameters(&self) -> HanfParameters {
        self.params
    }

    /// Evaluates the sentence on `s`.
    ///
    /// If `s` respects the degree bound, the answer comes from the
    /// capped-census table (filling it with a full evaluation on a
    /// miss); otherwise the sentence is evaluated directly and the
    /// result is not cached.
    pub fn evaluate(&mut self, s: &Structure) -> bool {
        assert_eq!(s.signature(), &self.sig, "signature mismatch");
        self.stats.evaluated += 1;
        let g = GaifmanGraph::new(s);
        if g.max_degree() > self.degree_bound {
            self.stats.degree_overflows += 1;
            self.stats.full_evaluations += 1;
            return crate::relalg::check_sentence(s, &self.sentence);
        }
        let census =
            TypeCensus::compute_with_gaifman(s, &g, self.params.radius, &mut self.registry);
        let key = self.capped_key(&census);
        if let Some(&answer) = self.table.get(&key) {
            self.stats.table_hits += 1;
            return answer;
        }
        self.stats.full_evaluations += 1;
        let answer = crate::relalg::check_sentence(s, &self.sentence);
        self.table.insert(key, answer);
        answer
    }

    /// The capped census as a canonical, hashable key.
    fn capped_key(&self, census: &TypeCensus) -> Vec<(u32, u64)> {
        let m = self.params.threshold;
        let mut key: Vec<(u32, u64)> = census.iter().map(|(t, c)| (t.0, c.min(m) as u64)).collect();
        key.sort_unstable();
        key
    }

    /// Number of distinct capped censuses seen so far (table size).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::parser::parse_formula;
    use fmt_structures::{builders, Signature};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ball_bounds() {
        assert_eq!(ball_size_bound(0, 5), 1);
        assert_eq!(ball_size_bound(1, 5), 2);
        // Degree 2 (paths/cycles): ball of radius r has ≤ 2r + 1 nodes.
        assert_eq!(ball_size_bound(2, 3), 7);
        // Degree 3, radius 2: 1 + 3 + 6 = 10.
        assert_eq!(ball_size_bound(3, 2), 10);
        assert_eq!(ball_size_bound(2, 0), 1);
    }

    #[test]
    fn parameters_grow_with_rank() {
        let p1 = hanf_parameters(1, 3);
        let p2 = hanf_parameters(2, 3);
        assert_eq!(p1.radius, 1);
        assert_eq!(p2.radius, 4);
        assert!(p2.threshold > p1.threshold);
    }

    /// Conservative mode agrees with direct evaluation on families of
    /// bounded-degree structures, with table hits occurring for
    /// same-census members.
    #[test]
    fn conservative_mode_correct_on_cycles() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap();
        let mut ev = BoundedDegreeEvaluator::new(sig.clone(), f.clone(), 2);
        for n in [3u32, 4, 5, 8, 12, 20] {
            let s = builders::undirected_cycle(n);
            assert_eq!(ev.evaluate(&s), crate::naive::check_sentence(&s, &f));
        }
        assert_eq!(ev.stats.evaluated, 6);
        assert!(ev.stats.degree_overflows == 0);
    }

    #[test]
    fn calibrated_mode_gets_table_hits() {
        // "Every vertex has a neighbor" is 1-local with tiny threshold;
        // on cycles of length >= 3 the capped census stabilizes.
        let sig = Signature::graph();
        let f = parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap();
        let params = HanfParameters {
            radius: 1,
            threshold: 4,
        };
        let mut ev = BoundedDegreeEvaluator::with_parameters(sig.clone(), f.clone(), 2, params);
        for n in [6u32, 8, 10, 12, 50, 100] {
            let s = builders::undirected_cycle(n);
            assert_eq!(ev.evaluate(&s), crate::naive::check_sentence(&s, &f));
        }
        // All cycles of length >= threshold share one capped census.
        assert!(ev.stats.table_hits >= 4, "stats: {:?}", ev.stats);
        assert_eq!(ev.table_len(), ev.stats.full_evaluations);
    }

    #[test]
    fn calibrated_mode_matches_naive_on_mixed_family() {
        let sig = Signature::graph();
        // Rank-2 sentences, checked with generous calibrated parameters.
        let sentences = [
            "forall x. exists y. E(x, y)",
            "exists x. forall y. E(x, y) | x = y",
            "exists x y. E(x, y) & !(x = y)",
        ];
        let mut rng = StdRng::seed_from_u64(11);
        let mut family: Vec<_> = vec![
            builders::undirected_cycle(7),
            builders::undirected_path(9),
            builders::grid(3, 4),
            builders::copies(&builders::undirected_cycle(5), 2),
            builders::empty_graph(6),
        ];
        for _ in 0..4 {
            family.push(builders::random_bounded_degree_graph(14, 3, &mut rng));
        }
        for src in sentences {
            let f = parse_formula(&sig, src).unwrap();
            let params = HanfParameters {
                radius: 2,
                threshold: 20,
            };
            let mut ev = BoundedDegreeEvaluator::with_parameters(sig.clone(), f.clone(), 4, params);
            for s in &family {
                assert_eq!(
                    ev.evaluate(s),
                    crate::naive::check_sentence(s, &f),
                    "sentence {src} on structure of size {}",
                    s.size()
                );
            }
        }
    }

    #[test]
    fn degree_overflow_falls_back() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x y. E(x, y)").unwrap();
        let mut ev = BoundedDegreeEvaluator::new(sig, f.clone(), 2);
        let k5 = builders::complete_graph(5); // degree 4 > bound 2
        assert!(ev.evaluate(&k5));
        assert_eq!(ev.stats.degree_overflows, 1);
        assert_eq!(ev.table_len(), 0, "overflow results are not cached");
    }

    #[test]
    fn linear_pass_on_growing_cycles_is_cheap() {
        // The headline behavior: after priming on a small cycle, large
        // cycles are answered via the census alone.
        let sig = Signature::graph();
        let f = parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap();
        let params = HanfParameters {
            radius: 1,
            threshold: 4,
        };
        let mut ev = BoundedDegreeEvaluator::with_parameters(sig.clone(), f, 2, params);
        ev.evaluate(&builders::undirected_cycle(8)); // prime
        let big = builders::undirected_cycle(2000);
        assert!(ev.evaluate(&big));
        assert_eq!(ev.stats.table_hits, 1);
        assert_eq!(ev.stats.full_evaluations, 1);
    }
}
