//! Quantified Boolean formulas and the PSPACE-hardness reduction.
//!
//! QBF satisfiability is the survey's canonical PSPACE-complete problem,
//! and the lower-bound half of the combined-complexity theorem is the
//! reduction **QBF → FO model checking**: over the two-element structure
//! `B = ({0, 1}, T = {1})`, a propositional variable `p` becomes a
//! first-order variable ranging over `{0, 1}` and the atom `p` becomes
//! `T(x_p)`, so the QBF is true iff `B ⊨ φ*`. [`to_model_checking`]
//! builds exactly this instance; experiment E15 cross-validates it
//! against the direct QBF solver.

use fmt_logic::{Formula, Var};
use fmt_structures::{Signature, Structure, StructureBuilder};

/// A quantified Boolean formula. Propositional variables are indexed
/// like first-order [`Var`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qbf {
    /// A propositional variable.
    Var(u32),
    /// Negation.
    Not(Box<Qbf>),
    /// N-ary conjunction.
    And(Vec<Qbf>),
    /// N-ary disjunction.
    Or(Vec<Qbf>),
    /// Existential propositional quantification.
    Exists(u32, Box<Qbf>),
    /// Universal propositional quantification.
    Forall(u32, Box<Qbf>),
}

impl Qbf {
    /// `¬self`.
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors logical ¬
    pub fn not(self) -> Qbf {
        Qbf::Not(Box::new(self))
    }

    /// Largest variable index mentioned (quantified or free), if any.
    pub fn max_var(&self) -> Option<u32> {
        match self {
            Qbf::Var(v) => Some(*v),
            Qbf::Not(g) => g.max_var(),
            Qbf::And(gs) | Qbf::Or(gs) => gs.iter().filter_map(Qbf::max_var).max(),
            Qbf::Exists(v, g) | Qbf::Forall(v, g) => Some((*v).max(g.max_var().unwrap_or(0))),
        }
    }

    /// Free propositional variables.
    pub fn free_vars(&self) -> Vec<u32> {
        fn go(q: &Qbf, bound: &mut Vec<u32>, out: &mut Vec<u32>) {
            match q {
                Qbf::Var(v) => {
                    if !bound.contains(v) && !out.contains(v) {
                        out.push(*v);
                    }
                }
                Qbf::Not(g) => go(g, bound, out),
                Qbf::And(gs) | Qbf::Or(gs) => {
                    for g in gs {
                        go(g, bound, out);
                    }
                }
                Qbf::Exists(v, g) | Qbf::Forall(v, g) => {
                    bound.push(*v);
                    go(g, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out.sort_unstable();
        out
    }

    /// Closes the formula existentially over its free variables — "QBF
    /// satisfiability" in the usual sense.
    pub fn close_existentially(self) -> Qbf {
        let free = self.free_vars();
        free.into_iter()
            .rev()
            .fold(self, |acc, v| Qbf::Exists(v, Box::new(acc)))
    }
}

/// Decides the truth of a **closed** QBF by recursive expansion
/// (PSPACE, exponential time — the point of the reduction is that FO
/// model checking inherits this hardness).
///
/// # Panics
/// Panics if the formula has free variables.
pub fn solve(q: &Qbf) -> bool {
    assert!(q.free_vars().is_empty(), "solve requires a closed QBF");
    let n = q.max_var().map_or(0, |m| m as usize + 1);
    let mut env = vec![false; n];
    fn go(q: &Qbf, env: &mut Vec<bool>) -> bool {
        match q {
            Qbf::Var(v) => env[*v as usize],
            Qbf::Not(g) => !go(g, env),
            Qbf::And(gs) => gs.iter().all(|g| go(g, env)),
            Qbf::Or(gs) => gs.iter().any(|g| go(g, env)),
            Qbf::Exists(v, g) => {
                let old = env[*v as usize];
                let mut found = false;
                for b in [false, true] {
                    env[*v as usize] = b;
                    if go(g, env) {
                        found = true;
                        break;
                    }
                }
                env[*v as usize] = old;
                found
            }
            Qbf::Forall(v, g) => {
                let old = env[*v as usize];
                let mut all = true;
                for b in [false, true] {
                    env[*v as usize] = b;
                    if !go(g, env) {
                        all = false;
                        break;
                    }
                }
                env[*v as usize] = old;
                all
            }
        }
    }
    go(q, &mut env)
}

/// The reduction QBF → FO model checking: returns a structure `B` and a
/// sentence `φ*` such that the (closed) QBF is true iff `B ⊨ φ*`.
///
/// `B` is the two-element structure `({0, 1}, T = {1})`; propositional
/// variable `pᵢ` becomes FO variable `xᵢ` and the atom `pᵢ` becomes
/// `T(xᵢ)`.
///
/// # Panics
/// Panics if the QBF has free variables (close it first).
pub fn to_model_checking(q: &Qbf) -> (Structure, Formula) {
    assert!(q.free_vars().is_empty(), "reduction requires a closed QBF");
    let sig = Signature::builder().relation("T", 1).finish_arc();
    let t = sig.relation("T").unwrap();
    let mut b = StructureBuilder::new(sig, 2);
    b.add(t, &[1]).unwrap();
    let structure = b.build().unwrap();

    fn tr(q: &Qbf, t: fmt_structures::RelId) -> Formula {
        match q {
            Qbf::Var(v) => Formula::atom(t, &[Var(*v)]),
            Qbf::Not(g) => tr(g, t).not(),
            Qbf::And(gs) => Formula::big_and(gs.iter().map(|g| tr(g, t)).collect::<Vec<_>>()),
            Qbf::Or(gs) => Formula::big_or(gs.iter().map(|g| tr(g, t)).collect::<Vec<_>>()),
            Qbf::Exists(v, g) => Formula::exists(Var(*v), tr(g, t)),
            Qbf::Forall(v, g) => Formula::forall(Var(*v), tr(g, t)),
        }
    }
    let formula = tr(q, t);
    debug_assert!(formula.is_sentence());
    (structure, formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Qbf {
        Qbf::Var(i)
    }

    #[test]
    fn lecture_examples() {
        // ∃p∃q (p ∧ q) is satisfiable.
        let f = Qbf::Exists(
            0,
            Box::new(Qbf::Exists(1, Box::new(Qbf::And(vec![v(0), v(1)])))),
        );
        assert!(solve(&f));
        // ∃p (p ∧ ¬p) is not.
        let g = Qbf::Exists(0, Box::new(Qbf::And(vec![v(0), v(0).not()])));
        assert!(!solve(&g));
    }

    #[test]
    fn alternation() {
        // ∀p∃q (p ↔ q) encoded as (p∧q) ∨ (¬p∧¬q): true.
        let iff = Qbf::Or(vec![
            Qbf::And(vec![v(0), v(1)]),
            Qbf::And(vec![v(0).not(), v(1).not()]),
        ]);
        let f = Qbf::Forall(0, Box::new(Qbf::Exists(1, Box::new(iff.clone()))));
        assert!(solve(&f));
        // ∃q∀p (p ↔ q): false.
        let g = Qbf::Exists(1, Box::new(Qbf::Forall(0, Box::new(iff))));
        assert!(!solve(&g));
    }

    #[test]
    fn close_existentially() {
        let f = Qbf::And(vec![v(0), v(1).not()]);
        assert_eq!(f.free_vars(), vec![0, 1]);
        let closed = f.close_existentially();
        assert!(closed.free_vars().is_empty());
        assert!(solve(&closed));
    }

    #[test]
    fn reduction_agrees_with_solver() {
        let cases = vec![
            Qbf::Exists(0, Box::new(v(0))),
            Qbf::Forall(0, Box::new(v(0))),
            Qbf::Forall(0, Box::new(Qbf::Or(vec![v(0), v(0).not()]))),
            Qbf::Exists(
                0,
                Box::new(Qbf::Forall(1, Box::new(Qbf::Or(vec![v(0), v(1)])))),
            ),
            Qbf::Forall(
                0,
                Box::new(Qbf::Exists(
                    1,
                    Box::new(Qbf::And(vec![
                        Qbf::Or(vec![v(0), v(1)]),
                        Qbf::Or(vec![v(0).not(), v(1).not()]),
                    ])),
                )),
            ),
        ];
        for q in cases {
            let (s, f) = to_model_checking(&q);
            assert_eq!(
                solve(&q),
                crate::naive::check_sentence(&s, &f),
                "reduction mismatch for {q:?}"
            );
        }
    }

    #[test]
    fn random_qbfs_agree() {
        // Deterministic pseudo-random QBF generator (tiny LCG).
        fn gen(state: &mut u64, depth: u32, next_var: u32) -> Qbf {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (*state >> 33) % 6;
            if depth == 0 || next_var >= 4 {
                return v((*state >> 17) as u32 % next_var.max(1));
            }
            match r {
                0 => gen(state, depth - 1, next_var).not(),
                1 => Qbf::And(vec![
                    gen(state, depth - 1, next_var),
                    gen(state, depth - 1, next_var),
                ]),
                2 => Qbf::Or(vec![
                    gen(state, depth - 1, next_var),
                    gen(state, depth - 1, next_var),
                ]),
                3 => Qbf::Exists(next_var, Box::new(gen(state, depth - 1, next_var + 1))),
                4 => Qbf::Forall(next_var, Box::new(gen(state, depth - 1, next_var + 1))),
                _ => v((*state >> 17) as u32 % next_var.max(1)),
            }
        }
        for seed in 0..30u64 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let q = Qbf::Exists(0, Box::new(gen(&mut state, 4, 1))).close_existentially();
            let (s, f) = to_model_checking(&q);
            assert_eq!(
                solve(&q),
                crate::naive::check_sentence(&s, &f),
                "seed {seed}"
            );
        }
    }
}
