//! `fmtk` — the finite model theory toolbox, on the command line.
//!
//! ```text
//! fmtk check  <structure> "<sentence>"        A ⊨ φ?
//! fmtk eval   <structure> "<query φ(x̄)>"     answer set of an open query
//! fmtk game   <A> <B> [--rounds N]           EF game rank and optimal trace
//! fmtk mu     "<sentence>" [--rel R:k ...]   μ(φ) via the 0-1 law
//! fmtk census <structure> [--radius r]       neighborhood-type census
//! fmtk datalog <structure> <program>         run a Datalog program
//! fmtk lint   [FILE|--expr φ|--program P]    static analysis (fmt-lint)
//! fmtk conform [--seed N] [--cases K]        differential-test the engines
//! fmtk sample                                 print an example structure file
//! ```
//!
//! Structures use the line format of `fmt_structures::parse`
//! (`size: 5`, `E(0,1)`, `c = 3`); `-` reads from stdin. The default
//! signature for `mu` and `lint` is the graph vocabulary `E/2`; add
//! relations with `--rel NAME:ARITY`. Parse errors are rendered with a
//! caret under the offending byte range.

use fmt_core::eval::{naive, relalg};
use fmt_core::games::play::optimal_play;
use fmt_core::games::solver::try_rank;
use fmt_core::lint::{self, LintConfig};
use fmt_core::locality::{TypeCensus, TypeRegistry};
use fmt_core::logic::{parser as fo_parser, Query, QueryError};
use fmt_core::queries::datalog::{EvalError, ParsedProgram, Program};
use fmt_core::queries::magic::{self, Goal, MagicError};
use fmt_core::structures::budget::{Budget, Exhausted};
use fmt_core::structures::{parse as sparse, Diagnostic, Severity, Signature, Structure};
use fmt_core::zeroone;
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

/// A failed `fmtk` invocation, classified for the exit-code table:
///
/// | code | meaning                                            |
/// |------|----------------------------------------------------|
/// | 0    | success                                            |
/// | 1    | usage, parse, I/O, or lint failure                 |
/// | 2    | conformance failure (hunt disagreement or a replay |
/// |      | that still reproduces)                             |
/// | 3    | budget exhausted (`--fuel` / `--timeout-ms`)       |
#[derive(Debug)]
enum CliFailure {
    /// Generic error: exit code 1.
    Error(String),
    /// Conformance failure: exit code 2.
    Conform(String),
    /// Budget exhaustion: exit code 3.
    Exhausted(String),
}

impl From<String> for CliFailure {
    fn from(msg: String) -> CliFailure {
        CliFailure::Error(msg)
    }
}

/// Maps an engine's [`Exhausted`] error onto exit code 3.
fn exhausted(e: Exhausted) -> CliFailure {
    CliFailure::Exhausted(e.to_string())
}

/// Renders a static evaluation error (unstratifiable program, unsafe
/// negation) as the caret diagnostic `fmtk lint` emits for the same
/// defect — D006/D007 with the span of the offending negated atom —
/// and maps budget exhaustion onto exit code 3.
fn render_eval_error(e: EvalError, parsed: &ParsedProgram, src: &str, origin: &str) -> CliFailure {
    let spanned = |code: &str, msg: String, rule: usize, atom: usize| {
        CliFailure::Error(
            Diagnostic::error(code, msg)
                .with_span(parsed.spans[rule].body[atom].span)
                .render(src, origin)
                .trim_end()
                .to_owned(),
        )
    };
    match e {
        EvalError::Exhausted(ex) => exhausted(ex),
        EvalError::Unstratifiable {
            rule,
            atom,
            ref pred,
            ref cycle,
        } => spanned(
            "D006",
            format!(
                "program is not stratifiable: {pred} is negated inside the recursive component \
                 {{{}}}",
                cycle.join(", ")
            ),
            rule,
            atom,
        ),
        EvalError::UnsafeNegation { rule, atom, .. } => spanned("D007", e.to_string(), rule, atom),
    }
}

type CliResult = Result<String, CliFailure>;

fn usage() -> String {
    "usage:\n  \
     fmtk check  <structure> \"<sentence>\"\n  \
     fmtk eval   <structure> \"<query>\"\n  \
     fmtk game   <A> <B> [--rounds N]\n  \
     fmtk mu     \"<sentence>\" [--rel NAME:ARITY ...]\n  \
     fmtk census <structure> [--radius R]\n  \
     fmtk datalog <structure> <program-file> [--engine scan|indexed] [--threads N] [--explain]\n          \
     [--query \"GOAL?\"]   goal-directed (magic-sets) evaluation; the program file may\n          \
     end in a goal clause `tc(\"a\", y)?` instead\n          \
     [--incremental --updates FILE]   maintain the fixpoint under +E(u,v) / -E(u,v) / poll updates\n  \
     fmtk lint   [FILE | --expr \"<formula>\" | --program \"<rules>\"] [--format text|json]\n          \
     [--deny CODE|warnings ...] [--rel NAME:ARITY ...] [--sentence] [--rank-budget N] [--goal PRED]\n  \
     fmtk lint   --explain CODE   print the long-form description of a lint code\n  \
     fmtk conform [--seed N] [--cases K] [--oracle NAME] [--corpus DIR] [--replay FILE]\n  \
     fmtk sample\n\
     global flags:\n  \
     --stats [text|json]   print engine counters after the command\n  \
     --metrics-text        print counters in Prometheus exposition format\n  \
     --trace FILE          record a structured trace of the command\n  \
     --trace-format chrome|folded   trace file format (default chrome)\n\
     (structure files use the text format; '-' reads stdin;\n \
     lint FILEs: .dl = Datalog program, .case = conform repro case, else formula)"
        .to_owned()
}

/// Renders an FO parse error as a caret diagnostic against its source.
fn render_fo_error(src: &str, origin: &str, e: &fo_parser::LogicParseError) -> String {
    let code = match e.kind {
        fo_parser::LogicParseErrorKind::Syntax => "F000",
        fo_parser::LogicParseErrorKind::UnknownRelation
        | fo_parser::LogicParseErrorKind::ArityMismatch => "F004",
    };
    Diagnostic::error(code, e.message.clone())
        .with_span(e.span)
        .render(src, origin)
        .trim_end()
        .to_owned()
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_structure(path: &str) -> Result<Structure, String> {
    let text = read_input(path)?;
    sparse::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Extracts `name VALUE` from `args`. `Ok(None)` when absent; an error
/// when the flag is present but its value is missing.
fn flag_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{name} requires a value\n{}", usage()));
    }
    let v = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(v))
}

/// Rejects any leftover `--flag` a subcommand did not consume, so typos
/// like `--stat` fail loudly instead of being silently ignored.
fn reject_unknown_flags(args: &[String]) -> Result<(), String> {
    if let Some(f) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unrecognized flag {f}\n{}", usage()));
    }
    Ok(())
}

fn cmd_check(args: &[String], budget: &Budget) -> CliResult {
    reject_unknown_flags(args)?;
    let [spath, sentence] = args else {
        return Err(usage().into());
    };
    let s = load_structure(spath)?;
    let f = fo_parser::parse_formula(s.signature(), sentence)
        .map_err(|e| render_fo_error(sentence, "<expr>", &e))?;
    if !f.is_sentence() {
        return Err(CliFailure::Error(
            "sentence required (use `eval` for open queries)".into(),
        ));
    }
    let v = naive::check_sentence_budgeted(&s, &f, budget).map_err(exhausted)?;
    Ok((if v { "true" } else { "false" }).to_string())
}

fn cmd_eval(args: &[String], budget: &Budget) -> CliResult {
    reject_unknown_flags(args)?;
    let [spath, query] = args else {
        return Err(usage().into());
    };
    let s = load_structure(spath)?;
    let q = Query::parse(s.signature(), query).map_err(|e| match e {
        QueryError::Parse(pe) => render_fo_error(query, "<expr>", &pe),
        other => other.to_string(),
    })?;
    let answers = relalg::answers_budgeted(&s, &q, budget).map_err(exhausted)?;
    let mut out = format!("arity {}, {} answers\n", q.arity(), answers.len());
    for row in answers {
        let cells: Vec<String> = row.iter().map(u32::to_string).collect();
        out.push_str(&format!("({})\n", cells.join(", ")));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_game(mut args: Vec<String>, budget: &Budget) -> CliResult {
    let rounds: u32 = flag_value(&mut args, "--rounds")?
        .map(|v| v.parse().map_err(|_| "invalid --rounds".to_owned()))
        .transpose()?
        .unwrap_or(4);
    reject_unknown_flags(&args)?;
    let [apath, bpath] = args.as_slice() else {
        return Err(usage().into());
    };
    let a = load_structure(apath)?;
    let b = load_structure(bpath)?;
    if a.signature() != b.signature() {
        return Err(CliFailure::Error(
            "structures have different signatures".into(),
        ));
    }
    let r = try_rank(&a, &b, rounds, budget).map_err(exhausted)?;
    let mut out = format!(
        "rank(A, B) capped at {rounds}: {r} — duplicator {} the {rounds}-round game\n",
        if r >= rounds { "wins" } else { "loses" }
    );
    let trace = optimal_play(&a, &b, r + 1);
    out.push_str(&format!(
        "optimal {}-round game ({}):\n",
        r + 1,
        if trace.duplicator_survived {
            "duplicator survives"
        } else {
            "spoiler wins"
        }
    ));
    for (i, m) in trace.rounds.iter().enumerate() {
        out.push_str(&format!(
            "  round {}: spoiler plays {} in {:?}; duplicator answers {}\n",
            i + 1,
            m.spoiler,
            m.side,
            m.duplicator
        ));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_mu(mut args: Vec<String>) -> CliResult {
    let sig = signature_from_rels(&mut args)?;
    reject_unknown_flags(&args)?;
    let [sentence] = args.as_slice() else {
        return Err(usage().into());
    };
    let f = fo_parser::parse_formula(&sig, sentence)
        .map_err(|e| render_fo_error(sentence, "<expr>", &e))?;
    if !f.is_sentence() {
        return Err(CliFailure::Error("mu requires a sentence".into()));
    }
    let mu = zeroone::decide_mu(&sig, &f);
    Ok(format!("mu = {}", u8::from(mu)))
}

fn cmd_census(mut args: Vec<String>) -> CliResult {
    let radius: u32 = flag_value(&mut args, "--radius")?
        .map(|v| v.parse().map_err(|_| "invalid --radius".to_owned()))
        .transpose()?
        .unwrap_or(1);
    reject_unknown_flags(&args)?;
    let [spath] = args.as_slice() else {
        return Err(usage().into());
    };
    let s = load_structure(spath)?;
    let mut reg = TypeRegistry::new();
    let census = TypeCensus::compute(&s, radius, &mut reg);
    let mut rows: Vec<(usize, u32, usize)> = census
        .iter()
        .map(|(t, c)| (c, reg.representative(t).size(), t.0 as usize))
        .collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.0));
    let mut out = format!(
        "{} radius-{radius} neighborhood types over {} elements\n",
        census.num_types(),
        census.total()
    );
    out.push_str("count  ball-size  type-id\n");
    for (c, sz, id) in rows {
        out.push_str(&format!("{c:<6} {sz:<10} {id}\n"));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_datalog(args: &[String], budget: &Budget) -> CliResult {
    let mut args = args.to_vec();
    let threads: usize = flag_value(&mut args, "--threads")?
        .map(|v| v.parse().map_err(|_| format!("bad thread count {v:?}")))
        .transpose()?
        .unwrap_or(0);
    let engine = flag_value(&mut args, "--engine")?.unwrap_or_else(|| "indexed".to_owned());
    let updates = flag_value(&mut args, "--updates")?;
    let query_flag = flag_value(&mut args, "--query")?;
    let incremental = if let Some(pos) = args.iter().position(|a| a == "--incremental") {
        args.remove(pos);
        true
    } else {
        false
    };
    let explain = if let Some(pos) = args.iter().position(|a| a == "--explain") {
        args.remove(pos);
        true
    } else {
        false
    };
    reject_unknown_flags(&args)?;
    let [spath, ppath] = &args[..] else {
        return Err(usage().into());
    };
    let s = load_structure(spath)?;
    let src = read_input(ppath)?;
    let render_d000 = |e: fmt_core::queries::datalog::DatalogParseError| {
        Diagnostic::error("D000", e.message)
            .with_span(e.span)
            .render(&src, ppath)
            .trim_end()
            .to_owned()
    };
    // A program file may end in a query goal clause `tc("a", y)?`; the
    // rule prefix is a byte-prefix of `src`, so all spans still render
    // against the original file.
    let split = magic::split_query(&src).map_err(render_d000)?;
    let body = split.as_ref().map_or(src.as_str(), |(len, _)| &src[..*len]);
    let parsed = Program::parse_spanned(s.signature(), body).map_err(render_d000)?;
    let prog = &parsed.program;
    if incremental || updates.is_some() {
        if !incremental {
            return Err(CliFailure::Error("--updates requires --incremental".into()));
        }
        if explain {
            return Err(CliFailure::Error(
                "--explain is not supported with --incremental".into(),
            ));
        }
        // The incremental runtime maintains the *full* fixpoint; a
        // query goal would be silently ignored, so reject it loudly.
        if let Some((_, goal)) = &split {
            return Err(CliFailure::Error(
                Diagnostic::error(
                    "I002",
                    format!("the incremental runtime does not support query goals ({goal})"),
                )
                .with_span(goal.span)
                .with_note(
                    "goal-directed (magic-sets) evaluation is batch-only: drop the trailing \
                     goal clause, or run `fmtk datalog --query` without --incremental",
                )
                .render(&src, ppath)
                .trim_end()
                .to_owned(),
            ));
        }
        if query_flag.is_some() {
            return Err(CliFailure::Error(
                "--query is not supported with --incremental (goal-directed evaluation is \
                 batch-only)"
                    .into(),
            ));
        }
        let upath = updates.ok_or_else(|| "--incremental requires --updates FILE".to_owned())?;
        let usrc = read_input(&upath)?;
        return run_incremental(&s, &parsed, &src, ppath, &usrc, &upath, threads, budget);
    }
    // Resolve the goal: embedded clause or --query flag, not both. The
    // (source, origin) pair is whatever text the goal's spans index.
    let goal: Option<(Goal, String, String)> = match (query_flag, split) {
        (Some(_), Some(_)) => {
            return Err(CliFailure::Error(
                "the program ends in a query goal and --query was also given; use one".into(),
            ));
        }
        (Some(q), None) => {
            let g = magic::parse_goal(&q).map_err(|e| {
                Diagnostic::error("D000", e.message)
                    .with_span(e.span)
                    .render(&q, "<query>")
                    .trim_end()
                    .to_owned()
            })?;
            Some((g, q, "<query>".to_owned()))
        }
        (None, Some((_, g))) => Some((g, src.clone(), ppath.to_string())),
        (None, None) => None,
    };
    if explain && goal.is_some() {
        return Err(CliFailure::Error(
            "--explain is not supported with a query goal (the profile spans index the \
             original rules, not the rewritten ones)"
                .into(),
        ));
    }
    if let Some((goal, gsrc, gorigin)) = goal {
        return run_query(
            &s, prog, &parsed, &src, ppath, &goal, &gsrc, &gorigin, &engine, threads, budget,
        );
    }
    // --explain reads span fields back out of the trace journal. A live
    // --trace session is reused (and peeked, not drained, so the trace
    // file still gets the events); otherwise a private one is opened.
    let tracing_was_on = fmt_core::obs::trace::enabled();
    if explain && !tracing_was_on {
        fmt_core::obs::trace::start();
    }
    let out = match engine.as_str() {
        "indexed" => prog.try_eval_seminaive_with(&s, threads, budget),
        "scan" => prog.try_eval_seminaive_scan(&s, budget),
        other => {
            if explain && !tracing_was_on {
                fmt_core::obs::trace::stop();
            }
            return Err(CliFailure::Error(format!(
                "unknown engine {other:?} (use scan|indexed)"
            )));
        }
    };
    let explain_trace = if explain {
        let t = fmt_core::obs::trace::peek();
        if !tracing_was_on {
            fmt_core::obs::trace::stop();
        }
        Some(t)
    } else {
        None
    };
    let out = out.map_err(|e| render_eval_error(e, &parsed, &src, ppath))?;
    let mut text = String::new();
    for i in 0..prog.num_idbs() {
        let (name, arity) = prog.idb_info(i);
        let mut tuples: Vec<Vec<u32>> = out.relation(i).iter().collect();
        tuples.sort();
        text.push_str(&format!("{name}/{arity}: {} tuples\n", tuples.len()));
        for t in tuples {
            let cells: Vec<String> = t.iter().map(u32::to_string).collect();
            text.push_str(&format!("  {name}({})\n", cells.join(", ")));
        }
    }
    text.push_str(&format!(
        "({} iterations, {} derivations)",
        out.iterations, out.derivations
    ));
    if let Some(trace) = explain_trace {
        text.push('\n');
        text.push_str(&explain_table(&trace, &parsed, &src));
    }
    Ok(text)
}

/// Goal-directed (magic-sets) evaluation: rewrites the program for the
/// goal, evaluates the rewritten program on the requested engine, and
/// prints its extents and counters followed by the goal's answer rows.
/// With an all-free goal the rewrite is the identity, so everything up
/// to the `query …` line is byte-identical to a goal-less run.
#[allow(clippy::too_many_arguments)]
fn run_query(
    s: &Structure,
    prog: &Program,
    parsed: &ParsedProgram,
    src: &str,
    ppath: &str,
    goal: &Goal,
    gsrc: &str,
    gorigin: &str,
    engine: &str,
    threads: usize,
    budget: &Budget,
) -> CliResult {
    let mq = magic::rewrite(prog, goal).map_err(|e| {
        match e {
        MagicError::Original(oe) => render_eval_error(oe, parsed, src, ppath),
        MagicError::Unstratifiable { .. } => CliFailure::Error(
            Diagnostic::error("D006", e.to_string())
                .with_span(goal.span)
                .with_note(
                    "the original program stratifies; it is the goal's demand rules that close \
                     the negative cycle — evaluate without the goal (full materialization)",
                )
                .render(gsrc, gorigin)
                .trim_end()
                .to_owned(),
        ),
        // The D010 resolution family carries a goal span.
        other => CliFailure::Error(
            Diagnostic::error("D010", other.to_string())
                .with_span(other.goal_span().expect("resolution errors have goal spans"))
                .render(gsrc, gorigin)
                .trim_end()
                .to_owned(),
        ),
    }
    })?;
    let es = mq.prepare(s);
    let rprog = &mq.program;
    let out = match engine {
        "indexed" => rprog.try_eval_seminaive_with(&es, threads, budget),
        "scan" => rprog.try_eval_seminaive_scan(&es, budget),
        other => {
            return Err(CliFailure::Error(format!(
                "unknown engine {other:?} (use scan|indexed)"
            )))
        }
    };
    // `rewrite` already stratification-checked both programs, so the
    // only runtime failure left is budget exhaustion.
    let out = out.map_err(|e| match e {
        EvalError::Exhausted(ex) => exhausted(ex),
        other => CliFailure::Error(other.to_string()),
    })?;
    let mut text = String::new();
    for i in 0..rprog.num_idbs() {
        let (name, arity) = rprog.idb_info(i);
        let mut tuples: Vec<Vec<u32>> = out.relation(i).iter().collect();
        tuples.sort();
        text.push_str(&format!("{name}/{arity}: {} tuples\n", tuples.len()));
        for t in tuples {
            let cells: Vec<String> = t.iter().map(u32::to_string).collect();
            text.push_str(&format!("  {name}({})\n", cells.join(", ")));
        }
    }
    text.push_str(&format!(
        "({} iterations, {} derivations)\n",
        out.iterations, out.derivations
    ));
    let answers = mq.answers(s, &out);
    text.push_str(&format!("query {goal}: {} answers\n", answers.len()));
    for row in answers {
        let cells: Vec<String> = row.iter().map(u32::to_string).collect();
        text.push_str(&format!("  {}({})\n", goal.pred, cells.join(", ")));
    }
    Ok(text.trim_end().to_owned())
}

/// Drives a [`fmt_core::queries::incremental::DatalogRuntime`] from an
/// updates file: whitespace-separated tokens `+E(0,1)` (insert),
/// `-E(0,1)` (retract), and `poll`, with `#` comments to end of line.
/// The runtime is seeded from the structure and polled once up front;
/// a trailing poll is implied when updates are left pending. Prints a
/// maintenance summary per poll and the final IDB extents.
#[allow(clippy::too_many_arguments)]
fn run_incremental(
    s: &Structure,
    parsed: &ParsedProgram,
    src: &str,
    ppath: &str,
    usrc: &str,
    upath: &str,
    threads: usize,
    budget: &Budget,
) -> CliResult {
    use fmt_core::queries::incremental::DatalogRuntime;
    let prog = &parsed.program;
    // The runtime is stratification-free (DRed under negation is out
    // of scope); reject negated programs up front with the span of the
    // first negated atom rather than panicking mid-maintenance.
    let mut rt = DatalogRuntime::from_structure(prog.clone(), s).map_err(|e| {
        CliFailure::Error(
            Diagnostic::error("I001", e.to_string())
                .with_span(parsed.spans[e.rule].body[e.atom].span)
                .with_note(
                    "batch evaluation (`fmtk datalog` without --incremental) supports stratified \
                     negation; the incremental runtime does not yet",
                )
                .render(src, ppath)
                .trim_end()
                .to_owned(),
        )
    })?;
    rt.set_threads(threads.max(1));
    let mut text = String::new();
    let mut polls = 0u64;
    let mut do_poll = |rt: &mut DatalogRuntime, text: &mut String| -> Result<(), CliFailure> {
        let stats = rt.try_poll(budget).map_err(exhausted)?;
        polls += 1;
        text.push_str(&format!(
            "poll {polls}: +{} -{} edb, {} derived, {} overdeleted, {} rederived, {} rounds{}\n",
            stats.inserted,
            stats.retracted,
            stats.derived,
            stats.overdeleted,
            stats.rederived,
            stats.rounds,
            if stats.rebuilt { " (rebuild)" } else { "" },
        ));
        Ok(())
    };
    do_poll(&mut rt, &mut text)?; // materialize the seed structure
    for (lineno, line) in usrc.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        for word in line.split_whitespace() {
            let fail = |msg: String| CliFailure::Error(format!("{upath}:{}: {msg}", lineno + 1));
            if word == "poll" {
                do_poll(&mut rt, &mut text)?;
                continue;
            }
            let (rel, t, insert) = parse_update_token(s, word).map_err(fail)?;
            if insert {
                rt.insert(rel, &t);
            } else {
                rt.retract(rel, &t);
            }
        }
    }
    if rt.pending_ops() > 0 {
        do_poll(&mut rt, &mut text)?;
    }
    for i in 0..prog.num_idbs() {
        let (name, arity) = prog.idb_info(i);
        let mut tuples: Vec<Vec<u32>> = rt.query(i).iter().collect();
        tuples.sort();
        text.push_str(&format!("{name}/{arity}: {} tuples\n", tuples.len()));
        for t in tuples {
            let cells: Vec<String> = t.iter().map(u32::to_string).collect();
            text.push_str(&format!("  {name}({})\n", cells.join(", ")));
        }
    }
    text.push_str(&format!("({polls} polls)"));
    Ok(text)
}

/// Parses one updates-file token `+E(0,1)` / `-E(0,1)` into its
/// relation, tuple, and insert/retract sense, validating against the
/// structure's signature and domain.
fn parse_update_token(
    s: &Structure,
    word: &str,
) -> Result<(fmt_core::structures::RelId, Vec<u32>, bool), String> {
    let bad = || format!("bad update {word:?} (want +REL(v, ...) | -REL(v, ...) | poll)");
    let (sign, rest) = word.split_at_checked(1).ok_or_else(bad)?;
    let insert = match sign {
        "+" => true,
        "-" => false,
        _ => return Err(bad()),
    };
    let (name, rest) = rest.split_once('(').ok_or_else(bad)?;
    let inner = rest.strip_suffix(')').ok_or_else(bad)?;
    let rel = s
        .signature()
        .relation(name)
        .ok_or_else(|| format!("unknown relation {name:?} in update {word:?}"))?;
    let mut t = Vec::new();
    if !inner.trim().is_empty() {
        for cell in inner.split(',') {
            let v: u32 = cell
                .trim()
                .parse()
                .map_err(|e| format!("bad vertex in update {word:?}: {e}"))?;
            t.push(v);
        }
    }
    if t.len() != s.signature().arity(rel) {
        return Err(format!(
            "update {word:?} has arity {}, relation {name} wants {}",
            t.len(),
            s.signature().arity(rel)
        ));
    }
    if let Some(&v) = t.iter().find(|&&v| v >= s.size()) {
        return Err(format!(
            "vertex {v} in update {word:?} is outside the domain 0..{}",
            s.size()
        ));
    }
    Ok((rel, t, insert))
}

/// Aggregates the `datalog.rule` spans of `trace` into a per-rule
/// profile table: derivations, index probes, rounds the rule fired in,
/// and total time spent applying it.
fn explain_table(
    trace: &fmt_core::obs::trace::Trace,
    parsed: &fmt_core::queries::datalog::ParsedProgram,
    src: &str,
) -> String {
    use std::collections::BTreeSet;
    let n = parsed.spans.len();
    let mut derived = vec![0u64; n];
    let mut probes = vec![0u64; n];
    let mut probe_allocs = vec![0u64; n];
    let mut arena_bytes = vec![0u64; n];
    let mut micros = vec![0u64; n];
    let mut rounds: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n];
    for ev in &trace.events {
        if ev.name != "datalog.rule" {
            continue;
        }
        let Some(ri) = ev
            .field("rule")
            .and_then(fmt_core::obs::trace::FieldValue::as_u64)
        else {
            continue;
        };
        let ri = ri as usize;
        if ri >= n {
            continue;
        }
        let field = |name: &str| {
            ev.field(name)
                .and_then(fmt_core::obs::trace::FieldValue::as_u64)
                .unwrap_or(0)
        };
        derived[ri] += field("derived");
        probes[ri] += field("probes");
        probe_allocs[ri] += field("probe_allocs");
        arena_bytes[ri] += field("arena_bytes");
        micros[ri] += ev.dur_us.unwrap_or(0);
        if let Some(r) = ev
            .field("round")
            .and_then(fmt_core::obs::trace::FieldValue::as_u64)
        {
            rounds[ri].insert(r);
        }
    }
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(n);
    for ri in 0..n {
        let label = parsed.spans[ri].span.slice(src).trim().to_owned();
        rows.push(vec![
            ri.to_string(),
            derived[ri].to_string(),
            probes[ri].to_string(),
            probe_allocs[ri].to_string(),
            arena_bytes[ri].to_string(),
            rounds[ri].len().to_string(),
            micros[ri].to_string(),
            label,
        ]);
    }
    let header = [
        "rule",
        "derived",
        "probes",
        "probe_allocs",
        "arena_bytes",
        "rounds",
        "total_us",
        "text",
    ];
    let mut out = String::from("per-rule profile (from datalog.rule spans):\n");
    out.push_str(fmt_core::report::table(&header, &rows).trim_end());
    out
}

/// Parses repeated `--rel NAME:ARITY` flags into a signature
/// (default: the graph vocabulary `E/2`).
fn signature_from_rels(args: &mut Vec<String>) -> Result<Arc<Signature>, String> {
    let mut rels: Vec<(String, usize)> = Vec::new();
    while let Some(spec) = flag_value(args, "--rel")? {
        let (name, arity) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad --rel {spec}, expected NAME:ARITY"))?;
        let arity: usize = arity.parse().map_err(|_| format!("bad arity in {spec}"))?;
        rels.push((name.to_owned(), arity));
    }
    if rels.is_empty() {
        return Ok(Signature::graph());
    }
    let mut b = Signature::builder();
    for (name, arity) in &rels {
        b = b.relation(name, *arity);
    }
    Ok(b.finish_arc())
}

fn cmd_lint(mut args: Vec<String>) -> CliResult {
    // `--explain CODE` is a standalone mode: print the registry's
    // long-form description (rustc-style) and exit.
    if let Some(code) = flag_value(&mut args, "--explain")? {
        reject_unknown_flags(&args)?;
        if !args.is_empty() {
            return Err(usage().into());
        }
        let code = code.to_uppercase();
        return match lint::explain(&code) {
            Some(text) => {
                let (_, summary) = lint::CODES
                    .iter()
                    .find(|(c, _)| *c == code)
                    .expect("every explained code is registered");
                Ok(format!("{code}: {summary}\n\n{text}"))
            }
            None => Err(format!(
                "unknown lint code {code:?}; registered codes: {}",
                lint::CODES
                    .iter()
                    .map(|(c, _)| *c)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
            .into()),
        };
    }
    let format = flag_value(&mut args, "--format")?.unwrap_or_else(|| "text".to_owned());
    if format != "text" && format != "json" {
        return Err(format!("unknown --format {format:?} (use text|json)").into());
    }
    let mut deny: Vec<String> = Vec::new();
    while let Some(code) = flag_value(&mut args, "--deny")? {
        deny.push(code);
    }
    let rank_budget: Option<u32> = flag_value(&mut args, "--rank-budget")?
        .map(|v| v.parse().map_err(|_| format!("bad --rank-budget {v:?}")))
        .transpose()?;
    let goal = flag_value(&mut args, "--goal")?;
    let sig = signature_from_rels(&mut args)?;
    let mut exprs: Vec<String> = Vec::new();
    while let Some(e) = flag_value(&mut args, "--expr")? {
        exprs.push(e);
    }
    let mut programs: Vec<String> = Vec::new();
    while let Some(p) = flag_value(&mut args, "--program")? {
        programs.push(p);
    }
    let expect_sentence = if let Some(pos) = args.iter().position(|a| a == "--sentence") {
        args.remove(pos);
        true
    } else {
        false
    };
    reject_unknown_flags(&args)?;
    let files = args;
    if exprs.is_empty() && programs.is_empty() && files.is_empty() {
        return Err(format!("lint needs a FILE, --expr, or --program\n{}", usage()).into());
    }
    let mut cfg = LintConfig {
        expect_sentence,
        goal,
        ..LintConfig::default()
    };
    if let Some(b) = rank_budget {
        cfg.rank_budget = b;
    }

    // One (origin, source, diagnostics) triple per linted input. A
    // `.case` file can contribute two: its formula and its program.
    let mut results: Vec<(String, String, Vec<Diagnostic>)> = Vec::new();
    for src in exprs {
        let diags = lint::lint_formula_src(&sig, &src, &cfg);
        results.push(("<expr>".to_owned(), src, diags));
    }
    for src in programs {
        let diags = lint::lint_program_src(&sig, &src, &cfg);
        results.push(("<program>".to_owned(), src, diags));
    }
    for path in files {
        if path.ends_with(".case") {
            let text = read_input(&path)?;
            let case =
                fmt_conform::ReproCase::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
            let csig = case.signature();
            if let Some(f) = &case.formula {
                let diags = lint::lint_formula_src(&csig, f, &cfg);
                results.push((format!("{path}#formula"), f.clone(), diags));
            }
            if let Some(p) = case.param("program") {
                let diags = lint::lint_program_src(&csig, p, &cfg);
                results.push((format!("{path}#program"), p.to_owned(), diags));
            }
        } else if path.ends_with(".dl") {
            let src = read_input(&path)?;
            let diags = lint::lint_program_src(&sig, &src, &cfg);
            results.push((path, src, diags));
        } else {
            let src = read_input(&path)?.trim_end().to_owned();
            let diags = lint::lint_formula_src(&sig, &src, &cfg);
            results.push((path, src, diags));
        }
    }

    // --deny escalates matching warnings (or all of them) to errors.
    let denied = |code: &str| deny.iter().any(|d| d == code || d == "warnings");
    let (mut n_warn, mut n_err) = (0usize, 0usize);
    for (_, _, diags) in &mut results {
        for d in diags.iter_mut() {
            if d.severity == Severity::Warning && denied(&d.code) {
                d.severity = Severity::Error;
            }
            match d.severity {
                Severity::Error => n_err += 1,
                Severity::Warning => n_warn += 1,
            }
        }
    }

    let out = if format == "json" {
        let all: Vec<Diagnostic> = results
            .iter()
            .flat_map(|(_, _, diags)| diags.iter().cloned())
            .collect();
        lint::diag::diags_to_json(&all)
    } else {
        let mut text = String::new();
        for (origin, src, diags) in &results {
            for d in diags {
                text.push_str(d.render(src, origin).trim_end());
                text.push_str("\n\n");
            }
        }
        let n_inputs = results.len();
        if n_warn + n_err == 0 {
            text.push_str(&format!("clean: {n_inputs} input(s), no diagnostics"));
        } else {
            text.push_str(&format!(
                "{} diagnostic(s) across {n_inputs} input(s): {n_err} error(s), {n_warn} warning(s)",
                n_warn + n_err
            ));
        }
        text.trim_end().to_owned()
    };
    if n_err > 0 {
        // Keep the report (including JSON) on stdout; only the verdict
        // goes to stderr with the failing exit code.
        println!("{out}");
        return Err(CliFailure::Error(format!(
            "lint failed with {n_err} error(s)"
        )));
    }
    Ok(out)
}

fn cmd_conform(mut args: Vec<String>, budget: &Budget) -> CliResult {
    if let Some(path) = flag_value(&mut args, "--replay")? {
        reject_unknown_flags(&args)?;
        if !args.is_empty() {
            return Err(usage().into());
        }
        let text = read_input(&path)?;
        // A malformed case file is an ordinary error (exit 1); a case
        // that parses but still reproduces its disagreement is a
        // conformance failure (exit 2).
        let case = fmt_conform::ReproCase::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
        return match fmt_conform::runner::replay_case(&case) {
            Ok(()) => Ok(format!("{path}: engines agree (case replays clean)")),
            Err(e) => Err(CliFailure::Conform(format!(
                "{path}: disagreement reproduces: {e}"
            ))),
        };
    }
    let seed: u64 = flag_value(&mut args, "--seed")?
        .map(|v| v.parse().map_err(|_| format!("bad seed {v:?}")))
        .transpose()?
        .unwrap_or(42);
    let cases: u64 = flag_value(&mut args, "--cases")?
        .map(|v| v.parse().map_err(|_| format!("bad case count {v:?}")))
        .transpose()?
        .unwrap_or(500);
    let oracle = flag_value(&mut args, "--oracle")?;
    let corpus = flag_value(&mut args, "--corpus")?;
    reject_unknown_flags(&args)?;
    if !args.is_empty() {
        return Err(usage().into());
    }
    let cfg = fmt_conform::RunConfig {
        seed,
        cases,
        oracle,
        corpus_dir: corpus.map(std::path::PathBuf::from),
        budget: budget.clone(),
    };
    let report = fmt_conform::run(&cfg).map_err(|e| match e {
        fmt_conform::runner::RunError::Budget(b) => exhausted(b),
        fmt_conform::runner::RunError::Other(msg) => CliFailure::Error(msg),
    })?;
    let mut out = format!("conform: seed {seed}, {} cases\n", report.cases_run);
    for (name, n) in &report.per_oracle {
        out.push_str(&format!("  {name}: {n} cases\n"));
    }
    if report.clean() {
        out.push_str("all oracles agree");
        return Ok(out.trim_end().to_owned());
    }
    out.push_str(&format!("{} DISAGREEMENT(S):\n", report.failures.len()));
    for f in &report.failures {
        out.push_str(&format!("  [{} case {}] {}\n", f.oracle, f.case, f.note));
    }
    for p in &report.written {
        out.push_str(&format!("  wrote {}\n", p.display()));
    }
    Err(CliFailure::Conform(out.trim_end().to_owned()))
}

fn cmd_sample() -> String {
    "# a directed 4-cycle with a chord\n\
     size: 4\n\
     E(0,1)\n\
     E(1,2)\n\
     E(2,3)\n\
     E(3,0)\n\
     E(0,2)\n"
        .to_owned()
}

/// How `--stats` output should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Text,
    Json,
}

/// Extracts the global `--stats [text|json]` flag from anywhere in the
/// argument list. The mode word is optional and defaults to `text`.
fn extract_stats(argv: &mut Vec<String>) -> StatsMode {
    let Some(pos) = argv.iter().position(|a| a == "--stats") else {
        return StatsMode::Off;
    };
    argv.remove(pos);
    match argv.get(pos).map(String::as_str) {
        Some("text") => {
            argv.remove(pos);
            StatsMode::Text
        }
        Some("json") => {
            argv.remove(pos);
            StatsMode::Json
        }
        _ => StatsMode::Text,
    }
}

/// Renders the instrumentation snapshot for `cmd`; `None` if nothing
/// was recorded.
fn render_stats(mode: StatsMode, cmd: &str) -> Option<String> {
    let snap = fmt_core::obs::snapshot();
    match mode {
        StatsMode::Off => None,
        StatsMode::Json => Some(format!("{{\"command\":\"{cmd}\",{}}}", snap.json_body())),
        StatsMode::Text => {
            if snap.is_empty() {
                return Some("(no engine counters recorded)".to_owned());
            }
            let t = fmt_core::report::table(&["metric", "value"], &snap.rows());
            Some(t.trim_end().to_owned())
        }
    }
}

/// The trace format selected by `--trace-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Folded,
}

/// Extracts the global `--trace FILE` and `--trace-format chrome|folded`
/// flags. `--trace-format` without `--trace` is an error.
fn extract_trace(argv: &mut Vec<String>) -> Result<Option<(String, TraceFormat)>, String> {
    let path = flag_value(argv, "--trace")?;
    let format = match flag_value(argv, "--trace-format")?.as_deref() {
        None | Some("chrome") => TraceFormat::Chrome,
        Some("folded") => TraceFormat::Folded,
        Some(other) => {
            return Err(format!(
                "unknown --trace-format {other:?} (use chrome|folded)"
            ))
        }
    };
    match path {
        Some(p) => Ok(Some((p, format))),
        None if format == TraceFormat::Folded => {
            Err("--trace-format requires --trace FILE".to_owned())
        }
        None => Ok(None),
    }
}

/// Extracts the global `--metrics-text` flag (Prometheus exposition of
/// every engine counter and histogram after the command).
fn extract_metrics_text(argv: &mut Vec<String>) -> bool {
    let Some(pos) = argv.iter().position(|a| a == "--metrics-text") else {
        return false;
    };
    argv.remove(pos);
    true
}

/// Extracts the global `--fuel N` and `--timeout-ms M` flags from
/// anywhere in the argument list and builds the command's [`Budget`]
/// (unlimited when neither flag is given).
fn extract_budget(argv: &mut Vec<String>) -> Result<Budget, String> {
    let fuel: Option<u64> = flag_value(argv, "--fuel")?
        .map(|v| v.parse().map_err(|_| format!("bad --fuel {v:?}")))
        .transpose()?;
    let timeout: Option<u64> = flag_value(argv, "--timeout-ms")?
        .map(|v| v.parse().map_err(|_| format!("bad --timeout-ms {v:?}")))
        .transpose()?;
    Ok(Budget::new(
        fuel,
        timeout.map(std::time::Duration::from_millis),
    ))
}

fn run() -> CliResult {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let stats = extract_stats(&mut argv);
    let metrics_text = extract_metrics_text(&mut argv);
    let trace_to = extract_trace(&mut argv)?;
    let budget = extract_budget(&mut argv)?;
    if argv.is_empty() {
        return Err(usage().into());
    }
    if stats != StatsMode::Off || metrics_text {
        fmt_core::obs::enable();
    }
    if trace_to.is_some() {
        fmt_core::obs::trace::start();
    }
    let cmd = argv.remove(0);
    let out = match cmd.as_str() {
        "check" => cmd_check(&argv, &budget),
        "eval" => cmd_eval(&argv, &budget),
        "game" => cmd_game(argv, &budget),
        "mu" => cmd_mu(argv),
        "census" => cmd_census(argv),
        "datalog" => cmd_datalog(&argv, &budget),
        "lint" => cmd_lint(argv),
        "conform" => cmd_conform(argv, &budget),
        "sample" => Ok(cmd_sample()),
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(CliFailure::Error(format!(
            "unknown command {other}\n{}",
            usage()
        ))),
    };
    // The trace is written even when the command failed: traces of
    // budget-exhausted or erroring runs are exactly the interesting ones.
    if let Some((path, format)) = trace_to {
        let trace = fmt_core::obs::trace::stop();
        let data = match format {
            TraceFormat::Chrome => trace.to_chrome_json(),
            TraceFormat::Folded => trace.to_folded(),
        };
        std::fs::write(&path, data).map_err(|e| format!("{path}: {e}"))?;
    }
    let mut out = out?;
    if let Some(stats_out) = render_stats(stats, &cmd) {
        out = format!("{out}\n{stats_out}");
    }
    if metrics_text {
        out = format!("{out}\n{}", fmt_core::obs::snapshot().to_prometheus());
    }
    Ok(out.trim_end().to_owned())
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(CliFailure::Error(e)) => {
            eprintln!("fmtk: {e}");
            ExitCode::from(1)
        }
        Err(CliFailure::Conform(e)) => {
            eprintln!("fmtk: {e}");
            ExitCode::from(2)
        }
        Err(CliFailure::Exhausted(e)) => {
            eprintln!("fmtk: {e}");
            ExitCode::from(3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(args: &[&str]) -> Result<String, String> {
        cmd_lint(args.iter().map(|s| (*s).to_owned()).collect()).map_err(|e| match e {
            CliFailure::Error(m) | CliFailure::Conform(m) | CliFailure::Exhausted(m) => m,
        })
    }

    #[test]
    fn lint_reports_with_carets() {
        let out = lint(&["--expr", "exists x. E(y, y)"]).unwrap();
        assert!(out.contains("warning[F001]"), "{out}");
        assert!(out.contains("exists x. E(y, y)"), "{out}");
        assert!(out.contains('^'), "{out}");
        assert!(out.contains("1 warning(s)"), "{out}");
    }

    #[test]
    fn lint_deny_escalates_to_failure() {
        let err = lint(&["--expr", "exists x. E(y, y)", "--deny", "warnings"]).unwrap_err();
        assert!(err.contains("1 error(s)"), "{err}");
        let err = lint(&["--expr", "exists x. E(y, y)", "--deny", "F001"]).unwrap_err();
        assert!(err.contains("1 error(s)"), "{err}");
        // Denying an unrelated code does not escalate.
        let out = lint(&["--expr", "exists x. E(y, y)", "--deny", "F002"]).unwrap();
        assert!(out.contains("1 warning(s)"), "{out}");
    }

    #[test]
    fn lint_json_round_trips() {
        let out = lint(&["--format", "json", "--expr", "exists x. E(y, y)"]).unwrap();
        let diags = fmt_core::structures::diag::diags_from_json(&out).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "F001");
        assert_eq!(
            diags[0].span.unwrap(),
            fmt_core::structures::Span::new(7, 8)
        );
    }

    #[test]
    fn lint_classifies_dl_files_by_extension() {
        let path = std::env::temp_dir().join("fmtk_lint_cli_test.dl");
        std::fs::write(&path, "p(x) :- e(x, x). p(y) :- e(y, y).").unwrap();
        let out = lint(&[path.to_str().unwrap()]).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("D004"), "{out}");
    }

    #[test]
    fn lint_flag_validation() {
        assert!(lint(&["--format", "yaml", "--expr", "true"]).is_err());
        assert!(lint(&[]).is_err());
        assert!(lint(&["--rank-budget", "lots", "--expr", "true"]).is_err());
    }

    #[test]
    fn lint_sentence_and_rel_flags() {
        let err = lint(&["--sentence", "--expr", "E(x, y)"]).unwrap_err();
        assert!(err.contains("1 error(s)"), "{err}");
        let out = lint(&["--rel", "R:1", "--expr", "forall x. R(x)"]).unwrap();
        assert!(out.contains("clean"), "{out}");
    }

    fn datalog(args: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        cmd_datalog(&argv, &Budget::unlimited()).map_err(|e| match e {
            CliFailure::Error(m) | CliFailure::Conform(m) | CliFailure::Exhausted(m) => m,
        })
    }

    /// Writes `name` under a fresh temp path and returns it as a String.
    fn temp_file(name: &str, contents: &str) -> String {
        let p = std::env::temp_dir().join(format!("fmtk-cli-{}-{name}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p.to_str().unwrap().to_owned()
    }

    const PATH4: &str = "size: 4\nE(0,1)\nE(1,2)\nE(2,3)\n";
    const TC: &str = "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z).";

    #[test]
    fn datalog_query_flag_prunes_and_answers() {
        let s = temp_file("q.structure", PATH4);
        let p = temp_file("q.dl", TC);
        let out = datalog(&[&s, &p, "--query", "tc(2, y)?"]).unwrap();
        assert!(out.contains("query tc(2, y)?: 1 answers"), "{out}");
        assert!(out.contains("  tc(2, 3)"), "{out}");
        // The rewritten program's extents are printed — adorned and
        // magic predicates included — and prune below the full closure.
        assert!(out.contains("magic_tc_bf/1"), "{out}");
        assert!(
            !out.contains("tc(0, 1)"),
            "pruned derivations leaked: {out}"
        );
        std::fs::remove_file(&s).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn datalog_embedded_goal_matches_flag_and_conflicts_are_rejected() {
        let s = temp_file("g.structure", PATH4);
        let p = temp_file("g.dl", &format!("{TC} tc(2, y)?"));
        let embedded = datalog(&[&s, &p]).unwrap();
        assert!(
            embedded.contains("query tc(2, y)?: 1 answers"),
            "{embedded}"
        );
        let err = datalog(&[&s, &p, "--query", "tc(2, y)?"]).unwrap_err();
        assert!(err.contains("use one"), "{err}");
        std::fs::remove_file(&s).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn datalog_query_transparency_for_all_free_goals() {
        let s = temp_file("t.structure", PATH4);
        let p = temp_file("t.dl", TC);
        let plain = datalog(&[&s, &p]).unwrap();
        let queried = datalog(&[&s, &p, "--query", "tc(x, y)?"]).unwrap();
        assert!(
            queried.starts_with(&plain),
            "all-free goal output is not a byte-extension:\n{plain}\n---\n{queried}"
        );
        assert!(queried.contains("query tc(x, y)?: 6 answers"), "{queried}");
        std::fs::remove_file(&s).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn datalog_bad_goals_render_d010_carets() {
        let s = temp_file("b.structure", PATH4);
        let p = temp_file("b.dl", TC);
        let err = datalog(&[&s, &p, "--query", "ghost(0, y)?"]).unwrap_err();
        assert!(err.contains("error[D010]"), "{err}");
        assert!(err.contains('^'), "{err}");
        std::fs::remove_file(&s).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn incremental_rejects_query_goals_with_i002() {
        let s = temp_file("i.structure", PATH4);
        let p = temp_file("i.dl", &format!("{TC} tc(0, y)?"));
        let u = temp_file("i.updates", "+E(3,0) poll\n");
        let err = datalog(&[&s, &p, "--incremental", "--updates", &u]).unwrap_err();
        assert!(err.contains("error[I002]"), "{err}");
        assert!(
            err.contains("--query"),
            "note must point at batch --query: {err}"
        );
        assert!(
            err.contains('^'),
            "diagnostic must carry the goal span: {err}"
        );
        // The --query flag combined with --incremental is a plain error.
        let p2 = temp_file("i2.dl", TC);
        let err = datalog(&[
            &s,
            &p2,
            "--incremental",
            "--updates",
            &u,
            "--query",
            "tc(0, y)?",
        ])
        .unwrap_err();
        assert!(
            err.contains("--query is not supported with --incremental"),
            "{err}"
        );
        for f in [&s, &p, &u, &p2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn parse_errors_render_carets() {
        let src = "E(x, y) & R(x)";
        let e = fo_parser::parse_formula_spanned(&Signature::graph(), src).unwrap_err();
        let r = render_fo_error(src, "<expr>", &e);
        assert!(r.contains("error[F004]"), "{r}");
        assert!(r.contains('^'), "{r}");
        assert!(r.contains("<expr>:1:11"), "{r}");
    }
}
