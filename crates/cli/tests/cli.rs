//! End-to-end tests of the `fmtk` binary: each subcommand run as a real
//! process on real files.

use std::io::Write;
use std::process::{Command, Stdio};

fn fmtk() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fmtk"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fmtk-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const CYCLE4: &str = "size: 4\nE(0,1)\nE(1,2)\nE(2,3)\nE(3,0)\n";

#[test]
fn check_sentence() {
    let p = write_temp("c4.st", CYCLE4);
    let out = fmtk()
        .args(["check", p.to_str().unwrap(), "forall x. exists y. E(x, y)"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "true");

    let out = fmtk()
        .args(["check", p.to_str().unwrap(), "exists x. E(x, x)"])
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "false");
}

#[test]
fn eval_query() {
    let p = write_temp("c4b.st", CYCLE4);
    let out = fmtk()
        .args(["eval", p.to_str().unwrap(), "exists z. E(x, z) & E(z, y)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("arity 2, 4 answers"), "{text}");
    assert!(text.contains("(0, 2)"), "{text}");
}

#[test]
fn game_between_sets() {
    let a = write_temp("s3.st", "size: 3\n");
    let b = write_temp("s4.st", "size: 4\n");
    let out = fmtk()
        .args([
            "game",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--rounds",
            "4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rank(A, B) capped at 4: 3"), "{text}");
    assert!(text.contains("spoiler wins"), "{text}");
}

#[test]
fn mu_decision() {
    let out = fmtk().args(["mu", "exists x. E(x, x)"]).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "mu = 1");
    let out = fmtk().args(["mu", "forall x. E(x, x)"]).output().unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "mu = 0");
    // Custom signature.
    let out = fmtk()
        .args(["mu", "exists x. P(x)", "--rel", "P:1"])
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "mu = 1");
}

#[test]
fn census_counts_types() {
    let p = write_temp(
        "path5.st",
        "size: 5\nE(0,1)\nE(1,0)\nE(1,2)\nE(2,1)\nE(2,3)\nE(3,2)\nE(3,4)\nE(4,3)\n",
    );
    let out = fmtk()
        .args(["census", p.to_str().unwrap(), "--radius", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Endpoint type (2 elements) + interior type (3 elements).
    assert!(
        text.contains("2 radius-1 neighborhood types over 5 elements"),
        "{text}"
    );
}

#[test]
fn datalog_tc() {
    let s = write_temp("p3.st", "size: 3\nE(0,1)\nE(1,2)\n");
    let prog = write_temp("tc.dl", "tc(x,y) :- e(x,y). tc(x,z) :- e(x,y), tc(y,z).");
    let out = fmtk()
        .args(["datalog", s.to_str().unwrap(), prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tc/2: 3 tuples"), "{text}");
    assert!(text.contains("tc(0, 2)"), "{text}");
}

#[test]
fn datalog_engine_and_threads_flags() {
    let s = write_temp("p4.st", "size: 4\nE(0,1)\nE(1,2)\nE(2,3)\n");
    let prog = write_temp("tc2.dl", "tc(x,y) :- e(x,y). tc(x,z) :- e(x,y), tc(y,z).");
    let mut outputs = Vec::new();
    for extra in [
        &["--engine", "scan"][..],
        &["--engine", "indexed"][..],
        &["--threads", "2"][..],
    ] {
        let out = fmtk()
            .args(["datalog", s.to_str().unwrap(), prog.to_str().unwrap()])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(String::from_utf8_lossy(&out.stdout).into_owned());
    }
    // Same program, same answers and counters, whatever the engine.
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    assert!(outputs[0].contains("tc/2: 6 tuples"), "{}", outputs[0]);

    let out = fmtk()
        .args([
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--engine",
            "quantum",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}

#[test]
fn datalog_incremental_maintains_under_updates() {
    let s = write_temp("incr-seed.st", "size: 4\nE(0,1)\n");
    let prog = write_temp(
        "incr-tc.dl",
        "tc(x,y) :- e(x,y). tc(x,z) :- e(x,y), tc(y,z).",
    );
    let upd = write_temp(
        "incr.upd",
        "+E(1,2) +E(2,3) poll\n# drop the middle edge\n-E(1,2)\npoll\n",
    );
    let out = fmtk()
        .args([
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--incremental",
            "--updates",
            upd.to_str().unwrap(),
            "--stats",
            "json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Poll 1 materializes the seed structure from scratch; the final
    // poll runs DRed: retracting E(1,2) kills the 4 closure pairs that
    // crossed it, leaving tc = {(0,1), (2,3)}.
    assert!(text.contains("poll 1: +1 -0 edb, 1 derived"), "{text}");
    assert!(text.contains("(rebuild)"), "{text}");
    assert!(
        text.contains("poll 3: +0 -1 edb, 0 derived, 4 overdeleted"),
        "{text}"
    );
    assert!(text.contains("tc/2: 2 tuples"), "{text}");
    assert!(text.contains("tc(0, 1)"), "{text}");
    assert!(text.contains("tc(2, 3)"), "{text}");
    assert!(text.contains("(3 polls)"), "{text}");
    let line = stats_json_line(&out.stdout);
    assert!(line.contains("\"queries.incr.polls\":3"), "{line}");
    assert!(line.contains("\"queries.incr.overdeleted\":4"), "{line}");
}

#[test]
fn datalog_incremental_flag_and_file_errors() {
    let s = write_temp("incr-err.st", "size: 3\nE(0,1)\n");
    let prog = write_temp("incr-err.dl", "tc(x,y) :- e(x,y).");
    // --updates without --incremental.
    let upd = write_temp("incr-err.upd", "poll\n");
    let out = fmtk()
        .args([
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--updates",
            upd.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --incremental"));
    // --incremental without --updates.
    let out = fmtk()
        .args([
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--incremental",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --updates"));
    // Malformed tokens are reported with file and line.
    for (bad, msg) in [
        ("+E(0,1) frobnicate\n", "bad update"),
        ("+Q(0,1)\n", "unknown relation"),
        ("+E(0)\n", "arity"),
        ("+E(0,9)\n", "outside the domain"),
    ] {
        let upd = write_temp("incr-bad.upd", bad);
        let out = fmtk()
            .args([
                "datalog",
                s.to_str().unwrap(),
                prog.to_str().unwrap(),
                "--incremental",
                "--updates",
                upd.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "{bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(msg), "{bad:?}: {err}");
        assert!(err.contains("incr-bad.upd:1"), "{bad:?}: {err}");
    }
    // Budget exhaustion inside a poll is exit code 3, like batch mode.
    let upd = write_temp("incr-fuel.upd", "+E(1,2) poll\n");
    let out = fmtk()
        .args([
            "--fuel",
            "2",
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--incremental",
            "--updates",
            upd.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn stdin_structure() {
    let mut child = fmtk()
        .args(["check", "-", "exists x y. E(x, y)"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"size: 2\nE(0,1)\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "true");
}

#[test]
fn errors_are_reported() {
    // Unknown command.
    let out = fmtk().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Bad structure file.
    let p = write_temp("bad.st", "E(0,1)\n"); // missing size
    let out = fmtk()
        .args(["check", p.to_str().unwrap(), "true"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Open formula passed to check.
    let p2 = write_temp("ok.st", CYCLE4);
    let out = fmtk()
        .args(["check", p2.to_str().unwrap(), "E(x, y)"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("sentence required"));
}

/// Extracts the single-line JSON stats object from a command's stdout.
fn stats_json_line(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON stats line in {text:?}"))
        .to_owned();
    assert!(line.ends_with('}'), "{line}");
    assert!(!line.contains('\n'));
    line
}

#[test]
fn stats_json_game() {
    let p = write_temp("stats-c4.st", CYCLE4);
    let out = fmtk()
        .args([
            "game",
            p.to_str().unwrap(),
            p.to_str().unwrap(),
            "--stats",
            "json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let line = stats_json_line(&out.stdout);
    assert!(line.contains("\"command\":\"game\""), "{line}");
    assert!(
        line.contains("\"games.solver.positions_expanded\":"),
        "{line}"
    );
    assert!(
        !line.contains("\"games.solver.positions_expanded\":0"),
        "{line}"
    );
    assert!(line.contains("\"games.play.games\":1"), "{line}");
}

#[test]
fn stats_json_eval() {
    let p = write_temp("stats-c4e.st", CYCLE4);
    let out = fmtk()
        .args(["eval", p.to_str().unwrap(), "E(x, y)", "--stats", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let line = stats_json_line(&out.stdout);
    assert!(line.contains("\"command\":\"eval\""), "{line}");
    assert!(line.contains("\"eval.relalg.operators\":1"), "{line}");
    assert!(line.contains("\"eval.relalg.op_rows\":{"), "{line}");
}

#[test]
fn stats_json_datalog() {
    let s = write_temp("stats-p3.st", "size: 3\nE(0,1)\nE(1,2)\n");
    let prog = write_temp(
        "stats-tc.dl",
        "tc(x,y) :- e(x,y). tc(x,z) :- e(x,y), tc(y,z).",
    );
    let out = fmtk()
        .args([
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--stats",
            "json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let line = stats_json_line(&out.stdout);
    assert!(line.contains("\"command\":\"datalog\""), "{line}");
    assert!(line.contains("\"queries.datalog.rounds\":"), "{line}");
    assert!(line.contains("\"queries.datalog.delta_facts\":"), "{line}");
}

#[test]
fn stats_json_census() {
    let p = write_temp("stats-c4c.st", CYCLE4);
    let out = fmtk()
        .args(["census", p.to_str().unwrap(), "--stats", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let line = stats_json_line(&out.stdout);
    assert!(line.contains("\"command\":\"census\""), "{line}");
    assert!(line.contains("\"locality.balls_expanded\":4"), "{line}");
    assert!(line.contains("\"locality.censuses\":1"), "{line}");
}

#[test]
fn stats_text_mode() {
    let p = write_temp("stats-c4t.st", CYCLE4);
    // Bare `--stats` (no mode word) defaults to the text table; the flag
    // is position-independent.
    let out = fmtk()
        .args([
            "--stats",
            "check",
            p.to_str().unwrap(),
            "exists x y. E(x, y)",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metric"), "{text}");
    assert!(text.contains("eval.naive.quantifier_nodes"), "{text}");
}

#[test]
fn stats_off_by_default() {
    let p = write_temp("stats-c4o.st", CYCLE4);
    let out = fmtk()
        .args(["check", p.to_str().unwrap(), "exists x y. E(x, y)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("metric"), "{text}");
    assert!(!text.contains('{'), "{text}");
}

#[test]
fn unknown_flags_rejected() {
    let p = write_temp("stats-c4u.st", CYCLE4);
    for args in [
        vec!["game", "x", "y", "--stat"],
        vec!["check", "x", "t", "--verbose"],
        vec!["census", "x", "--radios", "2"],
    ] {
        let out = fmtk().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unrecognized flag"), "{args:?}: {err}");
    }
    // A flag with a missing value is also an error, not a silent skip.
    let out = fmtk()
        .args(["game", p.to_str().unwrap(), p.to_str().unwrap(), "--rounds"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rounds requires a value"));
}

#[test]
fn sample_roundtrips() {
    let out = fmtk().args(["sample"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let p = write_temp("sample.st", &text);
    let out2 = fmtk()
        .args(["check", p.to_str().unwrap(), "exists x y. E(x, y)"])
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out2.stdout).trim(), "true");
}

#[test]
fn conform_clean_hunt() {
    let out = fmtk()
        .args(["conform", "--seed", "42", "--cases", "60"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("all oracles agree"), "{text}");
    assert!(text.contains("games-orders"), "{text}");
}

#[test]
fn conform_replay_and_bad_oracle() {
    // A hand-minimal games-orders case: L_3 vs L_4 at n = 2 (both at
    // the 2^2 - 1 threshold, so the engines agree and replay is clean).
    let case = write_temp(
        "orders.case",
        "oracle: games-orders\nseed: 0\ncase: 0\nnote: t\nrel: </2\n\
         param: m = 3\nparam: k = 4\nparam: n = 2\n",
    );
    let out = fmtk()
        .args(["conform", "--replay", case.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("engines agree"));

    let out = fmtk()
        .args(["conform", "--oracle", "astrology", "--cases", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown oracle"));
}

/// A budget-fault case that replays clean on a correct build: every
/// engine either finishes or exhausts deterministically, and the
/// finishers agree. Setting [`fmt_conform::oracle::INJECT_PANIC_ENV`]
/// makes the budgeted runs panic, so the same case then *reproduces*.
const BUDGET_FAULT_CASE: &str = "oracle: budget-fault\nseed: 0\ncase: 0\nnote: t\nrel: E/2\n\
     param: kind = formula\nparam: fuel = 3\n\
     structure A:\nsize: 2\nE(0,1)\nend\nformula: exists x. E(x, x)\n";

#[test]
fn exit_code_0_on_success_and_1_on_errors() {
    let p = write_temp("exit-c4.st", CYCLE4);
    let out = fmtk()
        .args(["check", p.to_str().unwrap(), "exists x y. E(x, y)"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    // Generic failures — unknown flag, bad budget value, malformed case
    // file — are all exit code 1, never 2 or 3.
    let out = fmtk()
        .args(["check", p.to_str().unwrap(), "true", "--verbose"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = fmtk()
        .args(["--fuel", "lots", "check", p.to_str().unwrap(), "true"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --fuel"));
    let bad = write_temp("exit-bad.case", "no such key: x\n");
    let out = fmtk()
        .args(["conform", "--replay", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn exit_code_2_when_replay_reproduces() {
    let case = write_temp("exit-bf.case", BUDGET_FAULT_CASE);
    // On a correct build the case replays clean.
    let out = fmtk()
        .args(["conform", "--replay", case.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // With the fault injected, the replay reproduces: exit code 2.
    let out = fmtk()
        .args(["conform", "--replay", case.to_str().unwrap()])
        .env(fmt_conform::oracle::INJECT_PANIC_ENV, "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("disagreement reproduces"), "{err}");
}

/// Same exit-code contract for the magic oracle: a well-formed case
/// replays clean (0) on a correct build and reproduces (2) under
/// [`fmt_conform::oracle::INJECT_MAGIC_ENV`]; malformed case files stay
/// ordinary errors (1, covered above).
#[test]
fn exit_code_2_when_magic_replay_reproduces() {
    let case = write_temp(
        "exit-magic.case",
        "oracle: magic\nseed: 0\ncase: 0\nnote: t\nrel: E/2\n\
         param: fuel = 16\nparam: goal = t(0, gy)?\n\
         param: program = t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z).\n\
         structure A:\nsize: 3\nE(0,1)\nE(1,2)\nend\n",
    );
    let out = fmtk()
        .args(["conform", "--replay", case.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = fmtk()
        .args(["conform", "--replay", case.to_str().unwrap()])
        .env(fmt_conform::oracle::INJECT_MAGIC_ENV, "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("disagreement reproduces"), "{err}");
}

#[test]
fn exit_code_2_when_hunt_finds_disagreements() {
    let out = fmtk()
        .args(["conform", "--oracle", "budget-fault", "--cases", "2"])
        .env(fmt_conform::oracle::INJECT_PANIC_ENV, "1")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("DISAGREEMENT"));
}

#[test]
fn exit_code_3_when_budget_exhausts() {
    let p = write_temp("exit-c4b.st", CYCLE4);
    let prog = write_temp(
        "exit-tc.dl",
        "tc(x,y) :- e(x,y). tc(x,z) :- e(x,y), tc(y,z).",
    );
    let runs: &[&[&str]] = &[
        &["--fuel", "1", "check", "@S", "forall x. exists y. E(x, y)"],
        &["--timeout-ms", "0", "eval", "@S", "E(x, y)"],
        &["--fuel", "2", "datalog", "@S", "@P"],
        &["--fuel", "1", "game", "@S", "@S"],
        &["--fuel", "3", "conform", "--cases", "8"],
    ];
    for args in runs {
        let args: Vec<&str> = args
            .iter()
            .map(|a| match *a {
                "@S" => p.to_str().unwrap(),
                "@P" => prog.to_str().unwrap(),
                other => other,
            })
            .collect();
        let out = fmtk().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(3), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("fuel exhausted") || err.contains("deadline exceeded"),
            "{args:?}: {err}"
        );
    }
    // An ample budget changes nothing: same answer, exit 0.
    let out = fmtk()
        .args([
            "--fuel",
            "100000",
            "check",
            p.to_str().unwrap(),
            "forall x. exists y. E(x, y)",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "true");
}

const TC_PROG: &str = "t(x,y) :- e(x,y).\nt(x,z) :- t(x,y), e(y,z).\n";

#[test]
fn trace_flag_writes_valid_chrome_json() {
    let s = write_temp("trace-c4.st", CYCLE4);
    let prog = write_temp("trace-tc.dl", TC_PROG);
    let tracefile = std::env::temp_dir().join("fmtk-cli-tests/trace-out.json");
    let out = fmtk()
        .args([
            "--trace",
            tracefile.to_str().unwrap(),
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&tracefile).unwrap();
    let json = fmt_core::obs::json::parse(&text).expect("chrome trace must be valid JSON");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(names.contains(&"datalog.eval"), "{names:?}");
    assert!(names.contains(&"datalog.round"), "{names:?}");
    assert!(names.contains(&"datalog.rule"), "{names:?}");
}

#[test]
fn trace_folded_format_nests_phases() {
    let s = write_temp("folded-c4.st", CYCLE4);
    let prog = write_temp("folded-tc.dl", TC_PROG);
    let tracefile = std::env::temp_dir().join("fmtk-cli-tests/trace-out.folded");
    let out = fmtk()
        .args([
            "--trace",
            tracefile.to_str().unwrap(),
            "--trace-format",
            "folded",
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&tracefile).unwrap();
    assert!(
        text.lines()
            .any(|l| l.starts_with("datalog.eval;datalog.round;datalog.join;datalog.rule ")),
        "{text}"
    );
    // Every line is "stack count".
    for line in text.lines() {
        let (_, count) = line.rsplit_once(' ').expect("stack + self-time");
        count.parse::<u64>().unwrap();
    }
}

#[test]
fn trace_format_without_trace_is_an_error() {
    let out = fmtk()
        .args(["--trace-format", "folded", "sample"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --trace"));
}

#[test]
fn datalog_explain_prints_per_rule_table() {
    let s = write_temp("explain-c4.st", CYCLE4);
    let prog = write_temp("explain-tc.dl", TC_PROG);
    let out = fmtk()
        .args([
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-rule profile"), "{text}");
    assert!(text.contains("t(x,y) :- e(x,y)"), "{text}");
    assert!(text.contains("t(x,z) :- t(x,y), e(y,z)"), "{text}");
    // The linear rule derives 4 base edges in round 1 only.
    let rule0 = text
        .lines()
        .find(|l| l.trim_start().starts_with("0 "))
        .unwrap();
    let cells: Vec<&str> = rule0.split_whitespace().collect();
    assert_eq!(cells[1], "4", "derived: {rule0}");
    // The storage columns from the columnar engine's rule spans: no
    // head tuple of arity 2 spills a stack buffer, and the linear rule
    // stages 4 two-column rows into the arenas.
    assert!(text.contains("probe_allocs"), "{text}");
    assert!(text.contains("arena_bytes"), "{text}");
    assert_eq!(cells[3], "0", "probe_allocs: {rule0}");
    assert_eq!(cells[4], "32", "arena_bytes: {rule0}");
}

#[test]
fn metrics_text_exposes_prometheus_counters() {
    let s = write_temp("prom-c4.st", CYCLE4);
    let prog = write_temp("prom-tc.dl", TC_PROG);
    let out = fmtk()
        .args([
            "--metrics-text",
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("# TYPE queries_datalog_rounds counter"),
        "{text}"
    );
    assert!(
        text.contains("queries_datalog_delta_size_bucket{le=\"+Inf\"}"),
        "{text}"
    );
}

#[test]
fn trace_written_even_when_budget_exhausts() {
    let s = write_temp("exh-c4.st", CYCLE4);
    let prog = write_temp("exh-tc.dl", TC_PROG);
    let tracefile = std::env::temp_dir().join("fmtk-cli-tests/trace-exhausted.json");
    let out = fmtk()
        .args([
            "--fuel",
            "2",
            "--trace",
            tracefile.to_str().unwrap(),
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let text = std::fs::read_to_string(&tracefile).unwrap();
    let json = fmt_core::obs::json::parse(&text).expect("trace of a failed run still parses");
    let events = json.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    // The budget.exhausted instant is in the journal.
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("budget.exhausted")),
        "{text}"
    );
}

#[test]
fn datalog_stratified_negation_end_to_end() {
    // `t` (stratum 0) feeds the anti-join in `nt` (stratum 1): the only
    // edge whose reversal is unreachable is (1, 2).
    let s = write_temp("strat.st", "size: 3\nE(0,1)\nE(1,0)\nE(1,2)\n");
    let prog = write_temp(
        "strat.dl",
        "t(x,y) :- e(x,y). t(x,z) :- e(x,y), t(y,z). nt(x,y) :- e(x,y), !t(y,x).",
    );
    for extra in [
        &[][..],
        &["--engine", "scan"][..],
        &["--engine", "indexed"][..],
        &["--threads", "3"][..],
    ] {
        let out = fmtk()
            .args(["datalog", s.to_str().unwrap(), prog.to_str().unwrap()])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("nt/2: 1 tuples"), "{extra:?}: {text}");
        assert!(text.contains("nt(1, 2)"), "{extra:?}: {text}");
    }
}

#[test]
fn datalog_rejects_bad_negation_with_rendered_diagnostics() {
    let s = write_temp("strat-bad.st", "size: 2\nE(0,1)\n");
    // Unstratifiable: `p` negated inside its own recursive component.
    let prog = write_temp("strat-d006.dl", "p(x) :- e(x, y), !p(y).");
    let out = fmtk()
        .args(["datalog", s.to_str().unwrap(), prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("D006"), "{err}");
    assert!(err.contains("not stratifiable"), "{err}");
    assert!(
        err.contains("strat-d006.dl"),
        "span points into the file: {err}"
    );
    // Unsafe: negated atom binds a variable no positive atom binds.
    let prog = write_temp(
        "strat-d007.dl",
        "q(x) :- e(x, x), !p(y, y). p(x, y) :- e(x, y).",
    );
    let out = fmtk()
        .args(["datalog", s.to_str().unwrap(), prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("D007"), "{err}");
    assert!(err.contains("unsafe negation"), "{err}");
}

#[test]
fn datalog_incremental_rejects_negation_with_i001() {
    let s = write_temp("strat-incr.st", "size: 3\nE(0,1)\n");
    let prog = write_temp(
        "strat-incr.dl",
        "t(x,y) :- e(x,y). nt(x,y) :- e(x,y), !t(y,x).",
    );
    let upd = write_temp("strat-incr.upd", "+E(1,2) poll\n");
    let out = fmtk()
        .args([
            "datalog",
            s.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--incremental",
            "--updates",
            upd.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("I001"), "{err}");
    assert!(err.contains("does not support negation"), "{err}");
    // The same program runs fine in batch mode — the note's claim.
    assert!(err.contains("batch evaluation"), "{err}");
    let out = fmtk()
        .args(["datalog", s.to_str().unwrap(), prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn lint_explain_prints_long_form_text() {
    let out = fmtk().args(["lint", "--explain", "d006"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("D006:"), "{text}");
    assert!(text.len() > 100, "explanation is long-form: {text}");

    let out = fmtk().args(["lint", "--explain", "Z999"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown lint code"), "{err}");
    assert!(err.contains("D006"), "lists registered codes: {err}");
}
