//! # fmt-zeroone
//!
//! The 0-1 law toolbox (Libkin, PODS'09, final section): probabilities
//! of Boolean queries on uniformly random finite structures.
//!
//! For a Boolean query `Q` and a relational signature σ, let `μₙ(Q)` be
//! the probability that a uniformly random σ-structure with domain
//! `{0, …, n−1}` satisfies `Q` (every potential tuple present
//! independently with probability ½), and `μ(Q) = limₙ μₙ(Q)`. The
//! **0-1 law for FO** says: for every FO sentence, `μ(Q)` exists and is
//! 0 or 1. Counting queries like EVEN, whose `μₙ` oscillates between 0
//! and 1, therefore cannot be FO-definable.
//!
//! This crate makes all of that executable:
//!
//! * [`sample`] — uniform random σ-structures (and biased variants);
//! * [`mu`] — `μₙ` by exact enumeration (tiny n) and by parallel
//!   Monte-Carlo estimation (moderate n), plus convergence series;
//! * [`extension`] — **extension axioms**, the proof engine: each has
//!   limit probability 1, they decide every FO sentence's limit, and
//!   [`extension::decide_mu`] implements the decision procedure
//!   (find a certified generic witness, evaluate the sentence on it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extension;
pub mod mu;
pub mod sample;

pub use extension::decide_mu;
pub use mu::{mu_estimate, mu_exact};
pub use sample::uniform_structure;
