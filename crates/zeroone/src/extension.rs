//! Extension axioms and the 0-1-law decision procedure.
//!
//! The level-`k` extension axioms (see
//! [`fmt_logic::library::extension_axiom`]) say: *every* configuration
//! of `k` distinct points extends, by a fresh point, to every possible
//! atomic type. Their two famous properties drive the FO 0-1 law:
//!
//! 1. each axiom has limit probability 1 over uniform random
//!    structures (checked empirically by
//!    [`extension_axiom_probability`] — experiment E14);
//! 2. the axioms **decide** every FO sentence: all their models agree
//!    on sentences of matching quantifier rank, so `μ(φ) = 1` iff φ
//!    holds in the countable *generic* structure (the Fraïssé limit /
//!    Rado-style structure) that realizes every extension type.
//!
//! [`decide_mu`] implements property 2 directly and *symbolically*:
//! it evaluates φ in the generic structure by structural recursion,
//! where a quantifier branches over (a) the finitely many elements
//! introduced so far and (b) every atomic *extension type* of a fresh
//! element over them — legitimate precisely because the generic
//! structure realizes all of them. No sampling, no luck: the procedure
//! is exact and terminates in `O((d + 2^{atoms})^{qr})` for nesting
//! depth `d` (trivial for the toolbox's rank ≤ 3 examples).
//!
//! The empirical side ([`satisfies_extension_axioms`],
//! [`find_generic_witness`]) certifies concrete random structures
//! against the axioms at low levels, cross-validating the symbolic
//! answers against Monte-Carlo estimates of `μₙ`.

use fmt_logic::{library, Formula, Term, Var};
use fmt_structures::{Elem, RelId, Signature, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;

/// Per-tuple extension-axiom checks performed against concrete structures.
static OBS_EXT_CHECKS: fmt_obs::Counter = fmt_obs::Counter::new("zeroone.extension_checks");
/// Fresh-element atomic-type branches explored in the generic structure.
static OBS_GENERIC_BRANCHES: fmt_obs::Counter = fmt_obs::Counter::new("zeroone.generic_branches");

// ---------------------------------------------------------------------
// Symbolic evaluation in the generic (Rado-style) structure.
// ---------------------------------------------------------------------

/// A finite piece of the generic structure: abstract elements `0..len`
/// with a fully specified atomic diagram.
#[derive(Debug, Default, Clone)]
struct SymbolicDiagram {
    len: u32,
    facts: HashSet<(usize, Vec<u32>)>, // (relation index, tuple)
}

impl SymbolicDiagram {
    fn holds(&self, rel: RelId, tuple: &[u32]) -> bool {
        self.facts.contains(&(rel.0, tuple.to_vec()))
    }
}

/// All tuples over `0..len` of the given arity that mention `len - 1`
/// (the freshly added element).
fn tuples_mentioning_last(len: u32, arity: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let last = len - 1;
    let mut tuple = vec![0u32; arity];
    'odometer: loop {
        if tuple.contains(&last) {
            out.push(tuple.clone());
        }
        let mut pos = arity;
        loop {
            if pos == 0 {
                break 'odometer;
            }
            pos -= 1;
            tuple[pos] += 1;
            if tuple[pos] < len {
                break;
            }
            tuple[pos] = 0;
            if pos == 0 {
                break 'odometer;
            }
        }
    }
    out
}

fn eval_generic(
    sig: &Signature,
    f: &Formula,
    diagram: &mut SymbolicDiagram,
    env: &mut Vec<Option<u32>>,
) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom { rel, args } => {
            let tuple: Vec<u32> = args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => env[v.0 as usize].expect("bound variable"),
                    Term::Const(_) => {
                        unreachable!("generic evaluation requires constant-free sentences")
                    }
                })
                .collect();
            diagram.holds(*rel, &tuple)
        }
        Formula::Eq(a, b) => {
            let val = |t: &Term, env: &[Option<u32>]| match t {
                Term::Var(v) => env[v.0 as usize].expect("bound variable"),
                Term::Const(_) => unreachable!(),
            };
            val(a, env) == val(b, env)
        }
        Formula::Not(g) => !eval_generic(sig, g, diagram, env),
        Formula::And(fs) => fs.iter().all(|g| eval_generic(sig, g, diagram, env)),
        Formula::Or(fs) => fs.iter().any(|g| eval_generic(sig, g, diagram, env)),
        Formula::Implies(a, b) => {
            !eval_generic(sig, a, diagram, env) || eval_generic(sig, b, diagram, env)
        }
        Formula::Iff(a, b) => {
            eval_generic(sig, a, diagram, env) == eval_generic(sig, b, diagram, env)
        }
        Formula::Exists(v, g) => branch_quantifier(sig, *v, g, diagram, env, true),
        Formula::Forall(v, g) => branch_quantifier(sig, *v, g, diagram, env, false),
    }
}

/// Branches a quantifier over (a) the existing abstract elements and
/// (b) every atomic extension type of a fresh element — exactly the
/// witnesses the generic structure provides.
fn branch_quantifier(
    sig: &Signature,
    v: Var,
    body: &Formula,
    diagram: &mut SymbolicDiagram,
    env: &mut Vec<Option<u32>>,
    existential: bool,
) -> bool {
    let old = env[v.0 as usize];
    // (a) existing elements.
    for e in 0..diagram.len {
        env[v.0 as usize] = Some(e);
        let r = eval_generic(sig, body, diagram, env);
        if r == existential {
            env[v.0 as usize] = old;
            return existential;
        }
    }
    // (b) a fresh element, one branch per atomic type over the current
    // elements. Collect the atom slots first.
    let fresh = diagram.len;
    diagram.len += 1;
    let mut slots: Vec<(usize, Vec<u32>)> = Vec::new();
    for (r, _, arity) in sig.relations() {
        for t in tuples_mentioning_last(diagram.len, arity) {
            slots.push((r.0, t));
        }
    }
    debug_assert!(slots.len() <= 24, "extension type space too large");
    env[v.0 as usize] = Some(fresh);
    let mut verdict = !existential;
    'types: for mask in 0..(1u64 << slots.len()) {
        OBS_GENERIC_BRANCHES.incr();
        // Install the type.
        for (i, slot) in slots.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                diagram.facts.insert(slot.clone());
            }
        }
        let r = eval_generic(sig, body, diagram, env);
        // Uninstall.
        for slot in &slots {
            diagram.facts.remove(slot);
        }
        if r == existential {
            verdict = existential;
            break 'types;
        }
    }
    diagram.len -= 1;
    env[v.0 as usize] = old;
    verdict
}

/// Decides the limit probability `μ(φ) ∈ {0, 1}` of an FO sentence over
/// uniformly random σ-structures, by symbolic evaluation in the generic
/// structure (see the module docs). Always succeeds; exact.
///
/// # Panics
/// Panics if `f` is not a sentence or the signature has constants.
pub fn decide_mu(sig: &Arc<Signature>, f: &Formula) -> bool {
    assert!(f.is_sentence(), "decide_mu requires a Boolean query");
    assert_eq!(
        sig.num_constants(),
        0,
        "decide_mu requires a constant-free signature"
    );
    let mut env = vec![None; f.max_var().map_or(0, |m| m as usize + 1)];
    let mut diagram = SymbolicDiagram::default();
    eval_generic(sig, f, &mut diagram, &mut env)
}

// ---------------------------------------------------------------------
// Empirical side: certifying concrete random structures.
// ---------------------------------------------------------------------

/// Checks that `s` satisfies **all** extension axioms of every level
/// `≤ max_level`, with a direct combinatorial check (no formula
/// evaluation): for every tuple of `k ≤ max_level` distinct points,
/// every atomic extension type must be realized by some fresh `z`.
///
/// # Panics
/// Panics if a level fixes more than 24 atoms.
pub fn satisfies_extension_axioms(s: &Structure, max_level: u32) -> bool {
    let sig = s.signature();
    for k in 0..=max_level {
        let atoms = library::extension_atom_count(sig, k);
        assert!(atoms <= 24, "extension type space too large");
        let want: u64 = 1u64 << atoms;
        let full: u64 = want - 1;
        // Iterate over all k-tuples of distinct points.
        let n = s.size();
        if (n as u64) < k as u64 + 1 {
            // Not enough points to even host the axiom: it fails
            // (vacuously true only if there is no k-tuple, i.e. n < k).
            if (n as u64) < k as u64 {
                continue;
            }
            return false;
        }
        let mut xs = vec![0 as Elem; k as usize];
        let mut realized = vec![false; want as usize];
        'tuples: loop {
            let distinct = {
                let mut seen = xs.clone();
                seen.sort_unstable();
                seen.windows(2).all(|w| w[0] != w[1])
            };
            if distinct {
                OBS_EXT_CHECKS.incr();
                realized.iter_mut().for_each(|b| *b = false);
                let mut found = 0u64;
                for z in s.domain() {
                    if xs.contains(&z) {
                        continue;
                    }
                    let t = atom_type(s, &xs, z);
                    if !realized[t as usize] {
                        realized[t as usize] = true;
                        found += 1;
                        if found == want {
                            break;
                        }
                    }
                }
                if found != want {
                    return false;
                }
                let _ = full;
            }
            // Odometer over k positions (k = 0 runs exactly once).
            if k == 0 {
                break 'tuples;
            }
            let mut pos = k as usize;
            loop {
                if pos == 0 {
                    break 'tuples;
                }
                pos -= 1;
                xs[pos] += 1;
                if xs[pos] < n {
                    break;
                }
                xs[pos] = 0;
                if pos == 0 {
                    break 'tuples;
                }
            }
        }
    }
    true
}

/// The atomic type of `z` over the tuple `xs`, packed into a bit mask
/// aligned with [`library::extension_atom_count`]'s atom enumeration.
fn atom_type(s: &Structure, xs: &[Elem], z: Elem) -> u64 {
    let sig = s.signature();
    let k = xs.len();
    let mut bit = 0u32;
    let mut mask = 0u64;
    let pool: Vec<Elem> = xs.iter().copied().chain(std::iter::once(z)).collect();
    let mut tuple_idx = vec![0usize; sig.max_arity()];
    for (r, _, arity) in sig.relations() {
        let idx = &mut tuple_idx[..arity];
        idx.iter_mut().for_each(|i| *i = 0);
        let mut actual = vec![0 as Elem; arity];
        'tuples: loop {
            if idx.contains(&k) {
                for (a, &i) in actual.iter_mut().zip(idx.iter()) {
                    *a = pool[i];
                }
                if s.holds(r, &actual) {
                    mask |= 1 << bit;
                }
                bit += 1;
            }
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break 'tuples;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < pool.len() {
                    break;
                }
                idx[pos] = 0;
                if pos == 0 {
                    break 'tuples;
                }
            }
        }
    }
    mask
}

/// Empirical probability that a uniform random structure of size `n`
/// satisfies all extension axioms of level `≤ max_level` (experiment
/// E14: this tends to 1 as `n` grows).
pub fn extension_axiom_probability(
    sig: &Arc<Signature>,
    n: u32,
    max_level: u32,
    samples: u32,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0;
    for _ in 0..samples {
        let s = crate::sample::uniform_structure(sig, n, &mut rng);
        if satisfies_extension_axioms(&s, max_level) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// A structure certified to satisfy all extension axioms up to a level
/// — a *generic witness* for the almost-sure theory.
#[derive(Debug, Clone)]
pub struct GenericWitness {
    /// The witness structure.
    pub structure: Structure,
    /// All axioms of level `≤ max_level` hold.
    pub max_level: u32,
}

impl GenericWitness {
    /// Re-certifies the witness (the certificate is checkable data).
    pub fn check(&self) -> bool {
        satisfies_extension_axioms(&self.structure, self.max_level)
    }
}

/// Searches for a generic witness by sampling uniform structures of
/// growing size. Practical for `max_level ≤ 1` on binary signatures
/// (level 2 would require witnesses with hundreds of elements).
pub fn find_generic_witness(
    sig: &Arc<Signature>,
    max_level: u32,
    seed: u64,
) -> Option<GenericWitness> {
    let mut rng = StdRng::seed_from_u64(seed);
    let atoms = library::extension_atom_count(sig, max_level) as u32;
    let start = 24 + 24 * atoms;
    for round in 0..6u32 {
        let n = start + round * start;
        for _ in 0..4 {
            let s = crate::sample::uniform_structure(sig, n, &mut rng);
            if satisfies_extension_axioms(&s, max_level) {
                return Some(GenericWitness {
                    structure: s,
                    max_level,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::parser::parse_formula;

    #[test]
    fn decide_q1_and_q2() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        // The paper's examples: μ(Q1) = 0, μ(Q2) = 1.
        let q1 = fmt_logic::library::q1_all_pairs_adjacent(e);
        assert!(!decide_mu(&sig, &q1));
        let q2 = fmt_logic::library::q2_distinguishing_neighbor(e);
        assert!(decide_mu(&sig, &q2));
    }

    #[test]
    fn decide_simple_sentences() {
        let sig = Signature::graph();
        for (src, expected) in [
            ("exists x. E(x, x)", true),
            ("forall x. E(x, x)", false),
            ("forall x y. exists z. E(x, z) & E(y, z)", true),
            ("exists x. forall y. E(x, y)", false),
            ("forall x. exists y. E(x, y) & !(x = y)", true),
            ("exists x y. !(x = y) & E(x, y) & E(y, x)", true),
            ("forall x y. E(x, y) -> E(y, x)", false),
            ("exists x. true", true),
        ] {
            let f = parse_formula(&sig, src).unwrap();
            assert_eq!(decide_mu(&sig, &f), expected, "{src}");
        }
        assert!(decide_mu(&sig, &fmt_logic::Formula::True));
        assert!(!decide_mu(&sig, &fmt_logic::Formula::False));
    }

    #[test]
    fn decide_cardinalities() {
        // The generic structure is infinite: every λ_k holds almost
        // surely.
        let sig = Signature::graph();
        for k in 1..5 {
            assert!(decide_mu(&sig, &fmt_logic::library::at_least(k)));
        }
        assert!(!decide_mu(&sig, &fmt_logic::library::at_most(3)));
    }

    #[test]
    fn decide_extension_axioms_themselves() {
        // Every extension axiom holds in the generic structure — the
        // defining property.
        let sig = Signature::graph();
        for k in 0..=1 {
            for ax in library::all_extension_axioms(&sig, k) {
                assert!(decide_mu(&sig, &ax));
            }
        }
    }

    #[test]
    fn decide_agrees_with_exact_mu_trend() {
        // Sentences with exact μ_n computable at n = 2..4: the decided
        // limit should match where the trend points.
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x. E(x, x)").unwrap();
        assert!(decide_mu(&sig, &f));
        let mu4 = crate::mu::mu_exact(&sig, 4, &f);
        assert!(mu4 > 0.9, "{mu4}");
        let g = parse_formula(&sig, "forall x. E(x, x)").unwrap();
        assert!(!decide_mu(&sig, &g));
        assert!(crate::mu::mu_exact(&sig, 4, &g) < 0.1);
    }

    #[test]
    fn decide_agrees_with_estimates() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x. forall y. E(x, y)").unwrap();
        assert!(!decide_mu(&sig, &f));
        let est = crate::mu::mu_estimate(&sig, 16, &f, 300, 13);
        assert!(est < 0.2, "{est}");
        let h = parse_formula(&sig, "forall x y. exists z. E(x, z) & E(y, z)").unwrap();
        assert!(decide_mu(&sig, &h));
        // Slow convergence again: (3/4)^n per pair needs n ≈ 50.
        let est_h = crate::mu::mu_estimate(&sig, 56, &h, 120, 13);
        assert!(est_h > 0.9, "{est_h}");
    }

    #[test]
    fn axiom_probability_increases_with_n() {
        let sig = Signature::graph();
        let p_small = extension_axiom_probability(&sig, 12, 1, 60, 1);
        let p_large = extension_axiom_probability(&sig, 110, 1, 60, 1);
        assert!(p_large >= p_small, "{p_small} vs {p_large}");
        assert!(p_large > 0.9, "{p_large}");
    }

    #[test]
    fn witness_exists_and_checks() {
        let sig = Signature::graph();
        let w = find_generic_witness(&sig, 1, 5).expect("witness");
        assert!(w.check());
        assert!(satisfies_extension_axioms(&w.structure, 0));
    }

    #[test]
    fn direct_checker_matches_formula_evaluation() {
        // The fast combinatorial checker agrees with evaluating the
        // axiom formulas on a suite of small structures.
        let sig = Signature::graph();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let s = crate::sample::uniform_structure(&sig, 9, &mut rng);
            for level in 0..=1u32 {
                let direct = satisfies_extension_axioms(&s, level);
                let via_formulas = (0..=level).all(|k| {
                    library::all_extension_axioms(&sig, k)
                        .iter()
                        .all(|ax| fmt_eval::relalg::check_sentence(&s, ax))
                });
                assert_eq!(direct, via_formulas, "level {level}");
            }
        }
    }

    #[test]
    fn tiny_structures_fail_axioms() {
        // A 1-element structure cannot satisfy even level 0 (no fresh z
        // with both loop polarities).
        let one = crate::sample::enumerate_structures(&Signature::graph(), 1);
        for s in one {
            assert!(!satisfies_extension_axioms(&s, 0));
        }
    }
}
