//! Sampling uniformly random finite structures.
//!
//! `STRUC(σ, n)` is the set of σ-structures with domain `{0, …, n−1}`;
//! the uniform distribution over it is obtained by flipping an
//! independent fair coin for **every potential tuple of every
//! relation** — including "diagonal" tuples like `E(a, a)`, which is
//! why the extension axioms of [`crate::extension`] also fix loop
//! atoms.

use fmt_structures::{Elem, Signature, Structure, StructureBuilder};
use rand::{Rng, RngExt};
use std::sync::Arc;

/// Random structures drawn (uniform and biased alike).
static OBS_SAMPLES: fmt_obs::Counter = fmt_obs::Counter::new("zeroone.samples_drawn");
/// Coins flipped while drawing them (one per potential tuple).
static OBS_COINS: fmt_obs::Counter = fmt_obs::Counter::new("zeroone.tuple_coins");

/// Samples a σ-structure with each potential tuple present
/// independently with probability `p` (constant-free signatures only).
///
/// # Panics
/// Panics if the signature has constants or `p ∉ [0, 1]`.
pub fn structure_with_density<R: Rng + ?Sized>(
    sig: &Arc<Signature>,
    n: u32,
    p: f64,
    rng: &mut R,
) -> Structure {
    assert_eq!(
        sig.num_constants(),
        0,
        "random structures require a constant-free signature"
    );
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    OBS_SAMPLES.incr();
    let mut b = StructureBuilder::new(sig.clone(), n);
    let mut tuple: Vec<Elem> = Vec::new();
    for (r, _, arity) in sig.relations() {
        if n == 0 {
            continue;
        }
        // Odometer over all n^arity tuples.
        tuple.clear();
        tuple.resize(arity, 0);
        'tuples: loop {
            OBS_COINS.incr();
            if rng.random_bool(p) {
                b.add(r, &tuple).expect("tuple in range");
            }
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break 'tuples;
                }
                pos -= 1;
                tuple[pos] += 1;
                if tuple[pos] < n {
                    break;
                }
                tuple[pos] = 0;
                if pos == 0 {
                    break 'tuples;
                }
            }
        }
    }
    b.build().expect("constant-free")
}

/// Samples a **uniformly** random σ-structure on `{0, …, n−1}` (every
/// tuple with probability ½).
pub fn uniform_structure<R: Rng + ?Sized>(sig: &Arc<Signature>, n: u32, rng: &mut R) -> Structure {
    structure_with_density(sig, n, 0.5, rng)
}

/// Enumerates **all** σ-structures on `{0, …, n−1}` (for exact μₙ at
/// tiny sizes). The number of structures is `2^(Σ_R n^arity)`.
///
/// # Panics
/// Panics if the signature has constants or the space exceeds 2²⁴
/// structures.
pub fn enumerate_structures(sig: &Arc<Signature>, n: u32) -> Vec<Structure> {
    assert_eq!(sig.num_constants(), 0);
    // Collect all potential tuples across relations.
    let mut slots: Vec<(fmt_structures::RelId, Vec<Elem>)> = Vec::new();
    for (r, _, arity) in sig.relations() {
        if n == 0 {
            continue;
        }
        let mut tuple = vec![0 as Elem; arity];
        'tuples: loop {
            slots.push((r, tuple.clone()));
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break 'tuples;
                }
                pos -= 1;
                tuple[pos] += 1;
                if tuple[pos] < n {
                    break;
                }
                tuple[pos] = 0;
                if pos == 0 {
                    break 'tuples;
                }
            }
        }
    }
    assert!(slots.len() <= 24, "structure space too large to enumerate");
    let total = 1u64 << slots.len();
    let mut out = Vec::with_capacity(total as usize);
    for mask in 0..total {
        let mut b = StructureBuilder::new(sig.clone(), n);
        for (i, (r, t)) in slots.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                b.add(*r, t).expect("in range");
            }
        }
        out.push(b.build().expect("constant-free"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn determinism_per_seed() {
        let sig = Signature::graph();
        let a = uniform_structure(&sig, 10, &mut StdRng::seed_from_u64(1));
        let b = uniform_structure(&sig, 10, &mut StdRng::seed_from_u64(1));
        let c = uniform_structure(&sig, 10, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely
    }

    #[test]
    fn density_extremes() {
        let sig = Signature::graph();
        let mut rng = StdRng::seed_from_u64(3);
        let empty = structure_with_density(&sig, 6, 0.0, &mut rng);
        assert_eq!(empty.num_tuples(), 0);
        let full = structure_with_density(&sig, 6, 1.0, &mut rng);
        assert_eq!(full.num_tuples(), 36); // includes loops
    }

    #[test]
    fn tuple_count_concentrates() {
        let sig = Signature::graph();
        let mut rng = StdRng::seed_from_u64(4);
        let s = uniform_structure(&sig, 40, &mut rng);
        let expected = 40.0 * 40.0 / 2.0;
        let got = s.num_tuples() as f64;
        assert!((got - expected).abs() < 200.0, "got {got}");
    }

    #[test]
    fn enumeration_counts() {
        let sig = Signature::graph();
        assert_eq!(enumerate_structures(&sig, 0).len(), 1);
        assert_eq!(enumerate_structures(&sig, 1).len(), 2); // loop or not
        assert_eq!(enumerate_structures(&sig, 2).len(), 16);
        let unary = Signature::builder().relation("P", 1).finish_arc();
        assert_eq!(enumerate_structures(&unary, 3).len(), 8);
    }

    #[test]
    fn enumeration_is_distinct() {
        let sig = Signature::graph();
        let all = enumerate_structures(&sig, 2);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn multi_relation_signature() {
        let sig = Signature::builder()
            .relation("P", 1)
            .relation("E", 2)
            .finish_arc();
        let mut rng = StdRng::seed_from_u64(5);
        let s = uniform_structure(&sig, 4, &mut rng);
        assert_eq!(s.signature().num_relations(), 2);
        // 4 + 16 = 20 potential tuples; ~10 expected.
        assert!(s.num_tuples() <= 20);
    }
}
