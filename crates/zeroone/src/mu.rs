//! Computing and estimating `μₙ(Q)`.
//!
//! `μₙ(Q) = |{A ∈ STRUC(σ, n) : A ⊨ Q}| / |STRUC(σ, n)|`. For tiny `n`
//! we enumerate the space exactly; for moderate `n` we estimate by
//! parallel Monte-Carlo sampling (std scoped threads, one seeded
//! RNG per worker, deterministic given the base seed). Experiment E13
//! produces the convergence tables `μₙ(Q₁) → 0` and `μₙ(Q₂) → 1`.

use crate::sample;
use fmt_logic::Formula;
use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::Signature;
use std::sync::Arc;

/// Budget tick site label for the μ engines.
const AT: &str = "zeroone.mu";

/// Exact `μₙ` by enumerating all of `STRUC(σ, n)`.
///
/// # Panics
/// Panics if `f` is not a sentence or the space exceeds 2²⁴ structures
/// (see [`sample::enumerate_structures`]).
pub fn mu_exact(sig: &Arc<Signature>, n: u32, f: &Formula) -> f64 {
    try_mu_exact(sig, n, f, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`mu_exact`]: ticks once per enumerated structure and
/// threads the budget into the inner relalg evaluation.
///
/// # Panics
/// Panics if `f` is not a sentence or the space exceeds 2²⁴ structures.
pub fn try_mu_exact(
    sig: &Arc<Signature>,
    n: u32,
    f: &Formula,
    budget: &Budget,
) -> BudgetResult<f64> {
    assert!(f.is_sentence(), "mu requires a Boolean query");
    let mut span = fmt_obs::trace_span!("zeroone.mu_exact", n = n);
    let all = sample::enumerate_structures(sig, n);
    let total = all.len();
    let mut hits = 0usize;
    for s in &all {
        budget.tick(AT)?;
        if fmt_eval::relalg::check_sentence_budgeted(s, f, budget)? {
            hits += 1;
        }
    }
    span.record_field("structures", total);
    span.record_field("hits", hits);
    Ok(hits as f64 / total as f64)
}

/// Monte-Carlo estimate of `μₙ` from `samples` uniform structures,
/// split across `threads` workers (deterministic given `seed`).
///
/// # Panics
/// Panics if `f` is not a sentence or `samples == 0`.
pub fn mu_estimate(sig: &Arc<Signature>, n: u32, f: &Formula, samples: u32, seed: u64) -> f64 {
    try_mu_estimate(sig, n, f, samples, seed, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budgeted [`mu_estimate`]: all sampling workers share `budget` (one
/// clone each), so exhaustion or cancellation stops every worker
/// cooperatively.
///
/// # Panics
/// Panics if `f` is not a sentence or `samples == 0`.
pub fn try_mu_estimate(
    sig: &Arc<Signature>,
    n: u32,
    f: &Formula,
    samples: u32,
    seed: u64,
    budget: &Budget,
) -> BudgetResult<f64> {
    assert!(f.is_sentence(), "mu requires a Boolean query");
    assert!(samples > 0);
    let threads = std::thread::available_parallelism()
        .map(|t| t.get().min(8))
        .unwrap_or(1) as u32;
    let threads = threads.min(samples);
    let mut span = fmt_obs::trace_span!(
        "zeroone.mu_estimate",
        n = n,
        samples = samples,
        threads = threads
    );
    // Workers are raw scoped threads (not `fan_out`), so span parentage
    // must be carried across by hand.
    let parent = fmt_obs::trace::current_parent();
    let hits = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let sig = sig.clone();
            let f = f.clone();
            let budget = budget.clone();
            // Split the sample budget as evenly as possible.
            let quota = samples / threads + u32::from(w < samples % threads);
            handles.push(scope.spawn(move || -> BudgetResult<u32> {
                fmt_obs::trace::with_parent(parent, || {
                    let mut chunk_span =
                        fmt_obs::trace_span!("zeroone.mu_estimate.chunk", quota = quota);
                    use rand::rngs::StdRng;
                    use rand::SeedableRng;
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w as u64 + 1)),
                    );
                    let mut hits = 0u32;
                    for _ in 0..quota {
                        budget.tick(AT)?;
                        let s = sample::uniform_structure(&sig, n, &mut rng);
                        if fmt_eval::relalg::check_sentence_budgeted(&s, &f, &budget)? {
                            hits += 1;
                        }
                    }
                    chunk_span.record_field("hits", hits);
                    Ok(hits)
                })
            }));
        }
        let mut hits = 0u32;
        let mut err = None;
        for h in handles {
            match h.join().unwrap() {
                Ok(n) => hits += n,
                Err(e) => err = err.or(Some(e)),
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(hits),
        }
    })?;
    span.record_field("hits", hits);
    Ok(f64::from(hits) / f64::from(samples))
}

/// Monte-Carlo estimate of `μₙ` under the **biased** product measure
/// where every tuple is present independently with probability `p`.
///
/// The FO 0-1 law holds for every fixed `p ∈ (0, 1)` — and the limit is
/// the *same* as for `p = ½`, because the extension axioms hold almost
/// surely under every such measure. [`crate::decide_mu`] therefore
/// decides the biased limits too; the test below checks the estimates
/// trend to the same value at `p = 0.25` and `p = 0.75`.
pub fn mu_estimate_biased(
    sig: &Arc<Signature>,
    n: u32,
    f: &Formula,
    p: f64,
    samples: u32,
    seed: u64,
) -> f64 {
    assert!(f.is_sentence(), "mu requires a Boolean query");
    assert!((0.0..=1.0).contains(&p));
    assert!(samples > 0);
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u32;
    for _ in 0..samples {
        let s = sample::structure_with_density(sig, n, p, &mut rng);
        if fmt_eval::relalg::check_sentence(&s, f) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// A convergence series: `μₙ` (exact where feasible, estimated
/// otherwise) over a range of sizes.
#[derive(Debug, Clone)]
pub struct ConvergenceSeries {
    /// The sizes sampled.
    pub ns: Vec<u32>,
    /// The corresponding `μₙ` values.
    pub values: Vec<f64>,
}

impl ConvergenceSeries {
    /// Computes the series for `f` at the given sizes, using exact
    /// enumeration when the space has at most 2¹⁶ structures and
    /// `samples`-sized estimation otherwise.
    pub fn compute(
        sig: &Arc<Signature>,
        ns: &[u32],
        f: &Formula,
        samples: u32,
        seed: u64,
    ) -> ConvergenceSeries {
        let values = ns
            .iter()
            .map(|&n| {
                let bits: u64 = sig
                    .relations()
                    .map(|(_, _, a)| (n as u64).pow(a as u32))
                    .sum();
                if bits <= 16 {
                    mu_exact(sig, n, f)
                } else {
                    mu_estimate(sig, n, f, samples, seed)
                }
            })
            .collect();
        ConvergenceSeries {
            ns: ns.to_vec(),
            values,
        }
    }

    /// The last value of the series (the best available approximation
    /// of the limit).
    pub fn last(&self) -> f64 {
        *self.values.last().expect("nonempty series")
    }

    /// `true` if the series is monotonically approaching `limit` with
    /// final distance below `tol`.
    pub fn converges_to(&self, limit: f64, tol: f64) -> bool {
        (self.last() - limit).abs() < tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::{library, parser::parse_formula};

    #[test]
    fn exact_loop_probability() {
        // P[∃x E(x,x)] on n=3: 1 − (1/2)³ = 0.875.
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x. E(x, x)").unwrap();
        let v = mu_exact(&sig, 3, &f);
        assert!((v - 0.875).abs() < 1e-12, "{v}");
        // n = 1: probability 1/2.
        assert!((mu_exact(&sig, 1, &f) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_trivial_sentences() {
        let sig = Signature::graph();
        assert_eq!(mu_exact(&sig, 2, &fmt_logic::Formula::True), 1.0);
        assert_eq!(mu_exact(&sig, 2, &fmt_logic::Formula::False), 0.0);
        // λ2 on 2-element structures is always true.
        assert_eq!(mu_exact(&sig, 2, &library::at_least(2)), 1.0);
        assert_eq!(mu_exact(&sig, 2, &library::at_least(3)), 0.0);
    }

    #[test]
    fn estimate_matches_exact() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x. E(x, x)").unwrap();
        let exact = mu_exact(&sig, 3, &f);
        let est = mu_estimate(&sig, 3, &f, 4000, 42);
        assert!((est - exact).abs() < 0.04, "est {est} vs exact {exact}");
    }

    #[test]
    fn estimate_deterministic_per_seed() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x y. E(x, y)").unwrap();
        let a = mu_estimate(&sig, 5, &f, 500, 7);
        let b = mu_estimate(&sig, 5, &f, 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn biased_measures_share_the_limit() {
        // The 0-1 law is insensitive to the edge probability p ∈ (0,1):
        // μ_n(∃x E(x,x)) tends to 1 under p = 0.25 and p = 0.75 alike,
        // and the symbolic decision (tied to no particular p) agrees.
        let sig = Signature::graph();
        let f = parse_formula(&sig, "exists x. E(x, x)").unwrap();
        for p in [0.25, 0.75] {
            let est = mu_estimate_biased(&sig, 24, &f, p, 200, 5);
            assert!(est > 0.95, "p = {p}: {est}");
        }
        assert!(crate::extension::decide_mu(&sig, &f));
        // And a μ = 0 sentence vanishes under both.
        let g = parse_formula(&sig, "forall x. E(x, x)").unwrap();
        for p in [0.25, 0.75] {
            let est = mu_estimate_biased(&sig, 24, &g, p, 200, 5);
            assert!(est < 0.05, "p = {p}: {est}");
        }
    }

    #[test]
    fn q1_vanishes_q2_fills() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let q1 = library::q1_all_pairs_adjacent(e);
        let q2 = library::q2_distinguishing_neighbor(e);
        let s1 = ConvergenceSeries::compute(&sig, &[2, 3, 4, 8, 14], &q1, 400, 11);
        assert!(s1.converges_to(0.0, 0.02), "{:?}", s1.values);
        // Q2's limit is 1 but convergence is slow (the violation
        // probability per pair decays like (3/4)^n): measure at n large
        // enough for the trend to be unmistakable.
        let s2 = ConvergenceSeries::compute(&sig, &[8, 24, 56], &q2, 150, 11);
        assert!(s2.converges_to(1.0, 0.15), "{:?}", s2.values);
        // And the trend is in the right direction.
        assert!(s1.values.first().unwrap() >= s1.values.last().unwrap());
        assert!(s2.values.first().unwrap() <= s2.values.last().unwrap());
    }
}
