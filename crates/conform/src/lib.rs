//! `fmt-conform` — the toolbox's differential-testing subsystem.
//!
//! The workspace has four overlapping ways to decide the same
//! first-order facts: naive evaluation, relational algebra, AC⁰
//! circuits, and EF-game search with closed-form strategy theorems
//! (Theorem 3.1 and the locality toolkit of the survey). Agreement
//! between independent implementations of the *same theorem* is a far
//! stronger check than any one implementation's unit tests, so this
//! crate hunts for disagreements:
//!
//! * [`gen`] — deterministic, seed-driven generators of random finite
//!   structures and well-typed FO sentences with bounded quantifier
//!   rank (every case is a pure function of the seed);
//! * [`oracle`] — a pluggable registry of cross-checks: evaluator
//!   agreement, solver vs. closed-form game theorems, Hanf-locality
//!   invariants, parser ↔ printer roundtrips, and Datalog engine
//!   agreement;
//! * [`shrink`] — a greedy structure/formula minimizer applied to every
//!   counterexample before it is reported;
//! * [`corpus`] — self-contained textual repro cases, written into
//!   `tests/corpus/` and replayed as ordinary `cargo test` regressions;
//! * [`runner`] — the round-robin driver behind `fmtk conform`, metered
//!   under `conform.*` observability counters.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use corpus::ReproCase;
pub use oracle::Oracle;
pub use runner::{run, RunConfig, RunError, RunReport};
pub use shrink::{minimize, Shrinkable};
