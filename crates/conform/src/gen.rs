//! Seed-driven generators of random structures and FO sentences.
//!
//! Everything here is a pure function of the [`rand::rngs::StdRng`]
//! state handed in, so a `(seed, case)` pair pins the exact inputs an
//! oracle saw — the property the whole conformance harness rests on.
//!
//! Formulas are built exclusively through the normalizing smart
//! constructors ([`Formula::and`]/[`Formula::or`]), so generated ASTs
//! are exactly the fixed points of reparsing their own display — the
//! invariant the parser ↔ printer roundtrip oracle checks.

use fmt_logic::{Formula, Var};
use fmt_structures::{builders, Structure};
use rand::rngs::StdRng;
use rand::RngExt;

/// Size and shape bounds for generated cases. Small by design: the
/// oracles re-decide every case with up to four engines, and shrinking
/// wants a dense lattice of smaller neighbors.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum number of elements in a generated structure.
    pub max_size: u32,
    /// Maximum quantifier rank of a generated sentence body.
    pub max_rank: u32,
    /// Variables are drawn from `x0 .. x{max_vars-1}`.
    pub max_vars: u32,
    /// Edge probability for random graphs.
    pub edge_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_size: 6,
            max_rank: 3,
            max_vars: 3,
            edge_prob: 0.4,
        }
    }
}

/// A random directed graph over the `E/2` signature with `0 ..= max_size`
/// elements.
pub fn random_graph(rng: &mut StdRng, cfg: &GenConfig) -> Structure {
    let n = rng.random_range(0..=cfg.max_size);
    builders::random_directed_graph(n, cfg.edge_prob, rng)
}

/// A random well-formed formula over the graph signature, possibly
/// open; quantifier rank is at most `rank_budget`.
fn random_formula(rng: &mut StdRng, cfg: &GenConfig, depth: u32, rank_budget: u32) -> Formula {
    let e = fmt_structures::Signature::graph().relation("E").unwrap();
    let var = |rng: &mut StdRng| Var(rng.random_range(0..cfg.max_vars));
    if depth == 0 {
        return match rng.random_range(0..4u32) {
            0 => Formula::True,
            1 => Formula::False,
            2 => Formula::eq_vars(var(rng), var(rng)),
            _ => Formula::atom(e, &[var(rng), var(rng)]),
        };
    }
    match rng.random_range(0..8u32) {
        0 => random_formula(rng, cfg, 0, 0),
        1 => random_formula(rng, cfg, depth - 1, rank_budget).not(),
        2 => random_formula(rng, cfg, depth - 1, rank_budget).and(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        3 => random_formula(rng, cfg, depth - 1, rank_budget).or(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        4 => random_formula(rng, cfg, depth - 1, rank_budget).implies(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        5 => random_formula(rng, cfg, depth - 1, rank_budget).iff(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        6 if rank_budget > 0 => Formula::exists(
            var(rng),
            random_formula(rng, cfg, depth - 1, rank_budget - 1),
        ),
        _ if rank_budget > 0 => Formula::forall(
            var(rng),
            random_formula(rng, cfg, depth - 1, rank_budget - 1),
        ),
        _ => random_formula(rng, cfg, 0, 0),
    }
}

/// A random *sentence* over the graph signature: a random formula,
/// universally closed over its free variables.
pub fn random_sentence(rng: &mut StdRng, cfg: &GenConfig) -> Formula {
    let f = random_formula(rng, cfg, cfg.max_rank, cfg.max_rank);
    let free: Vec<Var> = f.free_vars().into_iter().collect();
    Formula::forall_many(&free, f)
}

/// A random Datalog program over EDB `e/2` with IDBs `p/2`, `q/1`, and
/// the nullary `hit`: two fixed anchor rules (so every body predicate
/// is defined) plus up to three random, possibly mutually recursive
/// rules with self-joins and unbound head variables.
pub fn random_datalog_program(rng: &mut StdRng) -> String {
    const VARS: [&str; 4] = ["x", "y", "z", "w"];
    let mut src = String::from("p(x, y) :- e(x, y). q(x) :- e(x, x). hit :- e(x, y). ");
    let atom = |rng: &mut StdRng| match rng.random_range(0..4u32) {
        0 => format!(
            "e({}, {})",
            VARS[rng.random_range(0..4usize)],
            VARS[rng.random_range(0..4usize)]
        ),
        1 => format!(
            "p({}, {})",
            VARS[rng.random_range(0..4usize)],
            VARS[rng.random_range(0..4usize)]
        ),
        2 => format!("q({})", VARS[rng.random_range(0..4usize)]),
        _ => "hit".to_owned(),
    };
    for _ in 0..rng.random_range(0..=3u32) {
        let head = match rng.random_range(0..3u32) {
            0 => format!(
                "p({}, {})",
                VARS[rng.random_range(0..4usize)],
                VARS[rng.random_range(0..4usize)]
            ),
            1 => format!("q({})", VARS[rng.random_range(0..4usize)]),
            _ => "hit".to_owned(),
        };
        let nbody = rng.random_range(1..=2u32);
        let body: Vec<String> = (0..nbody).map(|_| atom(rng)).collect();
        src.push_str(&format!("{head} :- {}. ", body.join(", ")));
    }
    src
}

/// A random *stratified* Datalog program over EDB `e/2`, and whether a
/// defect was seeded. Three fixed anchor rules define stratum 0
/// (`t` = transitive closure, `s` = sources); on top of them the
/// generator draws 1–3 negation rules (every negated atom safe, every
/// negation pointing strictly down-stratum) and up to two random
/// positive rules. With probability ~1/4 a mutant rule is appended
/// that makes the program unstratifiable (a negation inside a
/// recursive component) or unsafe (a negated variable no positive atom
/// binds) — `true` in the returned pair — so the `stratified` oracle
/// can check the lint verdict and every engine's typed error agree.
pub fn random_stratified_program(rng: &mut StdRng) -> (String, bool) {
    const VARS: [&str; 3] = ["x", "y", "z"];
    let mut src =
        String::from("t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z). s(x) :- e(x, y). ");
    // Safe negation rules; `deep` stacks a third stratum on `sink`.
    const NEG_POOL: [&str; 4] = [
        "nt(x, y) :- e(x, y), !t(y, x). ",
        "sink(x) :- e(y, x), !s(x). ",
        "skip(x, z) :- e(x, y), e(y, z), not e(x, z). ",
        "deep(x) :- s(x), !sink(x). ",
    ];
    let picks = rng.random_range(1..=3usize);
    let mut chosen = [false; NEG_POOL.len()];
    for _ in 0..picks {
        chosen[rng.random_range(0..NEG_POOL.len())] = true;
    }
    if chosen[3] {
        chosen[1] = true; // `deep` negates `sink`, so define it
    }
    for (i, rule) in NEG_POOL.iter().enumerate() {
        if chosen[i] {
            src.push_str(rule);
        }
    }
    for _ in 0..rng.random_range(0..=2u32) {
        let v = |rng: &mut StdRng| VARS[rng.random_range(0..VARS.len())];
        let (a, b, c) = (v(rng), v(rng), v(rng));
        src.push_str(&format!("s({a}) :- e({a}, {b}), t({b}, {c}). "));
    }
    let defect = rng.random_range(0..4u32) == 0;
    if defect {
        src.push_str(match rng.random_range(0..3u32) {
            // Self-negation: the tightest unstratifiable cycle.
            0 => "w(x) :- e(x, x), !w(x). ",
            // `t` negates `nt` which (positively) depends on `t`.
            1 => "nt(x, y) :- e(x, y), !t(y, x). t(x, y) :- e(x, y), !nt(x, y). ",
            // Unsafe: nothing positive binds z.
            _ => "u(x) :- e(x, x), !t(z, x). ",
        });
    }
    (src, defect)
}

/// A random query goal over one of `prog`'s IDB predicates, rendered
/// in goal syntax (`t(2, gy)?`) for `fmt_queries::magic::parse_goal`.
/// Each position is either bound to a small numeric constant —
/// occasionally outside the domain `0..max_size`, which must simply
/// yield zero answers — or left free as a variable drawn from a pool
/// small enough to repeat (repeated goal variables constrain answers
/// without binding for the rewrite).
pub fn random_goal(
    rng: &mut StdRng,
    prog: &fmt_queries::datalog::Program,
    max_size: u32,
) -> String {
    const VARS: [&str; 3] = ["gx", "gy", "gz"];
    let idb = rng.random_range(0..prog.num_idbs());
    let (name, arity) = prog.idb_info(idb);
    let args: Vec<String> = (0..arity)
        .map(|_| {
            if rng.random_range(0..2u32) == 0 {
                rng.random_range(0..max_size + 2).to_string()
            } else {
                VARS[rng.random_range(0..VARS.len())].to_owned()
            }
        })
        .collect();
    if args.is_empty() {
        format!("{name}?")
    } else {
        format!("{name}({})?", args.join(", "))
    }
}

/// One operation of an incremental-maintenance trace over the graph
/// signature's `E/2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Queue insertion of the edge `(u, v)`.
    Insert(u32, u32),
    /// Queue retraction of the edge `(u, v)` (retracting an absent
    /// edge is a legal no-op, and traces deliberately contain some).
    Retract(u32, u32),
    /// Apply everything queued and restore the fixpoint.
    Poll,
}

/// A domain size plus an operation sequence: the input replayed
/// against `DatalogRuntime` by the `incremental` oracle and the
/// incremental proptests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateTrace {
    /// Domain size `n`; every vertex in `ops` is `< n`.
    pub domain: u32,
    /// The operations, in order.
    pub ops: Vec<UpdateOp>,
}

impl UpdateTrace {
    /// Compact one-line form (`+0,1 -0,1 poll`), the `trace` param of
    /// serialized `incremental` repro cases. An empty trace prints as
    /// the empty string.
    pub fn to_compact(&self) -> String {
        let words: Vec<String> = self
            .ops
            .iter()
            .map(|op| match op {
                UpdateOp::Insert(u, v) => format!("+{u},{v}"),
                UpdateOp::Retract(u, v) => format!("-{u},{v}"),
                UpdateOp::Poll => "poll".to_owned(),
            })
            .collect();
        words.join(" ")
    }

    /// Parses the compact form back; inverse of
    /// [`UpdateTrace::to_compact`] for in-domain traces.
    pub fn parse_compact(domain: u32, text: &str) -> Result<UpdateTrace, String> {
        let mut ops = Vec::new();
        for word in text.split_whitespace() {
            ops.push(parse_update_op(word)?);
        }
        let trace = UpdateTrace { domain, ops };
        for op in &trace.ops {
            if let UpdateOp::Insert(u, v) | UpdateOp::Retract(u, v) = *op {
                if u >= domain || v >= domain {
                    return Err(format!("edge ({u}, {v}) is outside the domain 0..{domain}"));
                }
            }
        }
        Ok(trace)
    }
}

/// Parses one trace token: `+u,v`, `-u,v`, or `poll`.
pub fn parse_update_op(word: &str) -> Result<UpdateOp, String> {
    if word == "poll" {
        return Ok(UpdateOp::Poll);
    }
    let (sign, rest) = word
        .split_at_checked(1)
        .ok_or_else(|| "empty update op".to_owned())?;
    let insert = match sign {
        "+" => true,
        "-" => false,
        _ => return Err(format!("bad update op {word:?} (want +u,v | -u,v | poll)")),
    };
    let (u, v) = rest
        .split_once(',')
        .ok_or_else(|| format!("bad update op {word:?} (want +u,v | -u,v | poll)"))?;
    let u: u32 = u
        .trim()
        .parse()
        .map_err(|e| format!("bad vertex in {word:?}: {e}"))?;
    let v: u32 = v
        .trim()
        .parse()
        .map_err(|e| format!("bad vertex in {word:?}: {e}"))?;
    Ok(if insert {
        UpdateOp::Insert(u, v)
    } else {
        UpdateOp::Retract(u, v)
    })
}

/// A random update trace over a domain of `1 ..= 5` vertices: a mix of
/// insertions (some duplicated), retractions (some of absent edges),
/// and interior polls, always ending with a poll so the final state is
/// observed.
pub fn random_update_trace(rng: &mut StdRng) -> UpdateTrace {
    let domain = rng.random_range(1..=5u32);
    let len = rng.random_range(1..=20usize);
    let mut ops = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let u = rng.random_range(0..domain);
        let v = rng.random_range(0..domain);
        ops.push(match rng.random_range(0..10u32) {
            0..=4 => UpdateOp::Insert(u, v),
            5..=7 => UpdateOp::Retract(u, v),
            _ => UpdateOp::Poll,
        });
    }
    ops.push(UpdateOp::Poll);
    UpdateTrace { domain, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert_eq!(random_graph(&mut a, &cfg), random_graph(&mut b, &cfg));
            assert_eq!(random_sentence(&mut a, &cfg), random_sentence(&mut b, &cfg));
            assert_eq!(
                random_datalog_program(&mut a),
                random_datalog_program(&mut b)
            );
            assert_eq!(
                random_stratified_program(&mut a),
                random_stratified_program(&mut b)
            );
            let prog = fmt_queries::datalog::Program::transitive_closure();
            assert_eq!(random_goal(&mut a, &prog, 6), random_goal(&mut b, &prog, 6));
        }
    }

    #[test]
    fn goals_parse_and_resolve_against_their_program() {
        let sig = fmt_structures::Signature::graph();
        let mut rng = StdRng::seed_from_u64(31);
        let (mut bound, mut free) = (0, 0);
        for _ in 0..100 {
            let (src, _) = random_stratified_program(&mut rng);
            let prog = fmt_queries::datalog::Program::parse(&sig, &src).unwrap();
            let gsrc = random_goal(&mut rng, &prog, 6);
            let goal =
                fmt_queries::magic::parse_goal(&gsrc).unwrap_or_else(|e| panic!("{gsrc}: {e}"));
            let rg = fmt_queries::magic::resolve_goal(&prog, &goal)
                .unwrap_or_else(|e| panic!("{gsrc}: {e}"));
            if rg.mask.iter().any(|&b| b) {
                bound += 1;
            } else {
                free += 1;
            }
        }
        // The generator must exercise both the pruning and the
        // transparent (all-free) rewrite paths.
        assert!(bound >= 20, "only {bound} bound goals in 100");
        assert!(free >= 10, "only {free} all-free goals in 100");
    }

    #[test]
    fn stratified_programs_parse_and_mix_defects() {
        let sig = fmt_structures::Signature::graph();
        let mut rng = StdRng::seed_from_u64(23);
        let (mut clean, mut mutated) = (0, 0);
        for _ in 0..100 {
            let (src, defect) = random_stratified_program(&mut rng);
            fmt_queries::datalog::Program::parse(&sig, &src)
                .unwrap_or_else(|e| panic!("stratified program must parse: {e}\n{src}"));
            assert!(src.contains('!') || src.contains("not "), "{src}");
            if defect {
                mutated += 1;
            } else {
                clean += 1;
            }
        }
        assert!(clean >= 20, "only {clean} clean programs in 100");
        assert!(mutated >= 5, "only {mutated} mutants in 100");
    }

    #[test]
    fn sentences_are_wellformed_bounded_sentences() {
        let cfg = GenConfig::default();
        let sig = fmt_structures::Signature::graph();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let f = random_sentence(&mut rng, &cfg);
            assert!(f.is_sentence());
            assert!(f.well_formed(&sig).is_ok());
            // Closing adds at most max_vars quantifiers on top.
            assert!(f.quantifier_rank() <= cfg.max_rank + cfg.max_vars);
        }
    }

    #[test]
    fn update_traces_roundtrip_and_end_with_poll() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let t = random_update_trace(&mut rng);
            assert!(t.domain >= 1 && t.domain <= 5);
            assert_eq!(t.ops.last(), Some(&UpdateOp::Poll));
            for op in &t.ops {
                if let UpdateOp::Insert(u, v) | UpdateOp::Retract(u, v) = *op {
                    assert!(u < t.domain && v < t.domain);
                }
            }
            let back = UpdateTrace::parse_compact(t.domain, &t.to_compact()).unwrap();
            assert_eq!(back, t);
        }
        assert!(UpdateTrace::parse_compact(2, "+0,5").is_err());
        assert!(UpdateTrace::parse_compact(2, "~0,1").is_err());
        assert!(UpdateTrace::parse_compact(2, "+01").is_err());
        assert_eq!(UpdateTrace::parse_compact(3, "").unwrap().ops, Vec::new());
    }

    #[test]
    fn programs_parse_and_sizes_bounded() {
        let cfg = GenConfig::default();
        let sig = fmt_structures::Signature::graph();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let s = random_graph(&mut rng, &cfg);
            assert!(s.size() <= cfg.max_size);
            let src = random_datalog_program(&mut rng);
            fmt_queries::datalog::Program::parse(&sig, &src)
                .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        }
    }
}
