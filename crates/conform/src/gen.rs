//! Seed-driven generators of random structures and FO sentences.
//!
//! Everything here is a pure function of the [`rand::rngs::StdRng`]
//! state handed in, so a `(seed, case)` pair pins the exact inputs an
//! oracle saw — the property the whole conformance harness rests on.
//!
//! Formulas are built exclusively through the normalizing smart
//! constructors ([`Formula::and`]/[`Formula::or`]), so generated ASTs
//! are exactly the fixed points of reparsing their own display — the
//! invariant the parser ↔ printer roundtrip oracle checks.

use fmt_logic::{Formula, Var};
use fmt_structures::{builders, Structure};
use rand::rngs::StdRng;
use rand::RngExt;

/// Size and shape bounds for generated cases. Small by design: the
/// oracles re-decide every case with up to four engines, and shrinking
/// wants a dense lattice of smaller neighbors.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum number of elements in a generated structure.
    pub max_size: u32,
    /// Maximum quantifier rank of a generated sentence body.
    pub max_rank: u32,
    /// Variables are drawn from `x0 .. x{max_vars-1}`.
    pub max_vars: u32,
    /// Edge probability for random graphs.
    pub edge_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_size: 6,
            max_rank: 3,
            max_vars: 3,
            edge_prob: 0.4,
        }
    }
}

/// A random directed graph over the `E/2` signature with `0 ..= max_size`
/// elements.
pub fn random_graph(rng: &mut StdRng, cfg: &GenConfig) -> Structure {
    let n = rng.random_range(0..=cfg.max_size);
    builders::random_directed_graph(n, cfg.edge_prob, rng)
}

/// A random well-formed formula over the graph signature, possibly
/// open; quantifier rank is at most `rank_budget`.
fn random_formula(rng: &mut StdRng, cfg: &GenConfig, depth: u32, rank_budget: u32) -> Formula {
    let e = fmt_structures::Signature::graph().relation("E").unwrap();
    let var = |rng: &mut StdRng| Var(rng.random_range(0..cfg.max_vars));
    if depth == 0 {
        return match rng.random_range(0..4u32) {
            0 => Formula::True,
            1 => Formula::False,
            2 => Formula::eq_vars(var(rng), var(rng)),
            _ => Formula::atom(e, &[var(rng), var(rng)]),
        };
    }
    match rng.random_range(0..8u32) {
        0 => random_formula(rng, cfg, 0, 0),
        1 => random_formula(rng, cfg, depth - 1, rank_budget).not(),
        2 => random_formula(rng, cfg, depth - 1, rank_budget).and(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        3 => random_formula(rng, cfg, depth - 1, rank_budget).or(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        4 => random_formula(rng, cfg, depth - 1, rank_budget).implies(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        5 => random_formula(rng, cfg, depth - 1, rank_budget).iff(random_formula(
            rng,
            cfg,
            depth - 1,
            rank_budget,
        )),
        6 if rank_budget > 0 => Formula::exists(
            var(rng),
            random_formula(rng, cfg, depth - 1, rank_budget - 1),
        ),
        _ if rank_budget > 0 => Formula::forall(
            var(rng),
            random_formula(rng, cfg, depth - 1, rank_budget - 1),
        ),
        _ => random_formula(rng, cfg, 0, 0),
    }
}

/// A random *sentence* over the graph signature: a random formula,
/// universally closed over its free variables.
pub fn random_sentence(rng: &mut StdRng, cfg: &GenConfig) -> Formula {
    let f = random_formula(rng, cfg, cfg.max_rank, cfg.max_rank);
    let free: Vec<Var> = f.free_vars().into_iter().collect();
    Formula::forall_many(&free, f)
}

/// A random Datalog program over EDB `e/2` with IDBs `p/2`, `q/1`, and
/// the nullary `hit`: two fixed anchor rules (so every body predicate
/// is defined) plus up to three random, possibly mutually recursive
/// rules with self-joins and unbound head variables.
pub fn random_datalog_program(rng: &mut StdRng) -> String {
    const VARS: [&str; 4] = ["x", "y", "z", "w"];
    let mut src = String::from("p(x, y) :- e(x, y). q(x) :- e(x, x). hit :- e(x, y). ");
    let atom = |rng: &mut StdRng| match rng.random_range(0..4u32) {
        0 => format!(
            "e({}, {})",
            VARS[rng.random_range(0..4usize)],
            VARS[rng.random_range(0..4usize)]
        ),
        1 => format!(
            "p({}, {})",
            VARS[rng.random_range(0..4usize)],
            VARS[rng.random_range(0..4usize)]
        ),
        2 => format!("q({})", VARS[rng.random_range(0..4usize)]),
        _ => "hit".to_owned(),
    };
    for _ in 0..rng.random_range(0..=3u32) {
        let head = match rng.random_range(0..3u32) {
            0 => format!(
                "p({}, {})",
                VARS[rng.random_range(0..4usize)],
                VARS[rng.random_range(0..4usize)]
            ),
            1 => format!("q({})", VARS[rng.random_range(0..4usize)]),
            _ => "hit".to_owned(),
        };
        let nbody = rng.random_range(1..=2u32);
        let body: Vec<String> = (0..nbody).map(|_| atom(rng)).collect();
        src.push_str(&format!("{head} :- {}. ", body.join(", ")));
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert_eq!(random_graph(&mut a, &cfg), random_graph(&mut b, &cfg));
            assert_eq!(random_sentence(&mut a, &cfg), random_sentence(&mut b, &cfg));
            assert_eq!(
                random_datalog_program(&mut a),
                random_datalog_program(&mut b)
            );
        }
    }

    #[test]
    fn sentences_are_wellformed_bounded_sentences() {
        let cfg = GenConfig::default();
        let sig = fmt_structures::Signature::graph();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let f = random_sentence(&mut rng, &cfg);
            assert!(f.is_sentence());
            assert!(f.well_formed(&sig).is_ok());
            // Closing adds at most max_vars quantifiers on top.
            assert!(f.quantifier_rank() <= cfg.max_rank + cfg.max_vars);
        }
    }

    #[test]
    fn programs_parse_and_sizes_bounded() {
        let cfg = GenConfig::default();
        let sig = fmt_structures::Signature::graph();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let s = random_graph(&mut rng, &cfg);
            assert!(s.size() <= cfg.max_size);
            let src = random_datalog_program(&mut rng);
            fmt_queries::datalog::Program::parse(&sig, &src)
                .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        }
    }
}
