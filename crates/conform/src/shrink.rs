//! Greedy counterexample minimization (delta-debugging style).
//!
//! The vendored `proptest` stand-in deliberately has no shrinking, so
//! this module supplies it for the whole workspace: a [`Shrinkable`]
//! trait producing strictly smaller candidate values, and a greedy
//! [`minimize`] loop that repeatedly commits the first candidate on
//! which the failure still reproduces. Oracles shrink every
//! counterexample before serializing it; ordinary proptests can opt in
//! by calling [`minimize`] in their failure path.

use crate::gen::UpdateTrace;
use fmt_logic::Formula;
use fmt_obs::Counter;
use fmt_structures::{Structure, StructureBuilder};

static OBS_SHRINK_STEPS: Counter = Counter::new("conform.shrink_steps");

/// A value with a notion of strictly smaller neighbors.
///
/// Implementations must guarantee every candidate is *smaller* in some
/// well-founded measure (node count, tuple count, magnitude), so greedy
/// descent terminates.
pub trait Shrinkable: Sized + Clone {
    /// Strictly smaller variants, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self>;
}

/// Greedily minimizes `value` under the failure predicate: repeatedly
/// replaces it with the first shrink candidate on which `still_fails`
/// holds, until no candidate fails or `max_steps` predicate evaluations
/// are spent. Returns the minimized value and the number of candidates
/// tried (also recorded on `conform.shrink_steps`).
pub fn minimize<T: Shrinkable>(
    value: T,
    still_fails: &mut impl FnMut(&T) -> bool,
    max_steps: usize,
) -> (T, usize) {
    let mut value = value;
    let mut steps = 0usize;
    'descend: while steps < max_steps {
        for cand in value.shrink_candidates() {
            steps += 1;
            if still_fails(&cand) {
                value = cand;
                continue 'descend;
            }
            if steps >= max_steps {
                break 'descend;
            }
        }
        break;
    }
    OBS_SHRINK_STEPS.add(steps as u64);
    (value, steps)
}

impl Shrinkable for Structure {
    /// Element drops first (each removes a whole induced row/column of
    /// tuples), then single-tuple drops. Element drops are skipped when
    /// the signature has constants, since the induced substructure is
    /// undefined if it evicts a constant's interpretation.
    fn shrink_candidates(&self) -> Vec<Structure> {
        let mut out = Vec::new();
        if self.signature().num_constants() == 0 {
            for dropped in self.domain() {
                let keep: Vec<u32> = self.domain().filter(|&v| v != dropped).collect();
                let (sub, _) = self.induced(&keep);
                out.push(sub);
            }
        }
        for (r, _, _) in self.signature().relations() {
            for skip in 0..self.rel(r).len() {
                let mut b = StructureBuilder::new(self.signature().clone(), self.size());
                for (r2, _, _) in self.signature().relations() {
                    for (i, t) in self.rel(r2).iter().enumerate() {
                        if r2 == r && i == skip {
                            continue;
                        }
                        b.add(r2, t).expect("tuple was valid in the original");
                    }
                }
                for (c, _) in self.signature().constants() {
                    b.set_constant(c, self.constant(c));
                }
                out.push(b.build().expect("smaller structure is valid"));
            }
        }
        out
    }
}

impl Shrinkable for Formula {
    /// Constant collapses first, then subformula promotion and
    /// conjunct/disjunct dropping. All candidates preserve the
    /// normalized shape (`And`/`Or` stay flat with ≥ 2 children) that
    /// the generators produce, so shrunk formulas still roundtrip
    /// through the parser.
    fn shrink_candidates(&self) -> Vec<Formula> {
        let mut out = Vec::new();
        if !matches!(self, Formula::True) {
            out.push(Formula::True);
        }
        if !matches!(self, Formula::False) {
            out.push(Formula::False);
        }
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => {}
            Formula::Not(g) => out.push((**g).clone()),
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                out.push((**a).clone());
                out.push((**b).clone());
            }
            Formula::Exists(_, g) | Formula::Forall(_, g) => out.push((**g).clone()),
            Formula::And(fs) => {
                out.extend(fs.iter().cloned());
                if fs.len() > 2 {
                    for i in 0..fs.len() {
                        let rest: Vec<Formula> = fs
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, g)| g.clone())
                            .collect();
                        out.push(Formula::And(rest));
                    }
                }
            }
            Formula::Or(fs) => {
                out.extend(fs.iter().cloned());
                if fs.len() > 2 {
                    for i in 0..fs.len() {
                        let rest: Vec<Formula> = fs
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, g)| g.clone())
                            .collect();
                        out.push(Formula::Or(rest));
                    }
                }
            }
        }
        out
    }
}

impl Shrinkable for UpdateTrace {
    /// Halving first (drop the first or second half of the ops — the
    /// delta-debugging move that kills long traces fast), then
    /// single-op drops. The domain is left alone: every remaining op
    /// stays in range, and the failing poll usually depends on it.
    fn shrink_candidates(&self) -> Vec<UpdateTrace> {
        let mut out = Vec::new();
        let n = self.ops.len();
        if n >= 2 {
            for half in [&self.ops[n / 2..], &self.ops[..n / 2]] {
                out.push(UpdateTrace {
                    domain: self.domain,
                    ops: half.to_vec(),
                });
            }
        }
        for i in 0..n {
            let ops: Vec<_> = self
                .ops
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, op)| *op)
                .collect();
            out.push(UpdateTrace {
                domain: self.domain,
                ops,
            });
        }
        out
    }
}

/// Numeric parameters shrink toward zero: `0`, halving, decrement.
impl Shrinkable for u64 {
    fn shrink_candidates(&self) -> Vec<u64> {
        let v = *self;
        let mut out = Vec::new();
        for c in [0, v / 2, v.saturating_sub(1)] {
            if c < v && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

impl Shrinkable for u32 {
    fn shrink_candidates(&self) -> Vec<u32> {
        (*self as u64)
            .shrink_candidates()
            .into_iter()
            .map(|v| v as u32)
            .collect()
    }
}

/// Parameter tuples shrink one coordinate at a time.
impl<A: Shrinkable, B: Shrinkable> Shrinkable for (A, B) {
    fn shrink_candidates(&self) -> Vec<(A, B)> {
        let mut out = Vec::new();
        for a in self.0.shrink_candidates() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink_candidates() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

impl<A: Shrinkable, B: Shrinkable, C: Shrinkable> Shrinkable for (A, B, C) {
    fn shrink_candidates(&self) -> Vec<(A, B, C)> {
        let mut out = Vec::new();
        for a in self.0.shrink_candidates() {
            out.push((a, self.1.clone(), self.2.clone()));
        }
        for b in self.1.shrink_candidates() {
            out.push((self.0.clone(), b, self.2.clone()));
        }
        for c in self.2.shrink_candidates() {
            out.push((self.0.clone(), self.1.clone(), c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn structure_candidates_are_smaller() {
        let s = builders::directed_cycle(4);
        for c in s.shrink_candidates() {
            assert!(
                c.size() < s.size() || c.num_tuples() < s.num_tuples(),
                "candidate not smaller"
            );
        }
        // 4 element drops + 4 tuple drops.
        assert_eq!(s.shrink_candidates().len(), 8);
    }

    #[test]
    fn formula_candidates_preserve_normalization() {
        let sig = fmt_structures::Signature::graph();
        let e = sig.relation("E").unwrap();
        let atom = |i, j| Formula::atom(e, &[fmt_logic::Var(i), fmt_logic::Var(j)]);
        let f = atom(0, 1).and(atom(1, 0)).and(Formula::True);
        for c in f.shrink_candidates() {
            if let Formula::And(fs) | Formula::Or(fs) = &c {
                assert!(fs.len() >= 2, "degenerate connective after shrink: {c:?}");
            }
        }
    }

    #[test]
    fn minimize_reaches_small_fixpoint() {
        // Failure: "structure has at least one edge". Minimal failing
        // example is a single-edge structure on few vertices.
        let s = builders::complete_graph(4);
        let (min, steps) = minimize(s, &mut |t: &Structure| t.num_tuples() >= 1, 10_000);
        assert_eq!(min.num_tuples(), 1);
        assert!(min.size() <= 2);
        assert!(steps > 0);
    }

    #[test]
    fn minimize_on_numbers() {
        // Failure: m >= 5. Greedy descent must land exactly on 5.
        let (m, _) = minimize(40u64, &mut |&v| v >= 5, 1000);
        assert_eq!(m, 5);
    }

    #[test]
    fn update_traces_shrink_to_the_guilty_op() {
        use crate::gen::UpdateOp;
        // Failure: "the trace still retracts (1, 2)". Minimal failing
        // trace is that single retraction.
        let t = UpdateTrace {
            domain: 4,
            ops: vec![
                UpdateOp::Insert(0, 1),
                UpdateOp::Poll,
                UpdateOp::Insert(1, 2),
                UpdateOp::Retract(1, 2),
                UpdateOp::Poll,
                UpdateOp::Insert(2, 3),
            ],
        };
        let (min, _) = minimize(
            t,
            &mut |c: &UpdateTrace| c.ops.contains(&UpdateOp::Retract(1, 2)),
            10_000,
        );
        assert_eq!(min.ops, vec![UpdateOp::Retract(1, 2)]);
        assert_eq!(min.domain, 4);
    }

    #[test]
    fn minimize_respects_step_cap() {
        let (_, steps) = minimize(u64::MAX, &mut |&v| v > 0, 7);
        assert!(steps <= 7);
    }
}
