//! The round-robin conformance driver behind `fmtk conform`.
//!
//! Case `i` of a run is handed to oracle `i mod |oracles|` with an RNG
//! derived deterministically from `(seed, i)`, so any failure is
//! reproducible from the `(seed, case)` pair alone — independently of
//! how many cases the run executes or which oracles are filtered in.

use crate::corpus::ReproCase;
use crate::oracle::{all_oracles, find_oracle, Oracle};
use fmt_obs::Counter;
use fmt_structures::budget::{Budget, Exhausted};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

static OBS_CASES: Counter = Counter::new("conform.cases");
static OBS_DISAGREEMENTS: Counter = Counter::new("conform.disagreements");

/// Configuration of one conformance hunt.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Master seed; every case RNG is derived from it.
    pub seed: u64,
    /// Number of cases to run (spread round-robin over the oracles).
    pub cases: u64,
    /// Restrict the run to a single oracle by name.
    pub oracle: Option<String>,
    /// Where to serialize failing cases; `None` keeps them in memory.
    pub corpus_dir: Option<PathBuf>,
    /// Budget for the hunt as a whole, ticked once per case; defaults
    /// to [`Budget::unlimited`].
    pub budget: Budget,
}

/// Why a conformance hunt aborted before completing its cases.
#[derive(Debug)]
pub enum RunError {
    /// The run's budget ran out mid-hunt (`fmtk conform --fuel`).
    Budget(Exhausted),
    /// Configuration or I/O failure.
    Other(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Budget(e) => write!(f, "{e}"),
            RunError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for RunError {}

impl From<String> for RunError {
    fn from(msg: String) -> RunError {
        RunError::Other(msg)
    }
}

/// Outcome of a conformance hunt.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Total cases executed.
    pub cases_run: u64,
    /// Cases per oracle name, in registry order.
    pub per_oracle: Vec<(String, u64)>,
    /// Every (already shrunk) disagreement found.
    pub failures: Vec<ReproCase>,
    /// Corpus files written, one per failure.
    pub written: Vec<PathBuf>,
}

impl RunReport {
    /// `true` when every engine agreed on every case.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Derives the RNG for case `i` of a run: splitmix-style mixing so
/// nearby case indices get unrelated streams.
fn case_rng(seed: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case.wrapping_mul(0xD1B5_4A32_D192_ED03)),
    )
}

/// Runs a conformance hunt. Failures are collected (and, with a corpus
/// directory, serialized) rather than aborting the run, so one bug
/// cannot mask another.
pub fn run(cfg: &RunConfig) -> Result<RunReport, RunError> {
    let oracles: Vec<Box<dyn Oracle>> = match &cfg.oracle {
        Some(name) => vec![find_oracle(name).ok_or_else(|| {
            let known: Vec<&str> = all_oracles().iter().map(|o| o.name()).collect();
            RunError::Other(format!(
                "unknown oracle {name:?} (known: {})",
                known.join(", ")
            ))
        })?],
        None => all_oracles(),
    };
    let mut report = RunReport {
        per_oracle: oracles.iter().map(|o| (o.name().to_owned(), 0)).collect(),
        ..RunReport::default()
    };
    for case in 0..cfg.cases {
        cfg.budget
            .tick("conform.runner")
            .map_err(RunError::Budget)?;
        let slot = (case % oracles.len() as u64) as usize;
        let oracle = &oracles[slot];
        let mut rng = case_rng(cfg.seed, case);
        OBS_CASES.incr();
        report.cases_run += 1;
        report.per_oracle[slot].1 += 1;
        if let Some(repro) = oracle.run_case(&mut rng, cfg.seed, case) {
            OBS_DISAGREEMENTS.incr();
            if let Some(dir) = &cfg.corpus_dir {
                let path = repro
                    .write_to(dir)
                    .map_err(|e| RunError::Other(format!("writing {}: {e}", dir.display())))?;
                report.written.push(path);
            }
            report.failures.push(repro);
        }
    }
    Ok(report)
}

/// Replays one serialized case with its recorded oracle: `Ok` when the
/// engines agree, `Err` when the disagreement still reproduces.
pub fn replay_case(case: &ReproCase) -> Result<(), String> {
    let oracle = find_oracle(&case.oracle)
        .ok_or_else(|| format!("case names unknown oracle {:?}", case.oracle))?;
    oracle.replay(case)
}

/// Parses and replays a case file's text.
pub fn replay_text(text: &str) -> Result<(), String> {
    replay_case(&ReproCase::from_text(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_on_a_correct_toolbox() {
        let report = run(&RunConfig {
            seed: 42,
            cases: 33,
            ..RunConfig::default()
        })
        .unwrap();
        assert_eq!(report.cases_run, 33);
        assert!(report.clean(), "failures: {:?}", report.failures);
        // Round-robin: 33 cases over 11 oracles = 3 each.
        assert!(report.per_oracle.iter().all(|(_, n)| *n == 3));
    }

    #[test]
    fn hunt_respects_its_budget() {
        let err = run(&RunConfig {
            seed: 42,
            cases: 24,
            budget: Budget::with_fuel(5),
            ..RunConfig::default()
        })
        .unwrap_err();
        match err {
            RunError::Budget(e) => assert_eq!(e.spent, 6),
            RunError::Other(msg) => panic!("expected budget exhaustion, got {msg}"),
        }
    }

    #[test]
    fn oracle_filter_and_unknown_oracle() {
        let report = run(&RunConfig {
            seed: 7,
            cases: 5,
            oracle: Some("games-orders".to_owned()),
            ..RunConfig::default()
        })
        .unwrap();
        assert_eq!(report.per_oracle, vec![("games-orders".to_owned(), 5)]);
        assert!(run(&RunConfig {
            oracle: Some("astrology".to_owned()),
            ..RunConfig::default()
        })
        .is_err());
    }

    #[test]
    fn case_rngs_are_decorrelated() {
        use rand::Rng;
        let mut a = case_rng(1, 0);
        let mut b = case_rng(1, 1);
        let mut c = case_rng(2, 0);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn replay_text_rejects_garbage() {
        assert!(replay_text("not a case").is_err());
        assert!(replay_text("oracle: astrology\n").is_err());
    }
}
