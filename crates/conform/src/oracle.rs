//! The oracle registry: every way the toolbox can disagree with itself.
//!
//! An [`Oracle`] runs one random case against two or more independent
//! deciders of the same fact and, on disagreement, shrinks the inputs
//! greedily and serializes a [`ReproCase`]. The same oracle later
//! *replays* serialized cases, which is how `tests/conform_corpus.rs`
//! turns every discovered bug into a permanent regression test.
//!
//! Registered oracles:
//!
//! | name             | cross-check                                               |
//! |------------------|-----------------------------------------------------------|
//! | `eval-agreement` | naive vs. relational-algebra vs. AC⁰ circuit sentences    |
//! | `parse-display`  | `parse(display(φ)) == φ` exactly                          |
//! | `games-sets`     | EF solver vs. the closed-form pure-set win predicate      |
//! | `games-orders`   | EF solver vs. Theorem 3.1 (`L_m ≡ₙ L_k`, `m,k ≥ 2ⁿ − 1`)  |
//! | `hanf-locality`  | census invariants + Hanf's theorem vs. direct game search |
//! | `datalog-engines`| naive / scan / indexed·threaded semi-naive fixpoints      |
//! | `lint-clean`     | lint-clean inputs evaluate without panics and all engines agree |
//! | `budget-fault`   | engines under tight fuel budgets finish, agree, and fail cleanly |
//! | `incremental`    | insert/retract runtime vs. from-scratch recomputation at every poll |
//! | `stratified`     | lint verdict ⇔ typed eval error on negated programs; 1-vs-3-thread agreement |
//! | `magic`          | goal answers of the magic-sets rewrite == goal-filtered full materialization |

use crate::corpus::ReproCase;
use crate::gen::{self, GenConfig};
use crate::shrink::minimize;
use fmt_eval::{circuit, naive, relalg};
use fmt_games::closed_form::{orders_equivalent, sets_duplicator_wins};
use fmt_games::solver::EfSolver;
use fmt_lint::LintConfig;
use fmt_locality::hanf::hanf_equivalent;
use fmt_logic::{parser, Formula};
use fmt_obs::Counter;
use fmt_queries::datalog::{EvalError, Program};
use fmt_queries::magic::{self, MagicError};
use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::{builders, parse as sparse, Elem, Structure};
use rand::rngs::StdRng;
use rand::RngExt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Shrink budget per counterexample (predicate evaluations).
const SHRINK_BUDGET: usize = 2_000;

static OBS_EVAL: Counter = Counter::new("conform.oracle.eval_agreement");
static OBS_PARSE: Counter = Counter::new("conform.oracle.parse_display");
static OBS_SETS: Counter = Counter::new("conform.oracle.games_sets");
static OBS_ORDERS: Counter = Counter::new("conform.oracle.games_orders");
static OBS_HANF: Counter = Counter::new("conform.oracle.hanf_locality");
static OBS_DATALOG: Counter = Counter::new("conform.oracle.datalog_engines");
static OBS_LINT: Counter = Counter::new("conform.oracle.lint_clean");
static OBS_BUDGET: Counter = Counter::new("conform.oracle.budget_fault");
static OBS_INCR: Counter = Counter::new("conform.oracle.incremental");
static OBS_STRAT: Counter = Counter::new("conform.oracle.stratified");
static OBS_MAGIC: Counter = Counter::new("conform.oracle.magic");

/// A differential cross-check that can both hunt (run a fresh random
/// case) and replay (re-run a serialized counterexample).
pub trait Oracle {
    /// The registry name, used in `--oracle` filters and case files.
    fn name(&self) -> &'static str;

    /// Runs one random case. Returns a shrunk [`ReproCase`] on
    /// disagreement, `None` when all engines agree.
    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase>;

    /// Replays a serialized case: `Ok` if the engines now agree,
    /// `Err` with a description if the disagreement still reproduces
    /// (or the case is malformed).
    fn replay(&self, case: &ReproCase) -> Result<(), String>;
}

/// All registered oracles, in round-robin order.
pub fn all_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(EvalAgreement),
        Box::new(ParseDisplay),
        Box::new(GamesSets),
        Box::new(GamesOrders),
        Box::new(HanfLocality),
        Box::new(DatalogEngines),
        Box::new(LintClean),
        Box::new(BudgetFault),
        Box::new(Incremental),
        Box::new(Stratified),
        Box::new(Magic),
    ]
}

/// Finds an oracle by name.
pub fn find_oracle(name: &str) -> Option<Box<dyn Oracle>> {
    all_oracles().into_iter().find(|o| o.name() == name)
}

fn graph_sig_decl() -> Vec<(String, usize)> {
    vec![("E".to_owned(), 2)]
}

fn case_skeleton(oracle: &dyn Oracle, seed: u64, case: u64, note: String) -> ReproCase {
    ReproCase {
        oracle: oracle.name().to_owned(),
        seed,
        case,
        note,
        sig: graph_sig_decl(),
        ..ReproCase::default()
    }
}

// ---------------------------------------------------------------------
// eval-agreement
// ---------------------------------------------------------------------

/// Naive, relational-algebra, and circuit evaluation must return the
/// same truth value for every sentence on every structure.
#[derive(Debug)]
pub struct EvalAgreement;

/// The three engines' verdicts on a sentence.
fn eval_verdicts(s: &Structure, f: &Formula) -> (bool, bool, bool) {
    let nv = naive::check_sentence(s, f);
    let ra = relalg::check_sentence(s, f);
    let (c, layout) = circuit::compile(s.signature(), f, s.size());
    let cv = c.eval(&layout.encode(s));
    (nv, ra, cv)
}

fn eval_disagrees(s: &Structure, f: &Formula) -> bool {
    if !f.is_sentence() || f.well_formed(s.signature()).is_err() {
        return false;
    }
    let (nv, ra, cv) = eval_verdicts(s, f);
    nv != ra || nv != cv
}

impl Oracle for EvalAgreement {
    fn name(&self) -> &'static str {
        "eval-agreement"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_EVAL.incr();
        let cfg = GenConfig::default();
        let s = gen::random_graph(rng, &cfg);
        let f = gen::random_sentence(rng, &cfg);
        if !eval_disagrees(&s, &f) {
            return None;
        }
        let ((s, f), _) = minimize(
            (s, f),
            &mut |(s, f): &(Structure, Formula)| eval_disagrees(s, f),
            SHRINK_BUDGET,
        );
        let (nv, ra, cv) = eval_verdicts(&s, &f);
        let mut c = case_skeleton(
            self,
            seed,
            case,
            format!("naive={nv} relalg={ra} circuit={cv}"),
        );
        c.structures.push(("A".to_owned(), sparse::to_text(&s)));
        c.formula = Some(format!("{}", f.display(s.signature())));
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let s = case.structure("A")?;
        let text = case.formula.as_ref().ok_or("case has no formula")?;
        let f = parser::parse_formula(s.signature(), text).map_err(|e| e.to_string())?;
        let (nv, ra, cv) = eval_verdicts(&s, &f);
        if nv != ra || nv != cv {
            return Err(format!(
                "engines still disagree: naive={nv} relalg={ra} circuit={cv}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// parse-display
// ---------------------------------------------------------------------

/// Parsing the pretty-printed form of a normalized formula must return
/// the identical AST (satellite: the canonical `x<digits>` parser rule
/// exists exactly so this holds).
#[derive(Debug)]
pub struct ParseDisplay;

fn roundtrips(f: &Formula) -> bool {
    let sig = fmt_structures::Signature::graph();
    let printed = format!("{}", f.display(&sig));
    match parser::parse_formula(&sig, &printed) {
        Ok(g) => g == *f,
        Err(_) => false,
    }
}

impl Oracle for ParseDisplay {
    fn name(&self) -> &'static str {
        "parse-display"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_PARSE.incr();
        let cfg = GenConfig::default();
        let f = gen::random_sentence(rng, &cfg);
        if roundtrips(&f) {
            return None;
        }
        let (f, _) = minimize(f, &mut |g: &Formula| !roundtrips(g), SHRINK_BUDGET);
        let sig = fmt_structures::Signature::graph();
        let mut c = case_skeleton(self, seed, case, "parse(display(f)) != f".to_owned());
        c.formula = Some(format!("{}", f.display(&sig)));
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let sig = case.signature();
        let text = case.formula.as_ref().ok_or("case has no formula")?;
        let f = parser::parse_formula(&sig, text).map_err(|e| e.to_string())?;
        // The invariant on replay: the parsed formula is a fixed point
        // of display ∘ parse.
        let printed = format!("{}", f.display(&sig));
        let g = parser::parse_formula(&sig, &printed)
            .map_err(|e| format!("reparse of {printed:?} failed: {e}"))?;
        if g != f {
            return Err(format!("roundtrip still broken for {printed:?}"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// games-sets
// ---------------------------------------------------------------------

/// The EF solver on pure sets must match the closed-form win predicate
/// (equal sizes, or both at least `n`).
#[derive(Debug)]
pub struct GamesSets;

fn sets_disagree(na: u32, nb: u32, n: u32) -> bool {
    if n == 0 {
        return false;
    }
    let a = builders::set(na);
    let b = builders::set(nb);
    EfSolver::new(&a, &b).duplicator_wins(n) != sets_duplicator_wins(na, nb, n)
}

impl Oracle for GamesSets {
    fn name(&self) -> &'static str {
        "games-sets"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_SETS.incr();
        let na = rng.random_range(0..=5u32);
        let nb = rng.random_range(0..=5u32);
        let n = rng.random_range(1..=3u32);
        if !sets_disagree(na, nb, n) {
            return None;
        }
        let ((na, nb, n), _) = minimize(
            (na, nb, n),
            &mut |&(na, nb, n): &(u32, u32, u32)| sets_disagree(na, nb, n),
            SHRINK_BUDGET,
        );
        let a = builders::set(na);
        let b = builders::set(nb);
        let solver = EfSolver::new(&a, &b).duplicator_wins(n);
        let mut c = case_skeleton(
            self,
            seed,
            case,
            format!(
                "solver={solver} closed_form={}",
                sets_duplicator_wins(na, nb, n)
            ),
        );
        c.sig = Vec::new(); // pure sets: the empty signature
        c.params = vec![
            ("na".to_owned(), na.to_string()),
            ("nb".to_owned(), nb.to_string()),
            ("n".to_owned(), n.to_string()),
        ];
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let na = case.param_u64("na")? as u32;
        let nb = case.param_u64("nb")? as u32;
        let n = case.param_u64("n")? as u32;
        if sets_disagree(na, nb, n) {
            return Err(format!(
                "solver and sets_duplicator_wins still disagree on ({na}, {nb}) at n = {n}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// games-orders
// ---------------------------------------------------------------------

/// The EF solver on linear orders must match the exact Theorem 3.1
/// characterization `L_m ≡ₙ L_k ⟺ m = k ∨ m, k ≥ 2ⁿ − 1`.
#[derive(Debug)]
pub struct GamesOrders;

fn orders_disagree(m: u64, k: u64, n: u32) -> bool {
    if m == 0 || k == 0 || n == 0 {
        return false; // builders::linear_order wants nonempty orders
    }
    let a = builders::linear_order(m as u32);
    let b = builders::linear_order(k as u32);
    EfSolver::new(&a, &b).duplicator_wins(n) != orders_equivalent(m, k, n)
}

impl Oracle for GamesOrders {
    fn name(&self) -> &'static str {
        "games-orders"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_ORDERS.incr();
        let m = rng.random_range(1..=9u64);
        let k = rng.random_range(1..=9u64);
        let n = rng.random_range(1..=3u32);
        if !orders_disagree(m, k, n) {
            return None;
        }
        let ((m, k, n), _) = minimize(
            (m, k, n),
            &mut |&(m, k, n): &(u64, u64, u32)| orders_disagree(m, k, n),
            SHRINK_BUDGET,
        );
        let a = builders::linear_order(m as u32);
        let b = builders::linear_order(k as u32);
        let solver = EfSolver::new(&a, &b).duplicator_wins(n);
        let mut c = case_skeleton(
            self,
            seed,
            case,
            format!("solver={solver} closed_form={}", orders_equivalent(m, k, n)),
        );
        c.sig = vec![("<".to_owned(), 2)];
        c.params = vec![
            ("m".to_owned(), m.to_string()),
            ("k".to_owned(), k.to_string()),
            ("n".to_owned(), n.to_string()),
        ];
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let m = case.param_u64("m")?;
        let k = case.param_u64("k")?;
        let n = case.param_u64("n")? as u32;
        if orders_disagree(m, k, n) {
            return Err(format!(
                "solver and orders_equivalent still disagree on L_{m} vs L_{k} at n = {n}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// hanf-locality
// ---------------------------------------------------------------------

/// Census-based Hanf equivalence must be symmetric, reflexive up to
/// relabeling, downward monotone in the radius, and must imply
/// game equivalence at the Hanf radius `(3ⁿ − 1)/2` (Hanf's theorem,
/// cross-checked against direct EF search).
#[derive(Debug)]
pub struct HanfLocality;

/// The Hanf-locality rank bound: `A ⇆ᵣ B` with `r = (3ⁿ − 1)/2`
/// implies `A ≡ₙ B`.
fn hanf_radius(n: u32) -> u32 {
    (3u32.pow(n) - 1) / 2
}

fn hanf_violation_kind(a: &Structure, b: &Structure, r: u32, n: u32) -> Option<&'static str> {
    if hanf_equivalent(a, b, r) != hanf_equivalent(b, a, r) {
        return Some("symmetry");
    }
    if hanf_equivalent(a, b, r + 1) && !hanf_equivalent(a, b, r) {
        return Some("monotone");
    }
    if n > 0 && hanf_equivalent(a, b, hanf_radius(n)) && !EfSolver::new(a, b).duplicator_wins(n) {
        return Some("hanf-theorem");
    }
    None
}

impl Oracle for HanfLocality {
    fn name(&self) -> &'static str {
        "hanf-locality"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_HANF.incr();
        let cfg = GenConfig::default();
        // Alternate between adversarial random pairs and the survey's
        // cycle construction C_m ⊎ C_m vs C_2m, which actually exercises
        // the theorem direction (random pairs are rarely ⇆ᵣ-equivalent).
        let (a, b, kind_hint) = if rng.random_bool(0.5) {
            let a = gen::random_graph(rng, &cfg);
            let b = if rng.random_bool(0.3) {
                // A shuffled relabeling: ⇆ᵣ must hold at every radius.
                let mut perm: Vec<u32> = a.domain().collect();
                for i in (1..perm.len()).rev() {
                    let j = rng.random_range(0..=i);
                    perm.swap(i, j);
                }
                (a.relabel(&perm), "relabel")
            } else {
                (gen::random_graph(rng, &cfg), "random")
            };
            (a, b.0, b.1)
        } else {
            let m = rng.random_range(4..=10u32);
            let two = builders::copies(&builders::undirected_cycle(m), 2);
            let one = builders::undirected_cycle(2 * m);
            (two, one, "cycles")
        };
        let r = rng.random_range(0..=2u32);
        let n = rng.random_range(1..=2u32);
        if kind_hint == "relabel" && !hanf_equivalent(&a, &b, r) {
            let mut c = case_skeleton(self, seed, case, "relabeled copy not ⇆ᵣ".to_owned());
            c.params = vec![
                ("kind".to_owned(), "relabel".to_owned()),
                ("r".to_owned(), r.to_string()),
            ];
            c.structures.push(("A".to_owned(), sparse::to_text(&a)));
            c.structures.push(("B".to_owned(), sparse::to_text(&b)));
            return Some(c);
        }
        let kind = hanf_violation_kind(&a, &b, r, n)?;
        let mut still_fails = |pair: &(Structure, Structure)| {
            hanf_violation_kind(&pair.0, &pair.1, r, n) == Some(kind)
        };
        let ((a, b), _) = minimize((a, b), &mut still_fails, SHRINK_BUDGET);
        let mut c = case_skeleton(self, seed, case, format!("hanf invariant broken: {kind}"));
        c.params = vec![
            ("kind".to_owned(), kind.to_owned()),
            ("r".to_owned(), r.to_string()),
            ("n".to_owned(), n.to_string()),
        ];
        c.structures.push(("A".to_owned(), sparse::to_text(&a)));
        c.structures.push(("B".to_owned(), sparse::to_text(&b)));
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let a = case.structure("A")?;
        let b = case.structure("B")?;
        let r = case.param_u64("r")? as u32;
        let kind = case.param("kind").ok_or("case is missing `kind`")?;
        let ok = match kind {
            "relabel" => hanf_equivalent(&a, &b, r),
            "symmetry" => hanf_equivalent(&a, &b, r) == hanf_equivalent(&b, &a, r),
            "monotone" => !hanf_equivalent(&a, &b, r + 1) || hanf_equivalent(&a, &b, r),
            "hanf-theorem" => {
                let n = case.param_u64("n")? as u32;
                !hanf_equivalent(&a, &b, hanf_radius(n)) || EfSolver::new(&a, &b).duplicator_wins(n)
            }
            other => return Err(format!("unknown hanf violation kind {other:?}")),
        };
        if ok {
            Ok(())
        } else {
            Err(format!("hanf invariant {kind:?} still violated"))
        }
    }
}

// ---------------------------------------------------------------------
// datalog-engines
// ---------------------------------------------------------------------

/// The naive, written-order scan, and indexed (1–2 threads) Datalog
/// engines must compute identical fixpoints — and the two semi-naive
/// engines identical work counters — on random programs.
#[derive(Debug)]
pub struct DatalogEngines;

fn datalog_disagreement(s: &Structure, src: &str) -> Option<String> {
    let prog = match Program::parse(s.signature(), src) {
        Ok(p) => p,
        Err(e) => return Some(format!("program failed to parse: {e}")),
    };
    let nv = prog.eval_naive(s);
    let scan = prog.eval_seminaive_scan(s);
    for threads in 1..=2 {
        let indexed = prog.eval_seminaive_with(s, threads);
        for i in 0..prog.num_idbs() {
            let (name, _) = prog.idb_info(i);
            if nv.relation(i) != indexed.relation(i) {
                return Some(format!("naive vs indexed({threads}) differ on {name}"));
            }
            if scan.relation(i) != indexed.relation(i) {
                return Some(format!("scan vs indexed({threads}) differ on {name}"));
            }
        }
        if scan.iterations != indexed.iterations
            || scan.derivations != indexed.derivations
            || scan.delta_history != indexed.delta_history
        {
            return Some(format!("scan vs indexed({threads}) work counters differ"));
        }
    }
    None
}

impl Oracle for DatalogEngines {
    fn name(&self) -> &'static str {
        "datalog-engines"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_DATALOG.incr();
        let cfg = GenConfig::default();
        let s = gen::random_graph(rng, &cfg);
        let src = gen::random_datalog_program(rng);
        let note = datalog_disagreement(&s, &src)?;
        let (s, _) = minimize(
            s,
            &mut |t: &Structure| datalog_disagreement(t, &src).is_some(),
            SHRINK_BUDGET,
        );
        let note = datalog_disagreement(&s, &src).unwrap_or(note);
        let mut c = case_skeleton(self, seed, case, note);
        c.params = vec![("program".to_owned(), src.trim().to_owned())];
        c.structures.push(("A".to_owned(), sparse::to_text(&s)));
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let s = case.structure("A")?;
        let src = case.param("program").ok_or("case is missing `program`")?;
        match datalog_disagreement(&s, src) {
            Some(note) => Err(note),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// lint-clean
// ---------------------------------------------------------------------

/// The static/dynamic contract of `fmt-lint`: the generators never
/// produce an input the linter rejects outright (error severity), and
/// an input the linter passes — warnings allowed — evaluates without a
/// panic and with all engines agreeing.
#[derive(Debug)]
pub struct LintClean;

fn lint_cfg() -> LintConfig {
    LintConfig {
        expect_sentence: true,
        ..LintConfig::default()
    }
}

fn first_lint_error(diags: &[fmt_lint::Diagnostic]) -> Option<String> {
    diags
        .iter()
        .find(|d| d.severity == fmt_lint::Severity::Error)
        .map(|d| format!("{}: {}", d.code, d.message))
}

/// `None` when the sentence upholds the lint-clean contract on `s`.
fn lint_clean_formula_violation(s: &Structure, text: &str) -> Option<String> {
    let diags = fmt_lint::lint_formula_src(s.signature(), text, &lint_cfg());
    if let Some(e) = first_lint_error(&diags) {
        return Some(format!("linter rejects a generated sentence ({e})"));
    }
    let f = match parser::parse_formula(s.signature(), text) {
        Ok(f) => f,
        Err(e) => return Some(format!("lint-clean sentence fails to parse: {e}")),
    };
    match catch_unwind(AssertUnwindSafe(|| eval_verdicts(s, &f))) {
        Err(_) => Some("evaluation panicked on a lint-clean sentence".to_owned()),
        Ok((nv, ra, cv)) if nv != ra || nv != cv => Some(format!(
            "engines disagree on a lint-clean sentence: naive={nv} relalg={ra} circuit={cv}"
        )),
        Ok(_) => None,
    }
}

/// `None` when the program upholds the lint-clean contract on `s`.
fn lint_clean_program_violation(s: &Structure, src: &str) -> Option<String> {
    let diags = fmt_lint::lint_program_src(s.signature(), src, &lint_cfg());
    if let Some(e) = first_lint_error(&diags) {
        return Some(format!("linter rejects a generated program ({e})"));
    }
    match catch_unwind(AssertUnwindSafe(|| datalog_disagreement(s, src))) {
        Err(_) => Some("evaluation panicked on a lint-clean program".to_owned()),
        Ok(Some(note)) => Some(format!("engines disagree on a lint-clean program: {note}")),
        Ok(None) => None,
    }
}

impl Oracle for LintClean {
    fn name(&self) -> &'static str {
        "lint-clean"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_LINT.incr();
        let cfg = GenConfig::default();
        let s = gen::random_graph(rng, &cfg);
        if rng.random_bool(0.5) {
            let f = gen::random_sentence(rng, &cfg);
            let text = format!("{}", f.display(s.signature()));
            let note = lint_clean_formula_violation(&s, &text)?;
            let (s, _) = minimize(
                s,
                &mut |t: &Structure| lint_clean_formula_violation(t, &text).is_some(),
                SHRINK_BUDGET,
            );
            let note = lint_clean_formula_violation(&s, &text).unwrap_or(note);
            let mut c = case_skeleton(self, seed, case, note);
            c.params = vec![("kind".to_owned(), "formula".to_owned())];
            c.formula = Some(text);
            c.structures.push(("A".to_owned(), sparse::to_text(&s)));
            Some(c)
        } else {
            let src = gen::random_datalog_program(rng);
            let note = lint_clean_program_violation(&s, &src)?;
            let (s, _) = minimize(
                s,
                &mut |t: &Structure| lint_clean_program_violation(t, &src).is_some(),
                SHRINK_BUDGET,
            );
            let note = lint_clean_program_violation(&s, &src).unwrap_or(note);
            let mut c = case_skeleton(self, seed, case, note);
            c.params = vec![
                ("kind".to_owned(), "program".to_owned()),
                ("program".to_owned(), src.trim().to_owned()),
            ];
            c.structures.push(("A".to_owned(), sparse::to_text(&s)));
            Some(c)
        }
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let s = case.structure("A")?;
        let violation = match case.param("kind").ok_or("case is missing `kind`")? {
            "formula" => {
                let text = case.formula.as_ref().ok_or("case has no formula")?;
                lint_clean_formula_violation(&s, text)
            }
            "program" => {
                let src = case.param("program").ok_or("case is missing `program`")?;
                lint_clean_program_violation(&s, src)
            }
            other => return Err(format!("unknown lint-clean case kind {other:?}")),
        };
        match violation {
            Some(note) => Err(note),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// budget-fault
// ---------------------------------------------------------------------

/// Fault injection for the budget layer: every engine run under a
/// tight random fuel budget must either complete (agreeing with every
/// other engine that completed) or fail cleanly with `Exhausted` —
/// never panic — and rerunning a single-threaded engine with the same
/// fuel must reproduce the identical outcome, exhaustion tick
/// included.
#[derive(Debug)]
pub struct BudgetFault;

/// Test-only fault-injection hook: when this environment variable is
/// set, every engine run by the `budget-fault` oracle panics instead
/// of evaluating. It exists to prove the oracle's shrink-and-serialize
/// plumbing (and the CLI's replay exit code) end to end, since correct
/// engines never fail organically.
pub const INJECT_PANIC_ENV: &str = "FMT_CONFORM_INJECT_PANIC";

fn inject_panic_armed() -> bool {
    std::env::var_os(INJECT_PANIC_ENV).is_some()
}

/// One engine's outcome under a finite fuel budget.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FuelOutcome<T> {
    /// Completed within budget.
    Done(T),
    /// Failed cleanly, having spent this many ticks.
    Exhausted(u64),
    /// Panicked — always a violation.
    Panicked,
}

fn run_with_fuel<T>(fuel: u64, run: impl FnOnce(&Budget) -> BudgetResult<T>) -> FuelOutcome<T> {
    let budget = Budget::with_fuel(fuel);
    match catch_unwind(AssertUnwindSafe(|| {
        if inject_panic_armed() {
            panic!("injected budget fault ({INJECT_PANIC_ENV} is set)");
        }
        run(&budget)
    })) {
        Err(_) => FuelOutcome::Panicked,
        Ok(Ok(v)) => FuelOutcome::Done(v),
        Ok(Err(e)) => FuelOutcome::Exhausted(e.spent),
    }
}

/// Runs one engine twice under the same fuel, checking the clean-fail
/// and determinism halves of the contract. Returns the completed value
/// (if any) or the violation note.
fn fuel_check<T: Clone + PartialEq + std::fmt::Debug>(
    name: &str,
    fuel: u64,
    run: impl Fn(&Budget) -> BudgetResult<T>,
) -> Result<Option<T>, String> {
    let first = run_with_fuel(fuel, &run);
    if matches!(first, FuelOutcome::Panicked) {
        return Err(format!("{name} panicked under fuel {fuel}"));
    }
    let second = run_with_fuel(fuel, &run);
    if first != second {
        return Err(format!(
            "{name} is fuel-nondeterministic under fuel {fuel}: {first:?} vs {second:?}"
        ));
    }
    match first {
        FuelOutcome::Done(v) => Ok(Some(v)),
        _ => Ok(None),
    }
}

/// A list of named budgeted engine runs for [`fuel_check`] to drive.
type EngineChecks<'a, T> = Vec<(&'static str, Box<dyn Fn(&Budget) -> BudgetResult<T> + 'a>)>;

/// `None` when all three FO engines uphold the budget contract on
/// `(s, text)` under `fuel`.
fn budget_fault_formula_violation(s: &Structure, text: &str, fuel: u64) -> Option<String> {
    let Ok(f) = parser::parse_formula(s.signature(), text) else {
        return None;
    };
    if !f.is_sentence() || f.well_formed(s.signature()).is_err() {
        return None;
    }
    let mut done: Vec<(&str, bool)> = Vec::new();
    let checks: EngineChecks<'_, bool> = vec![
        (
            "eval.naive",
            Box::new(|b: &Budget| naive::check_sentence_budgeted(s, &f, b)),
        ),
        (
            "eval.relalg",
            Box::new(|b: &Budget| relalg::check_sentence_budgeted(s, &f, b)),
        ),
        (
            "eval.circuit",
            Box::new(|b: &Budget| {
                let (c, layout) = circuit::compile_budgeted(s.signature(), &f, s.size(), b)?;
                c.try_eval(&layout.encode(s), b)
            }),
        ),
    ];
    for (name, run) in checks {
        match fuel_check(name, fuel, run) {
            Err(note) => return Some(note),
            Ok(Some(v)) => done.push((name, v)),
            Ok(None) => {}
        }
    }
    if let Some(w) = done.windows(2).find(|w| w[0].1 != w[1].1) {
        return Some(format!(
            "completed engines disagree under fuel {fuel}: {}={} vs {}={}",
            w[0].0, w[0].1, w[1].0, w[1].1
        ));
    }
    None
}

/// `None` when all Datalog engines uphold the budget contract on
/// `(s, src)` under `fuel`. The two-thread indexed engine shares fuel
/// across shards, so only its no-panic/agreement halves are checked —
/// its exhaustion tick is legitimately racy.
fn budget_fault_program_violation(s: &Structure, src: &str, fuel: u64) -> Option<String> {
    let Ok(prog) = Program::parse(s.signature(), src) else {
        return None;
    };
    let canon = |out: &fmt_queries::datalog::Output| -> Vec<Vec<Vec<Elem>>> {
        (0..prog.num_idbs())
            .map(|i| {
                let mut v: Vec<Vec<Elem>> = out.relation(i).iter().collect();
                v.sort();
                v
            })
            .collect()
    };
    let mut done: Vec<(&str, Vec<Vec<Vec<Elem>>>)> = Vec::new();
    let checks: EngineChecks<'_, fmt_queries::datalog::Output> = vec![
        (
            "datalog.naive",
            Box::new(|b: &Budget| prog.try_eval_naive(s, b).map_err(EvalError::into_exhausted)),
        ),
        (
            "datalog.scan",
            Box::new(|b: &Budget| {
                prog.try_eval_seminaive_scan(s, b)
                    .map_err(EvalError::into_exhausted)
            }),
        ),
        (
            "datalog.indexed",
            Box::new(|b: &Budget| {
                prog.try_eval_seminaive_with(s, 1, b)
                    .map_err(EvalError::into_exhausted)
            }),
        ),
    ];
    for (name, run) in checks {
        match fuel_check(name, fuel, |b| run(b).map(|out| canon(&out))) {
            Err(note) => return Some(note),
            Ok(Some(v)) => done.push((name, v)),
            Ok(None) => {}
        }
    }
    match run_with_fuel(fuel, |b| {
        prog.try_eval_seminaive_with(s, 2, b)
            .map_err(EvalError::into_exhausted)
            .map(|out| canon(&out))
    }) {
        FuelOutcome::Panicked => {
            return Some(format!("datalog.indexed(2) panicked under fuel {fuel}"))
        }
        FuelOutcome::Done(v) => done.push(("datalog.indexed(2)", v)),
        FuelOutcome::Exhausted(_) => {}
    }
    if let Some(w) = done.windows(2).find(|w| w[0].1 != w[1].1) {
        return Some(format!(
            "completed engines disagree under fuel {fuel}: {} vs {}",
            w[0].0, w[1].0
        ));
    }
    None
}

impl Oracle for BudgetFault {
    fn name(&self) -> &'static str {
        "budget-fault"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_BUDGET.incr();
        let cfg = GenConfig::default();
        let s = gen::random_graph(rng, &cfg);
        let fuel = rng.random_range(1..=48u64);
        if rng.random_bool(0.5) {
            let f = gen::random_sentence(rng, &cfg);
            let text = format!("{}", f.display(s.signature()));
            let note = budget_fault_formula_violation(&s, &text, fuel)?;
            let ((s, fuel), _) = minimize(
                (s, fuel),
                &mut |(t, fl): &(Structure, u64)| {
                    *fl >= 1 && budget_fault_formula_violation(t, &text, *fl).is_some()
                },
                SHRINK_BUDGET,
            );
            let note = budget_fault_formula_violation(&s, &text, fuel).unwrap_or(note);
            let mut c = case_skeleton(self, seed, case, note);
            c.params = vec![
                ("kind".to_owned(), "formula".to_owned()),
                ("fuel".to_owned(), fuel.to_string()),
            ];
            c.formula = Some(text);
            c.structures.push(("A".to_owned(), sparse::to_text(&s)));
            Some(c)
        } else {
            let src = gen::random_datalog_program(rng);
            let note = budget_fault_program_violation(&s, &src, fuel)?;
            let ((s, fuel), _) = minimize(
                (s, fuel),
                &mut |(t, fl): &(Structure, u64)| {
                    *fl >= 1 && budget_fault_program_violation(t, &src, *fl).is_some()
                },
                SHRINK_BUDGET,
            );
            let note = budget_fault_program_violation(&s, &src, fuel).unwrap_or(note);
            let mut c = case_skeleton(self, seed, case, note);
            c.params = vec![
                ("kind".to_owned(), "program".to_owned()),
                ("fuel".to_owned(), fuel.to_string()),
                ("program".to_owned(), src.trim().to_owned()),
            ];
            c.structures.push(("A".to_owned(), sparse::to_text(&s)));
            Some(c)
        }
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let s = case.structure("A")?;
        let fuel = case.param_u64("fuel")?.max(1);
        let violation = match case.param("kind").ok_or("case is missing `kind`")? {
            "formula" => {
                let text = case.formula.as_ref().ok_or("case has no formula")?;
                budget_fault_formula_violation(&s, text, fuel)
            }
            "program" => {
                let src = case.param("program").ok_or("case is missing `program`")?;
                budget_fault_program_violation(&s, src, fuel)
            }
            other => return Err(format!("unknown budget-fault case kind {other:?}")),
        };
        match violation {
            Some(note) => Err(note),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// incremental
// ---------------------------------------------------------------------

/// Trace equivalence for the incremental Datalog runtime: replaying a
/// random insert/retract trace through `DatalogRuntime` must yield the
/// same IDB extents as from-scratch semi-naive recomputation at every
/// `poll` (at one and three worker threads), and replaying the same
/// trace under a tight shared fuel budget must never panic, must be
/// outcome-deterministic, and must recover to the exact fixpoint with
/// one unbudgeted poll afterwards.
#[derive(Debug)]
pub struct Incremental;

/// Test-only fault-injection hook, the `incremental` analog of
/// [`INJECT_PANIC_ENV`]: when set, the trace check reports a fabricated
/// divergence, which exercises the oracle's shrink-and-serialize path
/// (and generated the committed `tests/corpus/incremental-*.case`
/// files), since a correct runtime never diverges organically.
pub const INJECT_INCR_ENV: &str = "FMT_CONFORM_INJECT_INCR";

fn inject_incr_armed() -> bool {
    std::env::var_os(INJECT_INCR_ENV).is_some()
}

/// The from-scratch reference: semi-naive evaluation over a structure
/// holding exactly `facts`, as sorted tuple lists per IDB.
fn incr_scratch(
    prog: &Program,
    domain: u32,
    facts: &std::collections::BTreeSet<(u32, u32)>,
) -> Vec<Vec<Vec<Elem>>> {
    let e = prog.signature().relation("E").expect("graph signature");
    let mut b = fmt_structures::StructureBuilder::new(prog.signature().clone(), domain);
    for &(u, v) in facts {
        b.add(e, &[u, v]).expect("trace ops are in domain");
    }
    let out = prog.eval_seminaive(&b.build().expect("trace structure is valid"));
    (0..prog.num_idbs())
        .map(|i| {
            let mut rows: Vec<Vec<Elem>> = out.relation(i).iter().collect();
            rows.sort();
            rows
        })
        .collect()
}

/// `None` when the runtime upholds the trace-equivalence and budget
/// contracts on `(src, trace, fuel)`.
fn incremental_violation(src: &str, trace: &gen::UpdateTrace, fuel: u64) -> Option<String> {
    use fmt_queries::incremental::DatalogRuntime;
    use gen::UpdateOp;

    let sig = fmt_structures::Signature::graph();
    let prog = match Program::parse(&sig, src) {
        Ok(p) => p,
        Err(e) => return Some(format!("program failed to parse: {e}")),
    };
    let e = sig.relation("E").expect("graph signature");
    if inject_incr_armed() {
        return Some(format!(
            "injected incremental fault ({INJECT_INCR_ENV} is set)"
        ));
    }

    // Half one: unbudgeted trace equivalence, at 1 and 3 threads.
    let mut facts: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut rt1 = DatalogRuntime::new(prog.clone(), trace.domain)
        .expect("generated incremental programs are negation-free");
    let mut rt3 = DatalogRuntime::new(prog.clone(), trace.domain)
        .expect("generated incremental programs are negation-free");
    rt3.set_threads(3);
    for (step, op) in trace.ops.iter().enumerate() {
        match *op {
            UpdateOp::Insert(u, v) => {
                facts.insert((u, v));
                rt1.insert(e, &[u, v]);
                rt3.insert(e, &[u, v]);
            }
            UpdateOp::Retract(u, v) => {
                facts.remove(&(u, v));
                rt1.retract(e, &[u, v]);
                rt3.retract(e, &[u, v]);
            }
            UpdateOp::Poll => {
                rt1.poll();
                rt3.poll();
                let want = incr_scratch(&prog, trace.domain, &facts);
                for (threads, rt) in [(1usize, &rt1), (3, &rt3)] {
                    for (i, rows) in want.iter().enumerate() {
                        let mut got: Vec<Vec<Elem>> = rt.query(i).iter().collect();
                        got.sort();
                        if got != *rows {
                            let (name, _) = prog.idb_info(i);
                            return Some(format!(
                                "runtime({threads} threads) diverges from scratch on {name} \
                                 at poll (op {step}): {got:?} vs {rows:?}"
                            ));
                        }
                    }
                }
            }
        }
    }

    // Half two: the same trace under one tight shared fuel budget must
    // not panic and must produce the identical outcome sequence twice
    // (single-threaded exhaustion is deterministic), then recover to
    // the exact fixpoint with one unbudgeted poll.
    let budgeted = |fuel: u64| -> Result<Vec<String>, String> {
        catch_unwind(AssertUnwindSafe(|| {
            let budget = Budget::with_fuel(fuel);
            let mut rt = DatalogRuntime::new(prog.clone(), trace.domain)
                .expect("generated incremental programs are negation-free");
            let mut outcomes = Vec::new();
            for op in &trace.ops {
                match *op {
                    UpdateOp::Insert(u, v) => rt.insert(e, &[u, v]),
                    UpdateOp::Retract(u, v) => rt.retract(e, &[u, v]),
                    UpdateOp::Poll => outcomes.push(match rt.try_poll(&budget) {
                        Ok(stats) => format!("ok rebuilt={}", stats.rebuilt),
                        Err(ex) => format!("exhausted spent={} at={}", ex.spent, ex.at),
                    }),
                }
            }
            let final_poll = rt.poll();
            outcomes.push(format!("recovery rebuilt={}", final_poll.rebuilt));
            let want = incr_scratch(&prog, trace.domain, &facts);
            for (i, rows) in want.iter().enumerate() {
                let mut got: Vec<Vec<Elem>> = rt.query(i).iter().collect();
                got.sort();
                if got != *rows {
                    let (name, _) = prog.idb_info(i);
                    outcomes.push(format!("post-recovery divergence on {name}"));
                }
            }
            outcomes
        }))
        .map_err(|_| format!("runtime panicked replaying the trace under fuel {fuel}"))
    };
    let first = match budgeted(fuel) {
        Ok(o) => o,
        Err(note) => return Some(note),
    };
    if let Some(bad) = first.iter().find(|o| o.starts_with("post-recovery")) {
        return Some(format!("{bad} under fuel {fuel}"));
    }
    let second = match budgeted(fuel) {
        Ok(o) => o,
        Err(note) => return Some(note),
    };
    if first != second {
        return Some(format!(
            "budgeted replay is nondeterministic under fuel {fuel}: {first:?} vs {second:?}"
        ));
    }
    None
}

impl Oracle for Incremental {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_INCR.incr();
        let src = gen::random_datalog_program(rng);
        let trace = gen::random_update_trace(rng);
        let fuel = rng.random_range(1..=300u64);
        let note = incremental_violation(&src, &trace, fuel)?;
        let ((trace, fuel), _) = minimize(
            (trace, fuel),
            &mut |(t, fl): &(gen::UpdateTrace, u64)| {
                *fl >= 1 && incremental_violation(&src, t, *fl).is_some()
            },
            SHRINK_BUDGET,
        );
        let note = incremental_violation(&src, &trace, fuel).unwrap_or(note);
        let mut c = case_skeleton(self, seed, case, note);
        c.params = vec![
            ("domain".to_owned(), trace.domain.to_string()),
            ("program".to_owned(), src.trim().to_owned()),
            ("trace".to_owned(), trace.to_compact()),
            ("fuel".to_owned(), fuel.to_string()),
        ];
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let domain = case.param_u64("domain")? as u32;
        let src = case.param("program").ok_or("case is missing `program`")?;
        let text = case.param("trace").ok_or("case is missing `trace`")?;
        let trace = gen::UpdateTrace::parse_compact(domain, text)?;
        let fuel = case.param_u64("fuel")?.max(1);
        match incremental_violation(src, &trace, fuel) {
            Some(note) => Err(note),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// stratified
// ---------------------------------------------------------------------

/// Stratified negation, coherent end to end: on random stratified
/// programs (and seeded unstratifiable/unsafe mutants) the lint
/// verdict must match every engine's behavior — D006/D007 errors iff
/// the engine returns the matching typed [`EvalError`], never a panic
/// — all four engine configurations (naive, scan, indexed at 1 and 3
/// threads) must agree on extents when evaluation is legal, and tight
/// fuel budgets must fail cleanly and deterministically.
#[derive(Debug)]
pub struct Stratified;

/// Test-only fault-injection hook: when set, every `stratified` oracle
/// check reports a fabricated stratification bug, proving the
/// catch/shrink/replay pipeline end to end (correct engines never fail
/// organically).
pub const INJECT_STRAT_ENV: &str = "FMT_CONFORM_INJECT_STRAT";

fn inject_strat_armed() -> bool {
    std::env::var_os(INJECT_STRAT_ENV).is_some()
}

/// `None` when the stratified-negation contract holds on `(s, src)`
/// under `fuel`. `expect_defect` is the generator's own claim (a
/// mutant was / was not seeded), cross-checked against the linter to
/// catch generator/linter drift.
fn stratified_violation(
    s: &Structure,
    src: &str,
    fuel: u64,
    expect_defect: Option<bool>,
) -> Option<String> {
    if inject_strat_armed() {
        return Some(format!(
            "injected stratification fault ({INJECT_STRAT_ENV} is set)"
        ));
    }
    let prog = match Program::parse(s.signature(), src) {
        Ok(p) => p,
        Err(e) => return Some(format!("program failed to parse: {e}")),
    };
    let diags = fmt_lint::lint_program_src(s.signature(), src, &LintConfig::default());
    let lint_d006 = diags.iter().any(|d| d.code == "D006");
    let lint_d007 = diags.iter().any(|d| d.code == "D007");
    let statically_rejected = lint_d006 || lint_d007;
    if let Some(defect) = expect_defect {
        if defect != statically_rejected {
            return Some(format!(
                "generator seeded defect={defect} but lint reports D006={lint_d006} \
                 D007={lint_d007}"
            ));
        }
    }

    let canon = |out: &fmt_queries::datalog::Output| -> Vec<Vec<Vec<Elem>>> {
        (0..prog.num_idbs())
            .map(|i| {
                let mut v: Vec<Vec<Elem>> = out.relation(i).iter().collect();
                v.sort();
                v
            })
            .collect()
    };
    // An engine's unlimited-budget verdict: extents, or the lint code
    // its typed error corresponds to.
    let classify = |r: Result<fmt_queries::datalog::Output, EvalError>| match r {
        Ok(out) => Ok(canon(&out)),
        Err(EvalError::Unstratifiable { .. }) => Err("D006"),
        Err(EvalError::UnsafeNegation { .. }) => Err("D007"),
        Err(EvalError::Exhausted(e)) => Err(if e.spent == 0 {
            "spurious"
        } else {
            "exhausted"
        }),
    };
    let unlimited = Budget::unlimited();
    type Run<'a> = Box<dyn Fn() -> Result<fmt_queries::datalog::Output, EvalError> + 'a>;
    let engines: Vec<(&str, Run<'_>)> = vec![
        ("naive", Box::new(|| prog.try_eval_naive(s, &unlimited))),
        (
            "scan",
            Box::new(|| prog.try_eval_seminaive_scan(s, &unlimited)),
        ),
        (
            "indexed(1)",
            Box::new(|| prog.try_eval_seminaive_with(s, 1, &unlimited)),
        ),
        (
            "indexed(3)",
            Box::new(|| prog.try_eval_seminaive_with(s, 3, &unlimited)),
        ),
    ];
    let mut done: Vec<(&str, Vec<Vec<Vec<Elem>>>)> = Vec::new();
    for (name, run) in &engines {
        let verdict = match catch_unwind(AssertUnwindSafe(run)) {
            Err(_) => return Some(format!("{name} panicked on a stratified-oracle program")),
            Ok(r) => classify(r),
        };
        match verdict {
            Err(code @ ("D006" | "D007")) => {
                let coherent = (code == "D006" && lint_d006) || (code == "D007" && lint_d007);
                if !coherent {
                    return Some(format!(
                        "{name} rejected with {code} but lint reports D006={lint_d006} \
                         D007={lint_d007}"
                    ));
                }
            }
            Err(code) => return Some(format!("{name} failed with {code} on unlimited budget")),
            Ok(_) if statically_rejected => {
                return Some(format!(
                    "lint rejects the program (D006={lint_d006} D007={lint_d007}) but {name} \
                     evaluated it"
                ))
            }
            Ok(extents) => done.push((name, extents)),
        }
    }
    if let Some(w) = done.windows(2).find(|w| w[0].1 != w[1].1) {
        return Some(format!(
            "stratified engines disagree: {} vs {}",
            w[0].0, w[1].0
        ));
    }

    // Budget transparency: the single-threaded engines under tight
    // fuel must fail cleanly and reproduce the identical outcome; the
    // multi-threaded engine shares fuel across shards, so only its
    // no-panic half is checked.
    let budgeted = |r: Result<fmt_queries::datalog::Output, EvalError>| -> BudgetResult<
        Result<Vec<Vec<Vec<Elem>>>, &'static str>,
    > {
        match r {
            Err(EvalError::Exhausted(e)) => Err(e),
            other => Ok(classify(other)),
        }
    };
    type Check<'a> =
        Box<dyn Fn(&Budget) -> BudgetResult<Result<Vec<Vec<Vec<Elem>>>, &'static str>> + 'a>;
    let checks: Vec<(&str, Check<'_>)> = vec![
        (
            "stratified.naive",
            Box::new(|b: &Budget| budgeted(prog.try_eval_naive(s, b))),
        ),
        (
            "stratified.scan",
            Box::new(|b: &Budget| budgeted(prog.try_eval_seminaive_scan(s, b))),
        ),
        (
            "stratified.indexed",
            Box::new(|b: &Budget| budgeted(prog.try_eval_seminaive_with(s, 1, b))),
        ),
    ];
    for (name, run) in checks {
        if let Err(note) = fuel_check(name, fuel, run) {
            return Some(note);
        }
    }
    let b3 = Budget::with_fuel(fuel);
    if catch_unwind(AssertUnwindSafe(|| {
        let _ = prog.try_eval_seminaive_with(s, 3, &b3);
    }))
    .is_err()
    {
        return Some(format!("indexed(3) panicked under fuel {fuel}"));
    }
    None
}

impl Oracle for Stratified {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_STRAT.incr();
        let cfg = GenConfig::default();
        let s = gen::random_graph(rng, &cfg);
        let (src, defect) = gen::random_stratified_program(rng);
        let fuel = rng.random_range(8..=96u64);
        let note = stratified_violation(&s, &src, fuel, Some(defect))?;
        let ((s, fuel), _) = minimize(
            (s, fuel),
            &mut |(t, fl): &(Structure, u64)| {
                *fl >= 1 && stratified_violation(t, &src, *fl, Some(defect)).is_some()
            },
            SHRINK_BUDGET,
        );
        let note = stratified_violation(&s, &src, fuel, Some(defect)).unwrap_or(note);
        let mut c = case_skeleton(self, seed, case, note);
        c.params = vec![
            ("fuel".to_owned(), fuel.to_string()),
            ("mutant".to_owned(), defect.to_string()),
            ("program".to_owned(), src.trim().to_owned()),
        ];
        c.structures.push(("A".to_owned(), sparse::to_text(&s)));
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let s = case.structure("A")?;
        let fuel = case.param_u64("fuel")?.max(1);
        let src = case.param("program").ok_or("case is missing `program`")?;
        let defect = match case.param("mutant") {
            Some("true") => Some(true),
            Some("false") => Some(false),
            _ => None,
        };
        match stratified_violation(&s, src, fuel, defect) {
            Some(note) => Err(note),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// magic
// ---------------------------------------------------------------------

/// Goal-directed evaluation must be sound and complete for its goal:
/// on random stratified programs and random bound/free goals, the
/// magic-sets-rewritten program — evaluated by all four engine
/// configurations — must produce exactly the goal-matching tuples of a
/// full materialization of the original program, deterministically
/// under random fuel. Rewrites the engines reject (`Original` /
/// `Unstratifiable`) are cross-checked against direct evaluation.
#[derive(Debug)]
pub struct Magic;

/// Test-only fault-injection hook: when set, every `magic` oracle
/// check reports a fabricated rewrite bug, proving the
/// catch/shrink/replay pipeline end to end (correct engines never fail
/// organically).
pub const INJECT_MAGIC_ENV: &str = "FMT_CONFORM_INJECT_MAGIC";

fn inject_magic_armed() -> bool {
    std::env::var_os(INJECT_MAGIC_ENV).is_some()
}

/// `None` when the goal-directed contract holds on `(s, src, goal)`
/// under `fuel`.
fn magic_violation(s: &Structure, src: &str, goal_src: &str, fuel: u64) -> Option<String> {
    if inject_magic_armed() {
        return Some(format!(
            "injected magic-sets fault ({INJECT_MAGIC_ENV} is set)"
        ));
    }
    let prog = match Program::parse(s.signature(), src) {
        Ok(p) => p,
        Err(e) => return Some(format!("program failed to parse: {e}")),
    };
    let goal = match magic::parse_goal(goal_src) {
        Ok(g) => g,
        Err(e) => return Some(format!("goal failed to parse: {e}")),
    };
    let unlimited = Budget::unlimited();
    let mq = match magic::rewrite(&prog, &goal) {
        Ok(mq) => mq,
        // The original program is statically rejected; the engines
        // must reject it too (same typed-error coherence the
        // stratified oracle checks in depth), and there is nothing to
        // compare.
        Err(MagicError::Original(_)) => {
            return match prog.try_eval_naive(s, &unlimited) {
                Err(EvalError::Unstratifiable { .. } | EvalError::UnsafeNegation { .. }) => None,
                other => Some(format!(
                    "rewrite reports an Original error but naive evaluation says {:?}",
                    other.map(|o| o.derivations)
                )),
            };
        }
        // The demand rules closed a negative cycle: a legal refusal,
        // but only on a program that full materialization accepts —
        // otherwise `Original` should have fired first.
        Err(MagicError::Unstratifiable { .. }) => {
            return match prog.try_eval_naive(s, &unlimited) {
                Ok(_) => None,
                Err(e) => Some(format!(
                    "rewrite is Unstratifiable on a program the naive engine also rejects: {e}"
                )),
            };
        }
        // The generator only emits resolvable goals.
        Err(e) => return Some(format!("generated goal failed to resolve: {e}")),
    };

    // Ground truth: goal-filter a full materialization of the original
    // program (statically legal, or `Original` would have fired).
    let full = match catch_unwind(AssertUnwindSafe(|| prog.try_eval_naive(s, &unlimited))) {
        Err(_) => return Some("naive full materialization panicked".to_owned()),
        Ok(Err(e)) => {
            return Some(format!(
                "full materialization failed after rewrite accepted the program: {e}"
            ))
        }
        Ok(Ok(out)) => out,
    };
    let expected = mq.filter(s, full.relation(mq.orig_idb));

    // Every engine configuration on the rewritten program must answer
    // the goal identically to the ground truth.
    let es = mq.prepare(s);
    let rprog = &mq.program;
    type Run<'a> = Box<dyn Fn() -> Result<fmt_queries::datalog::Output, EvalError> + 'a>;
    let engines: Vec<(&str, Run<'_>)> = vec![
        (
            "magic.naive",
            Box::new(|| rprog.try_eval_naive(&es, &unlimited)),
        ),
        (
            "magic.scan",
            Box::new(|| rprog.try_eval_seminaive_scan(&es, &unlimited)),
        ),
        (
            "magic.indexed(1)",
            Box::new(|| rprog.try_eval_seminaive_with(&es, 1, &unlimited)),
        ),
        (
            "magic.indexed(3)",
            Box::new(|| rprog.try_eval_seminaive_with(&es, 3, &unlimited)),
        ),
    ];
    for (name, run) in &engines {
        let out = match catch_unwind(AssertUnwindSafe(run)) {
            Err(_) => return Some(format!("{name} panicked on a rewritten program")),
            Ok(Err(e)) => return Some(format!("{name} rejected the rewritten program: {e}")),
            Ok(Ok(out)) => out,
        };
        let answers = mq.answers(s, &out);
        if answers != expected {
            return Some(format!(
                "{name} goal answers diverge from goal-filtered full materialization: \
                 {answers:?} vs {expected:?} (goal {goal_src})"
            ));
        }
    }

    // Budget transparency on the rewritten program: single-threaded
    // engines must fail cleanly and deterministically under tight
    // fuel; the sharded engine's exhaustion tick is legitimately racy,
    // so only its no-panic half is checked.
    let checks: EngineChecks<'_, Vec<Vec<Elem>>> = vec![
        (
            "magic.naive",
            Box::new(|b: &Budget| {
                rprog
                    .try_eval_naive(&es, b)
                    .map_err(EvalError::into_exhausted)
                    .map(|o| mq.answers(s, &o))
            }),
        ),
        (
            "magic.scan",
            Box::new(|b: &Budget| {
                rprog
                    .try_eval_seminaive_scan(&es, b)
                    .map_err(EvalError::into_exhausted)
                    .map(|o| mq.answers(s, &o))
            }),
        ),
        (
            "magic.indexed",
            Box::new(|b: &Budget| {
                rprog
                    .try_eval_seminaive_with(&es, 1, b)
                    .map_err(EvalError::into_exhausted)
                    .map(|o| mq.answers(s, &o))
            }),
        ),
    ];
    for (name, run) in checks {
        if let Err(note) = fuel_check(name, fuel, run) {
            return Some(note);
        }
    }
    let b3 = Budget::with_fuel(fuel);
    if catch_unwind(AssertUnwindSafe(|| {
        let _ = rprog.try_eval_seminaive_with(&es, 3, &b3);
    }))
    .is_err()
    {
        return Some(format!("magic.indexed(3) panicked under fuel {fuel}"));
    }
    None
}

impl Oracle for Magic {
    fn name(&self) -> &'static str {
        "magic"
    }

    fn run_case(&self, rng: &mut StdRng, seed: u64, case: u64) -> Option<ReproCase> {
        OBS_MAGIC.incr();
        let cfg = GenConfig::default();
        let s = gen::random_graph(rng, &cfg);
        // Mutant programs are kept: they exercise the `Original`
        // cross-check branch (rewrite and engines must both reject).
        let (src, _) = gen::random_stratified_program(rng);
        let prog = Program::parse(s.signature(), &src).expect("generated programs parse");
        let goal = gen::random_goal(rng, &prog, cfg.max_size);
        let fuel = rng.random_range(8..=96u64);
        let note = magic_violation(&s, &src, &goal, fuel)?;
        let ((s, fuel), _) = minimize(
            (s, fuel),
            &mut |(t, fl): &(Structure, u64)| {
                *fl >= 1 && magic_violation(t, &src, &goal, *fl).is_some()
            },
            SHRINK_BUDGET,
        );
        let note = magic_violation(&s, &src, &goal, fuel).unwrap_or(note);
        let mut c = case_skeleton(self, seed, case, note);
        c.params = vec![
            ("fuel".to_owned(), fuel.to_string()),
            ("goal".to_owned(), goal.clone()),
            ("program".to_owned(), src.trim().to_owned()),
        ];
        c.structures.push(("A".to_owned(), sparse::to_text(&s)));
        Some(c)
    }

    fn replay(&self, case: &ReproCase) -> Result<(), String> {
        let s = case.structure("A")?;
        let fuel = case.param_u64("fuel")?.max(1);
        let src = case.param("program").ok_or("case is missing `program`")?;
        let goal = case.param("goal").ok_or("case is missing `goal`")?;
        match magic_violation(&s, src, goal, fuel) {
            Some(note) => Err(note),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = all_oracles().iter().map(|o| o.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(find_oracle(n).is_some());
        }
        assert!(find_oracle("nonsense").is_none());
    }

    #[test]
    fn every_oracle_passes_a_quick_hunt() {
        // A correct toolbox yields zero disagreements: each oracle runs
        // a handful of cases without producing a ReproCase.
        for oracle in all_oracles() {
            let mut rng = StdRng::seed_from_u64(99);
            for case in 0..8u64 {
                if let Some(c) = oracle.run_case(&mut rng, 99, case) {
                    panic!(
                        "oracle {} reported a disagreement:\n{}",
                        oracle.name(),
                        c.to_text()
                    );
                }
            }
        }
    }

    #[test]
    fn stratified_contract_holds_on_canned_programs() {
        let s = builders::directed_path(4);
        // A legal stratified program: all layers agree, no violation.
        assert_eq!(
            stratified_violation(
                &s,
                "t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z). \
                 nt(x, y) :- e(x, y), !t(y, x).",
                32,
                Some(false),
            ),
            None
        );
        // An unstratifiable program is *coherently* rejected: lint says
        // D006, every engine returns the typed error, still no violation.
        assert_eq!(
            stratified_violation(&s, "w(x) :- e(x, x), !w(x).", 32, Some(true)),
            None
        );
        // Same for unsafe negation / D007.
        assert_eq!(
            stratified_violation(
                &s,
                "t(x, y) :- e(x, y). u(x) :- e(x, x), !t(z, x).",
                32,
                Some(true),
            ),
            None
        );
        // Generator/linter drift is itself a violation.
        let note = stratified_violation(&s, "w(x) :- e(x, x), !w(x).", 32, Some(false));
        assert!(note.unwrap().contains("defect=false"));
    }

    #[test]
    fn replay_detects_an_injected_disagreement() {
        // A hand-written case whose inputs DO disagree with a wrong
        // expectation is the other half of the contract: replay must
        // fail loudly. We fake it by claiming L_2 and L_3 are
        // equivalent at n = 2 — orders_equivalent and the solver both
        // say no, so the case replays clean; then corrupt m so the
        // stored pair genuinely disagrees... which cannot happen with
        // correct engines. Instead, check the malformed-case path.
        let bad = ReproCase {
            oracle: "games-orders".to_owned(),
            ..ReproCase::default()
        };
        let o = find_oracle("games-orders").unwrap();
        assert!(o.replay(&bad).is_err(), "missing params must error");
    }
}
