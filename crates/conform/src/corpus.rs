//! Self-contained, replayable repro cases.
//!
//! A [`ReproCase`] captures everything an oracle needs to re-run a
//! disagreement: the oracle name, the `(seed, case)` provenance, an
//! explicit signature (so empty relations survive — the inferring
//! structure parser would drop them), labeled structure blocks in the
//! `fmt_structures::parse` text format, an optional formula in the
//! parser's canonical syntax, and free-form parameters. Cases are
//! written to `tests/corpus/*.case` when the hunter finds a bug and
//! replayed forever after by `tests/conform_corpus.rs`.
//!
//! The format is line-oriented and human-editable:
//!
//! ```text
//! # found by `fmtk conform --seed 42 --cases 1000`
//! oracle: games-orders
//! seed: 42
//! case: 17
//! note: solver=true closed_form=false
//! param: m = 3
//! param: k = 7
//! param: n = 2
//! ```
//!
//! Structure blocks are introduced by `structure <label>:` and
//! terminated by `end`; the formula (if any) follows `formula:`.

use fmt_structures::{parse as sparse, Signature, Structure};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A serialized counterexample: the oracle that found it plus every
/// input needed to re-run the disagreement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReproCase {
    /// Name of the oracle that produced (and can replay) the case.
    pub oracle: String,
    /// Seed of the `fmtk conform` run that found it.
    pub seed: u64,
    /// Index of the failing case within that run.
    pub case: u64,
    /// Human-readable description of the disagreement.
    pub note: String,
    /// Explicit relation declarations `(name, arity)`.
    pub sig: Vec<(String, usize)>,
    /// Free-form named parameters (game sizes, radii, program text…).
    pub params: Vec<(String, String)>,
    /// Labeled structures in the `fmt_structures::parse` text format.
    pub structures: Vec<(String, String)>,
    /// A sentence in the FO text syntax, if the case involves one.
    pub formula: Option<String>,
}

impl ReproCase {
    /// The declared signature as an interned [`Signature`].
    pub fn signature(&self) -> Arc<Signature> {
        let mut b = Signature::builder();
        for (name, arity) in &self.sig {
            b = b.relation(name, *arity);
        }
        b.finish_arc()
    }

    /// Parses the structure block with the given label against the
    /// declared signature.
    pub fn structure(&self, label: &str) -> Result<Structure, String> {
        let (_, text) = self
            .structures
            .iter()
            .find(|(l, _)| l == label)
            .ok_or_else(|| format!("case has no structure {label:?}"))?;
        sparse::parse_with(self.signature(), text).map_err(|e| format!("structure {label}: {e}"))
    }

    /// Looks up a named parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up and parses a numeric parameter.
    pub fn param_u64(&self, name: &str) -> Result<u64, String> {
        self.param(name)
            .ok_or_else(|| format!("case is missing parameter {name:?}"))?
            .parse()
            .map_err(|_| format!("parameter {name:?} is not a number"))
    }

    /// Renders the case in the textual format parsed by [`ReproCase::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# fmt-conform repro case — replay: fmtk conform --replay <this file>"
        );
        let _ = writeln!(out, "oracle: {}", self.oracle);
        let _ = writeln!(out, "seed: {}", self.seed);
        let _ = writeln!(out, "case: {}", self.case);
        if !self.note.is_empty() {
            let _ = writeln!(out, "note: {}", self.note);
        }
        for (name, arity) in &self.sig {
            let _ = writeln!(out, "rel: {name}/{arity}");
        }
        for (name, value) in &self.params {
            let _ = writeln!(out, "param: {name} = {value}");
        }
        for (label, text) in &self.structures {
            let _ = writeln!(out, "structure {label}:");
            let _ = write!(out, "{text}");
            if !text.ends_with('\n') {
                out.push('\n');
            }
            let _ = writeln!(out, "end");
        }
        if let Some(f) = &self.formula {
            let _ = writeln!(out, "formula: {f}");
        }
        out
    }

    /// Parses the textual format produced by [`ReproCase::to_text`].
    pub fn from_text(text: &str) -> Result<ReproCase, String> {
        let mut case = ReproCase::default();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((no, raw)) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| format!("line {}: {msg}", no + 1);
            if let Some(label) = line
                .strip_prefix("structure ")
                .and_then(|r| r.strip_suffix(':'))
            {
                let mut block = String::new();
                let mut closed = false;
                for (_, body) in lines.by_ref() {
                    if body.trim() == "end" {
                        closed = true;
                        break;
                    }
                    block.push_str(body);
                    block.push('\n');
                }
                if !closed {
                    return Err(err(format!("structure {label:?} has no `end`")));
                }
                case.structures.push((label.trim().to_owned(), block));
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| err(format!("unrecognized line {line:?}")))?;
            let value = value.trim();
            match key.trim() {
                "oracle" => case.oracle = value.to_owned(),
                "seed" => {
                    case.seed = value
                        .parse()
                        .map_err(|_| err(format!("invalid seed {value:?}")))?;
                }
                "case" => {
                    case.case = value
                        .parse()
                        .map_err(|_| err(format!("invalid case index {value:?}")))?;
                }
                "note" => case.note = value.to_owned(),
                "rel" => {
                    let (name, arity) = value
                        .split_once('/')
                        .ok_or_else(|| err(format!("expected NAME/ARITY, got {value:?}")))?;
                    let arity: usize = arity
                        .trim()
                        .parse()
                        .map_err(|_| err(format!("invalid arity in {value:?}")))?;
                    case.sig.push((name.trim().to_owned(), arity));
                }
                "param" => {
                    let (name, v) = value
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected NAME = VALUE, got {value:?}")))?;
                    case.params
                        .push((name.trim().to_owned(), v.trim().to_owned()));
                }
                "formula" => case.formula = Some(value.to_owned()),
                other => return Err(err(format!("unknown key {other:?}"))),
            }
        }
        if case.oracle.is_empty() {
            return Err("case has no `oracle:` line".to_owned());
        }
        Ok(case)
    }

    /// The deterministic file name for this case.
    pub fn file_name(&self) -> String {
        format!("{}-s{}-c{}.case", self.oracle, self.seed, self.case)
    }

    /// Writes the case into `dir` (created if needed); returns the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_text())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReproCase {
        ReproCase {
            oracle: "games-orders".into(),
            seed: 42,
            case: 17,
            note: "solver=true closed_form=false".into(),
            sig: vec![("E".into(), 2), ("Mark".into(), 1)],
            params: vec![("m".into(), "3".into()), ("n".into(), "2".into())],
            structures: vec![
                ("A".into(), "size: 3\nE(0,1)\nE(1,2)\n".into()),
                ("B".into(), "size: 2\n".into()),
            ],
            formula: Some("forall x0. exists x1. E(x0, x1)".into()),
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let c = sample();
        let back = ReproCase::from_text(&c.to_text()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn declared_signature_preserves_empty_relations() {
        let c = sample();
        // `Mark/1` has no tuples anywhere, but the explicit declaration
        // keeps it in the parsed structures' signature.
        let a = c.structure("A").unwrap();
        assert!(a.signature().relation("Mark").is_some());
        let b = c.structure("B").unwrap();
        assert_eq!(b.size(), 2);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn errors_are_reported() {
        assert!(ReproCase::from_text("").is_err()); // no oracle
        assert!(ReproCase::from_text("oracle: x\nseed: many\n").is_err());
        assert!(ReproCase::from_text("oracle: x\nstructure A:\nsize: 1\n").is_err()); // no end
        assert!(ReproCase::from_text("oracle: x\nrel: E\n").is_err()); // no arity
        assert!(ReproCase::from_text("mystery: 1\n").is_err());
    }

    #[test]
    fn params_and_missing_lookups() {
        let c = sample();
        assert_eq!(c.param_u64("m").unwrap(), 3);
        assert!(c.param_u64("absent").is_err());
        assert!(c.structure("Z").is_err());
    }
}
