//! Datalog lints D001–D009 (D000 parse-level diagnostics are produced
//! by the entry points in the crate root). D006–D009 are consumers of
//! the [`fmt_queries::depgraph`] precedence-graph analysis — the same
//! pass the engines run, so a D006/D007 verdict here coincides exactly
//! with a typed evaluation error there.

use crate::LintConfig;
use fmt_queries::datalog::{Pred, Program, RuleSpans};
use fmt_queries::depgraph::DepAnalysis;
use fmt_queries::magic::{self, Goal};
use fmt_structures::{Diagnostic, Span};
use std::collections::{HashMap, HashSet};

fn spanned(d: Diagnostic, s: Option<Span>) -> Diagnostic {
    match s {
        Some(sp) => d.with_span(sp),
        None => d,
    }
}

/// Source-position metadata for a parsed program: per-rule spans and
/// variable names, as produced by
/// [`Program::parse_spanned`](fmt_queries::datalog::Program::parse_spanned).
pub type ProgramMeta<'a> = (&'a [RuleSpans], &'a [Vec<String>]);

fn pred_name(p: &Program, pred: Pred) -> String {
    match pred {
        Pred::Edb(r) => p.signature().relation_name(r).to_owned(),
        Pred::Idb(i) => p.idb_info(i).0.to_owned(),
    }
}

/// Runs every Datalog lint over a program. `meta` supplies spans and
/// source variable names when the program came from the parser;
/// without it, diagnostics carry no spans and variables print as
/// `v0`, `v1`, ….
pub fn program_lints(
    p: &Program,
    meta: Option<ProgramMeta<'_>>,
    cfg: &LintConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let vname = |ri: usize, v: u32| -> String {
        meta.and_then(|(_, names)| names[ri].get(v as usize).cloned())
            .unwrap_or_else(|| format!("v{v}"))
    };
    let rule_spans = |ri: usize| meta.map(|(spans, _)| &spans[ri]);

    for (ri, rule) in p.rules().iter().enumerate() {
        // Variables a positive body atom binds. Negated atoms only
        // filter — they never produce bindings, so they count neither
        // for D001 (head safety) nor against D007 (negation safety).
        let pos_bound: HashSet<u32> = rule
            .body
            .iter()
            .filter(|a| !a.negated)
            .flat_map(|a| a.args.iter().copied())
            .collect();

        // D001: head variable not bound by any positive body atom.
        // Body-less rules are exempt — `sg(x, x).` is the survey's
        // idiom for a domain-ranging fact schema.
        if !rule.body.is_empty() {
            let bound = &pos_bound;
            let mut reported = HashSet::new();
            for (pos, &v) in rule.head.args.iter().enumerate() {
                if !bound.contains(&v) && reported.insert(v) {
                    out.push(spanned(
                        Diagnostic::warning(
                            "D001",
                            format!(
                                "head variable {} is not bound by any body atom",
                                vname(ri, v)
                            ),
                        )
                        .with_note(
                            "an unbound head variable ranges over the whole domain; bind it in \
                             the body if that is not intended",
                        ),
                        rule_spans(ri).map(|s| s.head.args[pos]),
                    ));
                }
            }
        }

        // D002: a variable whose only occurrence in the rule is a
        // single body position joins and projects nothing.
        let mut count: HashMap<u32, usize> = HashMap::new();
        for &v in rule
            .head
            .args
            .iter()
            .chain(rule.body.iter().flat_map(|a| a.args.iter()))
        {
            *count.entry(v).or_insert(0) += 1;
        }
        for (bi, atom) in rule.body.iter().enumerate() {
            for (pos, &v) in atom.args.iter().enumerate() {
                // An unbound variable in a negated atom is D007's
                // unsafe-negation error; don't double-report it here.
                if atom.negated && !pos_bound.contains(&v) {
                    continue;
                }
                if count[&v] == 1 {
                    out.push(spanned(
                        Diagnostic::warning(
                            "D002",
                            format!("body variable {} is used only once", vname(ri, v)),
                        )
                        .with_note(
                            "a singleton body variable is an anonymous wildcard; reuse it to \
                             constrain the join if a connection was intended",
                        ),
                        rule_spans(ri).map(|s| s.body[bi].args[pos]),
                    ));
                }
            }
        }

        // D004: duplicate rule. Per-rule variables are numbered by
        // first occurrence, so structural equality is equality up to
        // variable renaming.
        if let Some(rj) = p.rules()[..ri].iter().position(|r| r == rule) {
            out.push(spanned(
                Diagnostic::warning(
                    "D004",
                    format!("rule is identical (up to renaming) to rule {}", rj + 1),
                )
                .with_note("duplicate rules derive the same facts twice per round; delete one"),
                rule_spans(ri).map(|s| s.span),
            ));
        }

        // D005: a variable-free body atom is a constant guard.
        for (bi, atom) in rule.body.iter().enumerate() {
            if atom.args.is_empty() {
                out.push(spanned(
                    Diagnostic::warning(
                        "D005",
                        format!("body atom {} has no variables", pred_name(p, atom.pred)),
                    )
                    .with_note(
                        "its truth is constant within a fixpoint round; the planner should fold \
                         it out of the join rather than re-check it per tuple",
                    ),
                    rule_spans(ri).map(|s| s.body[bi].span),
                ));
            }
        }
    }

    // D003: IDB predicates unreachable from the queried predicate
    // (explicit `goal`, or the first-defined IDB by convention).
    let goal = match &cfg.goal {
        Some(g) => match p.idb(g) {
            Some(i) => i,
            None => {
                out.push(Diagnostic::error(
                    "D003",
                    format!("queried predicate {g} is not defined by the program"),
                ));
                crate::sort_diags(&mut out);
                return out;
            }
        },
        None => 0,
    };
    let mut reach = vec![false; p.num_idbs()];
    let mut stack = vec![goal];
    reach[goal] = true;
    while let Some(i) = stack.pop() {
        for rule in p.rules() {
            if rule.head.pred != Pred::Idb(i) {
                continue;
            }
            for atom in &rule.body {
                if let Pred::Idb(j) = atom.pred {
                    if !reach[j] {
                        reach[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
    }
    for (i, ok) in reach.iter().enumerate() {
        if *ok {
            continue;
        }
        // Rule-less IDBs (registered by a negated reference) have no
        // head to point at; fall back to the first referencing atom.
        let span = match p.rules().iter().position(|r| r.head.pred == Pred::Idb(i)) {
            Some(first_rule) => rule_spans(first_rule).map(|s| s.head.pred),
            None => p.rules().iter().enumerate().find_map(|(ri, r)| {
                let bi = r.body.iter().position(|a| a.pred == Pred::Idb(i))?;
                rule_spans(ri).map(|s| s.body[bi].pred)
            }),
        };
        out.push(spanned(
            Diagnostic::warning(
                "D003",
                format!(
                    "IDB predicate {} is unreachable from queried predicate {}",
                    p.idb_info(i).0,
                    p.idb_info(goal).0
                ),
            )
            .with_note(
                "the query does not depend on it, yet evaluation still computes it; the queried \
                 predicate defaults to the first-defined IDB (override with a goal)",
            ),
            span,
        ));
    }

    // D006–D009 consume the dependency-graph analysis. Positive
    // programs are always stratifiable, safe, and single-stratum, so
    // the pass is skipped entirely — lint output on the pre-negation
    // dialect is unchanged.
    if p.has_negation() {
        let dep = DepAnalysis::of(p);
        for v in &dep.violations {
            let cycle: Vec<&str> = dep.sccs[dep.scc_of[v.dep]]
                .iter()
                .map(|&i| p.idb_info(i).0)
                .collect();
            out.push(spanned(
                Diagnostic::error(
                    "D006",
                    format!(
                        "program is not stratifiable: {} is negated inside its own recursive \
                         component",
                        p.idb_info(v.dep).0
                    ),
                )
                .with_note(format!(
                    "the dependency cycle through {{{}}} passes through this negation, so no \
                     stratum order evaluates {} before its complement is taken; break the cycle \
                     or drop the negation",
                    cycle.join(", "),
                    p.idb_info(v.dep).0
                )),
                rule_spans(v.rule).map(|s| s.body[v.atom].span),
            ));
        }
        for u in &dep.unsafe_negs {
            let rule = &p.rules()[u.rule];
            let pos = rule.body[u.atom]
                .args
                .iter()
                .position(|&v| v == u.var)
                .expect("unsafe variable occurs in the atom that reported it");
            out.push(spanned(
                Diagnostic::error(
                    "D007",
                    format!(
                        "unsafe negation: variable {} is not bound by any positive body atom",
                        vname(u.rule, u.var)
                    ),
                )
                .with_note(
                    "a negated atom can only filter tuples that positive atoms already produced; \
                     bind the variable positively first (range restriction)",
                ),
                rule_spans(u.rule).map(|s| s.body[u.atom].args[pos]),
            ));
        }
        for v in &dep.vacuous {
            out.push(spanned(
                Diagnostic::warning(
                    "D008",
                    format!(
                        "negated predicate {} has no rules; the check is vacuously true",
                        p.idb_info(v.pred).0
                    ),
                )
                .with_note(
                    "its extent is statically empty, so every candidate tuple passes this \
                     anti-join; define the predicate or delete the atom",
                ),
                rule_spans(v.rule).map(|s| s.body[v.atom].span),
            ));
        }
        if let Some(strat) = &dep.stratification {
            if strat.num_strata > cfg.strata_budget {
                out.push(
                    Diagnostic::warning(
                        "D009",
                        format!(
                            "program needs {} strata (budget {}); widest stratum has {} rules",
                            strat.num_strata, cfg.strata_budget, strat.widest
                        ),
                    )
                    .with_note(
                        "each stratum is a full fixpoint over the one below it; a deep negation \
                         chain multiplies evaluation passes and is often a sign the program \
                         should be reformulated",
                    ),
                );
            }
        }
    }
    crate::sort_diags(&mut out);
    out
}

/// Lints a trailing query goal against its (already parsed) rule
/// prefix: D010 for the resolution-error family, D011 when an all-free
/// goal targets a recursive predicate and so prunes nothing.
pub(crate) fn goal_lints(p: &Program, goal: &Goal) -> Vec<Diagnostic> {
    match magic::resolve_goal(p, goal) {
        Err(e) => {
            let span = e.goal_span().unwrap_or(goal.span);
            vec![Diagnostic::error("D010", e.to_string())
                .with_span(span)
                .with_note(
                    "magic-sets rewriting rejects this goal with the same typed error; \
                     check the predicate name, arity, and declared constants",
                )]
        }
        Ok(rg) => {
            if rg.mask.iter().any(|&b| b) {
                return Vec::new();
            }
            // All-free goal: worth a warning only when the predicate is
            // recursive — on a non-recursive one full materialization
            // is what any evaluation strategy would do anyway.
            let dep = DepAnalysis::of(p);
            let scc = dep.scc_of[rg.idb];
            let recursive = dep
                .edges
                .iter()
                .any(|e| dep.scc_of[e.head] == scc && dep.scc_of[e.dep] == scc);
            if !recursive {
                return Vec::new();
            }
            vec![Diagnostic::warning(
                "D011",
                format!(
                    "all-free goal on recursive predicate {} prunes nothing",
                    goal.pred
                ),
            )
            .with_span(goal.span)
            .with_note(
                "with no bound argument the magic-sets rewrite is the identity and the \
                 engine materializes the full fixpoint; bind a constant to prune",
            )]
        }
    }
}
