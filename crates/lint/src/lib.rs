//! # fmt-lint
//!
//! A span-aware static analyzer for FO formulas and Datalog programs —
//! the front end every entry point of the toolbox (CLI, conformance
//! generators, corpus replay) runs before handing an input to an
//! evaluator.
//!
//! The crate is built on two pieces:
//!
//! * the reusable diagnostics core re-exported from
//!   [`fmt_structures::diag`] ([`Diagnostic`] `{ severity, code, span,
//!   message, note }` with rustc-style caret rendering and a JSON
//!   round-trip), fed by the byte-offset spans the parsers now thread
//!   through ([`fmt_logic::parser::parse_formula_spanned`] and
//!   [`fmt_queries::datalog::Program::parse_spanned`]);
//! * a single-pass [`analysis`] IR that computes per-subformula facts
//!   (free variables, quantifier rank, alternation, width, folded
//!   truth values) once and shares them across all lints.
//!
//! ## Lint catalogue
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | F000 | error    | formula parse error (syntax) |
//! | F001 | warning  | unused quantified variable |
//! | F002 | warning  | variable rebinds an enclosing binding |
//! | F003 | warning  | trivially true/false subformula (constant folding) |
//! | F004 | error    | unknown relation / arity mismatch / bad constant |
//! | F005 | warning  | quantifier-rank budget exceeded (Thm 3.1 `2^n` blow-up) |
//! | F006 | error    | sentence expected but free variables found |
//! | D000 | error    | Datalog program parse error |
//! | D001 | warning  | unsafe rule: head variable not bound by the body |
//! | D002 | warning  | singleton (unused) body variable |
//! | D003 | warning* | IDB unreachable from the queried predicate (*error for an unknown goal) |
//! | D004 | warning  | duplicate rule (up to variable renaming) |
//! | D005 | warning  | variable-free body atom the planner should fold |
//! | D006 | error    | unstratifiable: negation inside a recursive component |
//! | D007 | error    | unsafe negation: variable not positively bound |
//! | D008 | warning  | negated predicate has no rules (vacuously true) |
//! | D009 | warning  | stratum budget exceeded (complexity signal) |
//! | D010 | error    | query goal references an unknown predicate / arity mismatch |
//! | D011 | warning  | all-free query goal on a recursive predicate prunes nothing |
//!
//! See `docs/lint.md` for one minimal trigger example per code and the
//! JSON output schema, and `docs/stratification.md` for the dependency
//! graph behind D006–D009.
//!
//! ## Example
//!
//! ```
//! use fmt_lint::{lint_formula_src, LintConfig};
//! use fmt_structures::Signature;
//!
//! let sig = Signature::graph();
//! let diags = lint_formula_src(&sig, "exists x. E(y, y)", &LintConfig::default());
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, "F001"); // x is never used
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod dl;
mod fo;

use fmt_logic::parser::{parse_formula_spanned, LogicParseErrorKind, ParsedFormula};
use fmt_logic::{Formula, Var};
use fmt_queries::datalog::{ParsedProgram, Program};
use fmt_structures::Signature;
use std::sync::Arc;

pub use dl::{program_lints, ProgramMeta};
pub use fmt_structures::{diag, Diagnostic, Severity, Span};
pub use fo::formula_lints;

/// Lint codes and their one-line descriptions, in catalogue order.
pub const CODES: &[(&str, &str)] = &[
    ("F000", "formula parse error (syntax)"),
    ("F001", "unused quantified variable"),
    ("F002", "variable rebinds an enclosing binding"),
    ("F003", "trivially true/false subformula"),
    ("F004", "unknown relation or arity mismatch"),
    ("F005", "quantifier-rank budget exceeded"),
    ("F006", "sentence expected but free variables found"),
    ("D000", "Datalog program parse error"),
    ("D001", "unsafe rule: head variable not bound by the body"),
    ("D002", "singleton (unused) body variable"),
    ("D003", "IDB unreachable from the queried predicate"),
    ("D004", "duplicate rule"),
    ("D005", "variable-free body atom the planner should fold"),
    (
        "D006",
        "unstratifiable: negation inside a recursive component",
    ),
    ("D007", "unsafe negation: variable not positively bound"),
    ("D008", "negated predicate has no rules (vacuously true)"),
    ("D009", "stratum budget exceeded"),
    ("D010", "query goal references an unknown predicate"),
    ("D011", "all-free query goal on a recursive predicate"),
];

/// The long-form, rustc-style explanation behind `fmtk lint --explain
/// CODE`: what the code means, why it matters, and how to fix it.
/// `None` for unknown codes; every code in [`CODES`] has one.
pub fn explain(code: &str) -> Option<&'static str> {
    Some(match code {
        "F000" => {
            "The formula could not be parsed. The diagnostic's span points at the \
             byte where the parser gave up. Common causes: unbalanced parentheses, \
             a missing `.` after a quantifier block, or an operator typo. Fix the \
             syntax at the caret; the parser reports the first error only."
        }
        "F001" => {
            "A quantified variable is never used inside its scope. `exists x. E(y, y)` \
             quantifies x but the body never mentions it, so the quantifier only \
             asserts the domain is non-empty — almost never what was meant. Either \
             use the variable in the body or delete the binder."
        }
        "F002" => {
            "A quantifier rebinds a variable that an enclosing quantifier already \
             binds, as in `forall x. exists x. ...`. The inner binding shadows the \
             outer one, so the outer variable cannot be mentioned in the inner scope. \
             Rename one of the variables; shadowing in hand-written formulas is \
             nearly always an editing accident."
        }
        "F003" => {
            "Constant folding proved a subformula identically true or false, e.g. \
             `E(x, y) & false`. The span covers the largest foldable subformula. \
             Simplify the formula by hand — the trivial branch either deletes the \
             surrounding connective or the whole formula."
        }
        "F004" => {
            "The formula mentions a relation the signature does not define, or uses \
             one at the wrong arity, or names a constant outside the structure's \
             domain. Check the spelling against the signature (relation names match \
             case-insensitively) and the declared arities."
        }
        "F005" => {
            "The formula's quantifier rank exceeds the configured budget \
             (`--rank-budget`, default 8). Rank drives the cost of every \
             Ehrenfeucht-Fraisse argument and the `2^n` blow-up of Theorem 3.1 \
             normal forms, so deep quantifier nesting is a complexity smell. Flatten \
             nested quantifiers or raise the budget deliberately."
        }
        "F006" => {
            "A sentence (closed formula) was expected — `--sentence` was passed or \
             the calling context requires one — but the formula has free variables. \
             The message lists them. Quantify the free variables or drop the \
             sentence expectation."
        }
        "D000" => {
            "The Datalog program could not be parsed. The span points at the \
             offending token. Rules are `head :- a1, a2, ... .` with a terminating \
             period; predicates matching a signature relation (case-insensitively) \
             are EDB and may not be redefined; every other predicate must appear in \
             some head or under a negation."
        }
        "D001" => {
            "A head variable is not bound by any positive body atom, so it ranges \
             over the entire domain: `p(x, y) :- e(x, x).` derives p(c, d) for every \
             d. Negated atoms do not bind (they only filter), so a variable that \
             appears under negation alone still fires this. Body-less fact schemas \
             like `sg(x, x).` are exempt — domain-ranging is their point. Bind the \
             variable in a positive atom if blow-up was not intended."
        }
        "D002" => {
            "A body variable occurs exactly once in its rule, so it joins nothing \
             and projects nothing — an anonymous wildcard. That is legal but often \
             a typo for a variable that was meant to link two atoms. Reuse the \
             variable to constrain the join, or accept the existential reading."
        }
        "D003" => {
            "An IDB predicate cannot be reached from the queried predicate in the \
             rule dependency graph, yet the engine still materializes it every \
             round. The queried predicate defaults to the first-defined IDB; pass \
             `--goal PRED` if the real query root differs. Delete dead rules or \
             re-point the goal. (An unknown --goal name is the error form.)"
        }
        "D004" => {
            "Two rules are identical up to consistent variable renaming, e.g. \
             `p(x) :- e(x, x).` and `p(y) :- e(y, y).`. The duplicate derives the \
             same facts twice per round and doubles join work for nothing. Delete \
             one copy."
        }
        "D005" => {
            "A body atom has no variables (`hit`, `p()`), so its truth is constant \
             within a fixpoint round. The join planner should hoist it out as a \
             guard instead of re-checking it per candidate tuple; until it does, \
             move the atom first or question why a constant guard is in the rule."
        }
        "D006" => {
            "The program is not stratifiable: some predicate is negated inside its \
             own recursive component, as in `p(x) :- e(x, y), !p(y).`. Stratified \
             semantics needs the negated predicate fully computed in a lower \
             stratum, which a dependency cycle through the negation makes \
             impossible — there is no evaluation order, and every engine rejects \
             the program with the same typed error. The note lists the cycle's \
             predicates; break the cycle or remove the negation. (Well-founded or \
             stable-model semantics would assign meaning, but this dialect is \
             stratified only.)"
        }
        "D007" => {
            "A variable inside a negated atom is not bound by any positive atom of \
             the same rule: `q(x) :- e(x, x), !p(y, y).`. Negation-as-failure can \
             only filter tuples that positive atoms produced — an unbound negated \
             variable would quantify over the whole domain (\"for no y ...\"), \
             which is unsafe under the active-domain semantics. Bind the variable \
             in a positive atom first (range restriction)."
        }
        "D008" => {
            "A negated predicate has no rules, so its extent is statically empty \
             and the negation passes every candidate tuple: `!ghost(x)` is always \
             true. The program means the same without the atom — which usually \
             signals a misspelled predicate name rather than an intentional no-op. \
             Define the predicate or delete the atom."
        }
        "D009" => {
            "Stratification succeeded but needs more strata than the configured \
             budget (default 4). Each stratum is a complete fixpoint over the one \
             below, so a deep negation chain multiplies evaluation passes; the \
             message also reports the widest stratum (rules evaluated together) as \
             a join-pressure signal. Deep chains are legal — this is a complexity \
             warning, not an error."
        }
        "D010" => {
            "The trailing query goal (`pred(args)?` or `--query`) does not resolve \
             against the program: the predicate is unknown, names an EDB relation \
             (only IDB predicates can be queried — EDB extents are given, not \
             derived), the argument count differs from the predicate's arity, or a \
             quoted constant is not declared by the signature. The span points at \
             the offending goal token. Magic-sets rewriting refuses such goals with \
             the same typed error this lint renders."
        }
        "D011" => {
            "The query goal binds no argument (all positions are variables) but the \
             queried predicate is recursive, so magic-sets rewriting degenerates to \
             the identity: the engine materializes the full fixpoint exactly as it \
             would without the goal, and the `?` buys nothing. That is legal — the \
             transparency guarantee depends on it — but if pruning was the point, \
             bind at least one argument to a constant (`tc(\"a\", y)?`)."
        }
        _ => return None,
    })
}

/// Formulas analyzed (parsed or AST).
static OBS_FORMULAS: fmt_obs::Counter = fmt_obs::Counter::new("lint.formulas");
/// Datalog programs analyzed (parsed or AST).
static OBS_PROGRAMS: fmt_obs::Counter = fmt_obs::Counter::new("lint.programs");
/// Diagnostics emitted across all inputs.
static OBS_DIAGS: fmt_obs::Counter = fmt_obs::Counter::new("lint.diagnostics");
/// Diagnostics per analyzed input.
static OBS_PER_INPUT: fmt_obs::Histogram = fmt_obs::Histogram::new("lint.diags_per_input");

/// Tunable thresholds and expectations for a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// F005 fires when the formula's quantifier rank exceeds this.
    pub rank_budget: u32,
    /// When set, F006 fires on formulas with free variables.
    pub expect_sentence: bool,
    /// The queried IDB predicate D003 computes reachability from
    /// (`None` = the first-defined IDB).
    pub goal: Option<String>,
    /// D009 fires when a program's stratification needs more than this
    /// many strata.
    pub strata_budget: usize,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            rank_budget: 8,
            expect_sentence: false,
            goal: None,
            strata_budget: 4,
        }
    }
}

fn meter(diags: &[Diagnostic]) {
    OBS_DIAGS.add(diags.len() as u64);
    OBS_PER_INPUT.record(diags.len() as u64);
}

/// Stable presentation order: by source position, then code.
pub(crate) fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let ka = (a.span.map_or(usize::MAX, |s| s.start), &a.code);
        let kb = (b.span.map_or(usize::MAX, |s| s.start), &b.code);
        ka.cmp(&kb)
    });
}

/// True if any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Parses and lints a formula. Parse errors come back as a single
/// error diagnostic (F000 for syntax, F004 for unknown relations and
/// arity mismatches), with the parser's span.
pub fn lint_formula_src(sig: &Signature, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    OBS_FORMULAS.incr();
    let out = match parse_formula_spanned(sig, src) {
        Ok(p) => lint_parsed_formula(&p, cfg),
        Err(e) => {
            let code = match e.kind {
                LogicParseErrorKind::Syntax => "F000",
                LogicParseErrorKind::UnknownRelation | LogicParseErrorKind::ArityMismatch => "F004",
            };
            vec![Diagnostic::error(code, e.message).with_span(e.span)]
        }
    };
    meter(&out);
    out
}

/// Lints an already-parsed formula, reusing its spans and source
/// variable names.
pub fn lint_parsed_formula(p: &ParsedFormula, cfg: &LintConfig) -> Vec<Diagnostic> {
    let a = analysis::analyze(&p.formula, Some(&p.spans));
    let name = |v: Var| {
        p.vars
            .get(v.0 as usize)
            .cloned()
            .unwrap_or_else(|| v.to_string())
    };
    fo::formula_lints(&a, cfg, &name)
}

/// Lints a programmatically built formula AST (no spans; variables
/// print canonically as `x0`, `x1`, …). Ill-formedness surfaces as the
/// F004 diagnostic of [`Formula::well_formed`].
pub fn lint_formula(sig: &Signature, f: &Formula, cfg: &LintConfig) -> Vec<Diagnostic> {
    OBS_FORMULAS.incr();
    let out = match f.well_formed(sig) {
        Err(d) => vec![d],
        Ok(()) => {
            let a = analysis::analyze(f, None);
            fo::formula_lints(&a, cfg, &|v: Var| v.to_string())
        }
    };
    meter(&out);
    out
}

/// Parses and lints a Datalog program, including an optional trailing
/// query goal (`pred(args)?` — lint codes D010/D011). Parse errors
/// come back as a single D000 error diagnostic with the parser's span.
pub fn lint_program_src(sig: &Arc<Signature>, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    OBS_PROGRAMS.incr();
    // Split off a trailing query goal first; the rule prefix is a
    // byte-prefix of `src`, so every span below renders against the
    // original file unchanged.
    let out = match fmt_queries::magic::split_query(src) {
        Err(e) => vec![Diagnostic::error("D000", e.message).with_span(e.span)],
        Ok(split) => {
            let body = split.as_ref().map_or(src, |(len, _)| &src[..*len]);
            match Program::parse_spanned(sig, body) {
                Ok(p) => {
                    let mut d = lint_parsed_program(&p, cfg);
                    if let Some((_, goal)) = &split {
                        d.extend(dl::goal_lints(&p.program, goal));
                        sort_diags(&mut d);
                    }
                    d
                }
                Err(e) => vec![Diagnostic::error("D000", e.message).with_span(e.span)],
            }
        }
    };
    meter(&out);
    out
}

/// Lints an already-parsed program, reusing its spans and source
/// variable names.
pub fn lint_parsed_program(p: &ParsedProgram, cfg: &LintConfig) -> Vec<Diagnostic> {
    dl::program_lints(&p.program, Some((&p.spans, &p.var_names)), cfg)
}

/// Lints a [`Program`] without source metadata (no spans; variables
/// print as `v0`, `v1`, …).
pub fn lint_program(p: &Program, cfg: &LintConfig) -> Vec<Diagnostic> {
    OBS_PROGRAMS.incr();
    let out = dl::program_lints(p, None, cfg);
    meter(&out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn f001_unused_quantified_variable() {
        let sig = Signature::graph();
        let src = "exists x. E(y, y)";
        let d = lint_formula_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["F001"]);
        assert_eq!(d[0].span.unwrap().slice(src), "x");
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn f002_shadowing() {
        let sig = Signature::graph();
        let src = "forall x. exists x. E(x, x)";
        let d = lint_formula_src(&sig, src, &LintConfig::default());
        // The outer x is unused (its body's x is rebound) and the
        // inner binder shadows it.
        assert_eq!(codes(&d), ["F001", "F002"]);
        assert_eq!(d[1].span.unwrap(), Span::new(17, 18));
    }

    #[test]
    fn f003_trivial_subformula_is_maximal() {
        let sig = Signature::graph();
        let src = "E(x, y) & false";
        let d = lint_formula_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["F003"]);
        // The whole conjunction folds, not just the literal.
        assert_eq!(d[0].span.unwrap().slice(src), src);
    }

    #[test]
    fn f004_parse_errors_are_precise() {
        let sig = Signature::graph();
        let src = "E(x, y) & R(x)";
        let d = lint_formula_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["F004"]);
        assert_eq!(d[0].severity, Severity::Error);
        assert_eq!(d[0].span.unwrap().slice(src), "R");
        let d = lint_formula_src(&sig, "E(x, y", &LintConfig::default());
        assert_eq!(codes(&d), ["F000"]);
    }

    #[test]
    fn f005_rank_budget() {
        let sig = Signature::graph();
        let src = "exists x. forall y. E(x, y)";
        let cfg = LintConfig {
            rank_budget: 1,
            ..LintConfig::default()
        };
        let d = lint_formula_src(&sig, src, &cfg);
        assert_eq!(codes(&d), ["F005"]);
        assert!(d[0].note.as_deref().unwrap().contains("2^n"), "{:?}", d[0]);
        assert!(lint_formula_src(&sig, src, &LintConfig::default()).is_empty());
    }

    #[test]
    fn f006_sentence_expected() {
        let sig = Signature::graph();
        let cfg = LintConfig {
            expect_sentence: true,
            ..LintConfig::default()
        };
        let d = lint_formula_src(&sig, "E(x, y)", &cfg);
        assert_eq!(codes(&d), ["F006"]);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("x, y"));
        assert!(lint_formula_src(&sig, "forall x y. E(x, y)", &cfg).is_empty());
    }

    #[test]
    fn d001_unbound_head_variable() {
        let sig = Signature::graph();
        let src = "p(x, y) :- e(x, x).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D001"]);
        assert_eq!(d[0].span.unwrap(), Span::new(5, 6));
        // Body-less fact schemas are the survey's idiom — exempt.
        assert!(lint_program_src(&sig, "p(x, y).", &LintConfig::default()).is_empty());
    }

    #[test]
    fn d002_singleton_body_variable() {
        let sig = Signature::graph();
        let src = "p(x) :- e(x, y).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D002"]);
        assert_eq!(d[0].span.unwrap(), Span::new(13, 14));
    }

    #[test]
    fn d003_unreachable_idb() {
        let sig = Signature::graph();
        let src = "p(x) :- e(x, x). q(x) :- q(x).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D003"]);
        assert_eq!(d[0].span.unwrap().slice(src), "q");
        // An explicit goal changes reachability.
        let cfg = LintConfig {
            goal: Some("q".into()),
            ..LintConfig::default()
        };
        let d = lint_program_src(&sig, src, &cfg);
        assert_eq!(codes(&d), ["D003"]);
        assert!(
            d[0].message.contains("p is unreachable"),
            "{}",
            d[0].message
        );
        // An unknown goal is an error.
        let cfg = LintConfig {
            goal: Some("nope".into()),
            ..LintConfig::default()
        };
        let d = lint_program_src(&sig, src, &cfg);
        assert!(has_errors(&d));
    }

    #[test]
    fn d004_duplicate_rule_up_to_renaming() {
        let sig = Signature::graph();
        let src = "p(x) :- e(x, x). p(y) :- e(y, y).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D004"]);
        assert_eq!(d[0].span.unwrap().slice(src), "p(y) :- e(y, y)");
    }

    #[test]
    fn d005_variable_free_body_atom() {
        let sig = Signature::graph();
        let src = "p(x) :- hit, e(x, x). hit :- e(x, x).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D005"]);
        assert_eq!(d[0].span.unwrap().slice(src), "hit");
        assert_eq!(d[0].span.unwrap(), Span::new(8, 11));
    }

    #[test]
    fn d000_parse_error() {
        let sig = Signature::graph();
        let d = lint_program_src(&sig, "p(x) :- q(x).", &LintConfig::default());
        assert_eq!(codes(&d), ["D000"]);
        assert!(has_errors(&d));
    }

    #[test]
    fn d006_unstratifiable_negation() {
        let sig = Signature::graph();
        let src = "p(x) :- e(x, y), !p(y).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D006"]);
        assert_eq!(d[0].severity, Severity::Error);
        assert_eq!(d[0].span.unwrap().slice(src), "!p(y)");
        assert!(d[0].note.as_deref().unwrap().contains("{p}"), "{:?}", d[0]);
        // Mutual recursion through a negation: both spellings carry
        // carets, and the note names the whole cycle.
        let src = "p(x) :- e(x, y), not q(y). q(x) :- p(x).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D006"]);
        assert_eq!(d[0].span.unwrap().slice(src), "not q(y)");
        assert!(d[0].note.as_deref().unwrap().contains("p, q"), "{:?}", d[0]);
    }

    #[test]
    fn d007_unsafe_negation() {
        let sig = Signature::graph();
        let src = "q(x) :- e(x, x), !p(y, y). p(x, y) :- e(x, y).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D007"]);
        assert_eq!(d[0].severity, Severity::Error);
        // The caret lands on the unbound variable itself.
        assert_eq!(d[0].span.unwrap(), Span::new(20, 21));
        assert_eq!(d[0].span.unwrap().slice(src), "y");
        assert!(d[0].message.contains("variable y"), "{}", d[0].message);
    }

    #[test]
    fn d008_vacuous_negation() {
        let sig = Signature::graph();
        let src = "q(x) :- e(x, x), !ghost(x).";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D008"]);
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].span.unwrap().slice(src), "!ghost(x)");
    }

    #[test]
    fn d009_stratum_budget() {
        let sig = Signature::graph();
        let src = "p1(x) :- e(x, x). \
                   p2(x) :- e(x, x), !p1(x). \
                   p3(x) :- e(x, x), !p2(x). \
                   p4(x) :- e(x, x), !p3(x). \
                   p5(x) :- e(x, x), !p4(x).";
        let cfg = LintConfig {
            goal: Some("p5".into()),
            ..LintConfig::default()
        };
        let d = lint_program_src(&sig, src, &cfg);
        assert_eq!(codes(&d), ["D009"]);
        assert!(d[0].message.contains("5 strata"), "{}", d[0].message);
        // Default budget of 4 tolerates a 4-stratum chain.
        let short = "p1(x) :- e(x, x). \
                     p2(x) :- e(x, x), !p1(x). \
                     p3(x) :- e(x, x), !p2(x). \
                     p4(x) :- e(x, x), !p3(x).";
        let cfg = LintConfig {
            goal: Some("p4".into()),
            ..LintConfig::default()
        };
        assert!(lint_program_src(&sig, short, &cfg).is_empty());
    }

    #[test]
    fn d010_unresolvable_query_goal() {
        let sig = Signature::graph();
        let src = "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z). ghost(x, y)?";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D010"]);
        assert!(has_errors(&d));
        assert_eq!(d[0].span.unwrap().slice(src), "ghost");
        // Arity mismatches span the whole goal atom.
        let src = "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z). tc(0)?";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D010"]);
        assert_eq!(d[0].span.unwrap().slice(src), "tc(0)");
        // Querying an EDB relation is the NotIdb member of the family.
        let src = "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z). e(0, y)?";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D010"]);
        assert_eq!(d[0].span.unwrap().slice(src), "e");
    }

    #[test]
    fn d011_all_free_goal_on_recursive_predicate() {
        let sig = Signature::graph();
        let src = "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z). tc(x, y)?";
        let d = lint_program_src(&sig, src, &LintConfig::default());
        assert_eq!(codes(&d), ["D011"]);
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].span.unwrap().slice(src), "tc(x, y)");
        // A bound argument prunes — clean.
        let bound = "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z). tc(0, y)?";
        assert!(lint_program_src(&sig, bound, &LintConfig::default()).is_empty());
        // A non-recursive goal predicate materializes identically with
        // or without the goal, so an all-free goal is not a smell.
        let flat = "p(x, y) :- e(x, y). p(x, y)?";
        assert!(lint_program_src(&sig, flat, &LintConfig::default()).is_empty());
        // A malformed goal is a D000 parse diagnostic, not D010/D011.
        let bad = "p(x, y) :- e(x, y). p(x, y)? q(x)?";
        let d = lint_program_src(&sig, bad, &LintConfig::default());
        assert_eq!(codes(&d), ["D000"]);
    }

    #[test]
    fn stratified_negation_is_lint_clean() {
        let sig = Signature::graph();
        let src = "t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z). \
                   nt(x, y) :- e(x, y), !t(y, x).";
        let cfg = LintConfig {
            goal: Some("nt".into()),
            ..LintConfig::default()
        };
        let d = lint_program_src(&sig, src, &cfg);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn every_code_has_a_nonempty_explanation() {
        for (code, summary) in CODES {
            let text = explain(code)
                .unwrap_or_else(|| panic!("code {code} ({summary}) has no explanation"));
            assert!(
                text.trim().len() >= 80,
                "explanation for {code} is too short to be useful"
            );
        }
        assert_eq!(explain("D999"), None);
    }

    #[test]
    fn canned_programs_are_lint_clean() {
        let sig = Signature::graph();
        for src in [
            "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z).",
            "sg(x, x). sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp).",
        ] {
            let d = lint_program_src(&sig, src, &LintConfig::default());
            assert!(d.is_empty(), "{src}: {d:?}");
        }
    }

    #[test]
    fn ast_paths_work_without_spans() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = Formula::exists(Var(0), Formula::atom(e, &[Var(1), Var(1)]));
        let d = lint_formula(&sig, &f, &LintConfig::default());
        assert_eq!(codes(&d), ["F001"]);
        assert_eq!(d[0].span, None);
        assert!(d[0].message.contains("x0"));

        let p = Program::same_generation();
        assert!(lint_program(&p, &LintConfig::default()).is_empty());
    }

    #[test]
    fn metering_counts_inputs_and_diagnostics() {
        fmt_obs::reset();
        fmt_obs::enable();
        let sig = Signature::graph();
        lint_formula_src(&sig, "exists x. E(y, y)", &LintConfig::default());
        lint_program_src(&sig, "p(x) :- e(x, x).", &LintConfig::default());
        let snap = fmt_obs::snapshot();
        fmt_obs::disable();
        assert_eq!(snap.counter("lint.formulas"), Some(1));
        assert_eq!(snap.counter("lint.programs"), Some(1));
        assert_eq!(snap.counter("lint.diagnostics"), Some(1));
    }
}
