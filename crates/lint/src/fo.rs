//! Formula lints F001–F006 (F000/F004 parse-level diagnostics are
//! produced by the entry points in the crate root).

use crate::analysis::{FormulaAnalysis, NodeKind};
use crate::LintConfig;
use fmt_logic::Var;
use fmt_structures::{Diagnostic, Span};

fn spanned(d: Diagnostic, s: Option<Span>) -> Diagnostic {
    match s {
        Some(sp) => d.with_span(sp),
        None => d,
    }
}

/// Runs every formula lint over a shared [`FormulaAnalysis`]. `name`
/// maps variables back to their source names (use `Var::to_string` for
/// programmatic ASTs).
pub fn formula_lints(
    a: &FormulaAnalysis,
    cfg: &LintConfig,
    name: &dyn Fn(Var) -> String,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let nodes = a.nodes();
    for (i, n) in nodes.iter().enumerate() {
        if let Some(v) = n.bound_var {
            let body = &nodes[n.children[0]];
            if !body.free.contains(&v) {
                out.push(spanned(
                    Diagnostic::warning(
                        "F001",
                        format!("quantified variable {} is never used", name(v)),
                    )
                    .with_note("drop the quantifier, or use the variable in its body"),
                    n.binder.or(n.span),
                ));
            }
            if a.bound_above(i, v) {
                out.push(spanned(
                    Diagnostic::warning(
                        "F002",
                        format!(
                            "variable {} rebinds a variable bound by an enclosing quantifier",
                            name(v)
                        ),
                    )
                    .with_note(
                        "the inner binding shadows the outer one; rename it to keep scopes readable",
                    ),
                    n.binder.or(n.span),
                ));
            }
        }
        // F003 fires on the *maximal* folded subformula: literals are
        // exempt, and a node whose parent also folds is subsumed.
        if let Some(b) = n.fold {
            let literal = matches!(n.kind, NodeKind::True | NodeKind::False);
            let parent_folds = n.parent.is_some_and(|p| nodes[p].fold.is_some());
            if !literal && !parent_folds {
                out.push(spanned(
                    Diagnostic::warning("F003", format!("subformula is trivially {b}"))
                        .with_note(
                            "constant folding determines its value on every structure; simplify it away",
                        ),
                    n.span,
                ));
            }
        }
    }
    let root = a.root();
    if root.rank > cfg.rank_budget {
        out.push(spanned(
            Diagnostic::warning(
                "F005",
                format!(
                    "quantifier rank {} exceeds the budget of {}",
                    root.rank, cfg.rank_budget
                ),
            )
            .with_note(format!(
                "rank-n arguments blow up as 2^n (Thm 3.1): deciding rank-{} \
                 equivalence explores on the order of 2^{} game positions, and naive \
                 evaluation nests as many loops",
                root.rank, root.rank
            )),
            root.span,
        ));
    }
    if cfg.expect_sentence && !root.free.is_empty() {
        let vars: Vec<String> = root.free.iter().map(|&v| name(v)).collect();
        let plural = if vars.len() == 1 { "occurs" } else { "occur" };
        out.push(spanned(
            Diagnostic::error(
                "F006",
                format!("expected a sentence, but {} {plural} free", vars.join(", ")),
            )
            .with_note("close the formula with quantifiers, or evaluate it as a query"),
            root.span,
        ));
    }
    crate::sort_diags(&mut out);
    out
}
