//! The single-pass analysis IR.
//!
//! [`analyze`] walks a formula once (optionally in lockstep with the
//! parser's [`SpanTree`]) and computes, per subformula: free variables,
//! quantifier rank, quantifier alternation, width (number of free
//! variables), and the constant-folded truth value where one is
//! determined. Every formula lint reads these shared facts instead of
//! re-walking the tree.

use fmt_logic::parser::SpanTree;
use fmt_logic::{Formula, Term, Var};
use fmt_structures::Span;
use std::collections::BTreeSet;

/// What kind of formula node a [`NodeFacts`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The `true` literal.
    True,
    /// The `false` literal.
    False,
    /// A relational atom.
    Atom,
    /// An equality atom.
    Eq,
    /// Negation.
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// Implication.
    Implies,
    /// Bi-implication.
    Iff,
    /// Existential quantifier.
    Exists,
    /// Universal quantifier.
    Forall,
}

/// Per-subformula facts, computed once by [`analyze`].
#[derive(Debug, Clone)]
pub struct NodeFacts {
    /// What the node is.
    pub kind: NodeKind,
    /// Index of the parent node (`None` at the root).
    pub parent: Option<usize>,
    /// Indices of the children, in AST order.
    pub children: Vec<usize>,
    /// Source byte range, when the formula came from the parser.
    pub span: Option<Span>,
    /// For quantifier nodes, the span of the bound variable name.
    pub binder: Option<Span>,
    /// For quantifier nodes, the bound variable.
    pub bound_var: Option<Var>,
    /// Free variables of this subformula.
    pub free: BTreeSet<Var>,
    /// Quantifier rank of this subformula.
    pub rank: u32,
    /// Width: the number of free variables of this subformula.
    pub width: usize,
    /// Greatest number of alternating quantifier blocks along any path
    /// into this subformula whose outermost block is existential.
    pub alt_e: u32,
    /// Same, for paths whose outermost block is universal.
    pub alt_a: u32,
    /// The truth value constant folding determines for this
    /// subformula, if any. Folding is conservative on quantifiers
    /// (`forall` folds only to `true`, `exists` only to `false`) so it
    /// stays sound on empty domains.
    pub fold: Option<bool>,
}

/// The analysis of one formula: [`NodeFacts`] for every subformula, in
/// pre-order (node 0 is the root, a quantifier's body is the next
/// index).
#[derive(Debug, Clone)]
pub struct FormulaAnalysis {
    nodes: Vec<NodeFacts>,
}

impl FormulaAnalysis {
    /// The per-subformula facts, in pre-order.
    pub fn nodes(&self) -> &[NodeFacts] {
        &self.nodes
    }

    /// The root node's facts.
    pub fn root(&self) -> &NodeFacts {
        &self.nodes[0]
    }

    /// Quantifier alternation depth of the whole formula: the greatest
    /// number of alternating quantifier blocks along any path.
    pub fn alternation(&self) -> u32 {
        self.root().alt_e.max(self.root().alt_a)
    }

    /// Width of the formula: the maximum number of free variables of
    /// any subformula.
    pub fn max_width(&self) -> usize {
        self.nodes.iter().map(|n| n.width).max().unwrap_or(0)
    }

    /// True if some ancestor of `i` (strictly above it) binds `v`.
    pub fn bound_above(&self, i: usize, v: Var) -> bool {
        let mut cur = self.nodes[i].parent;
        while let Some(p) = cur {
            if self.nodes[p].bound_var == Some(v) {
                return true;
            }
            cur = self.nodes[p].parent;
        }
        false
    }
}

/// Analyzes a formula in one pass, optionally aligning each node with
/// the parser's span tree (pass `None` for programmatically built
/// ASTs).
pub fn analyze(f: &Formula, spans: Option<&SpanTree>) -> FormulaAnalysis {
    let mut nodes = Vec::new();
    go(f, spans, None, &mut nodes);
    FormulaAnalysis { nodes }
}

fn placeholder(parent: Option<usize>) -> NodeFacts {
    NodeFacts {
        kind: NodeKind::True,
        parent,
        children: Vec::new(),
        span: None,
        binder: None,
        bound_var: None,
        free: BTreeSet::new(),
        rank: 0,
        width: 0,
        alt_e: 0,
        alt_a: 0,
        fold: None,
    }
}

fn go(
    f: &Formula,
    sp: Option<&SpanTree>,
    parent: Option<usize>,
    nodes: &mut Vec<NodeFacts>,
) -> usize {
    let idx = nodes.len();
    nodes.push(placeholder(parent));

    let kids: Vec<&Formula> = match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => Vec::new(),
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => vec![g],
        Formula::And(fs) | Formula::Or(fs) => fs.iter().collect(),
        Formula::Implies(a, b) | Formula::Iff(a, b) => vec![a, b],
    };
    let child_idx: Vec<usize> = kids
        .iter()
        .enumerate()
        .map(|(i, g)| go(g, sp.and_then(|s| s.children.get(i)), Some(idx), nodes))
        .collect();

    let kind = match f {
        Formula::True => NodeKind::True,
        Formula::False => NodeKind::False,
        Formula::Atom { .. } => NodeKind::Atom,
        Formula::Eq(..) => NodeKind::Eq,
        Formula::Not(_) => NodeKind::Not,
        Formula::And(_) => NodeKind::And,
        Formula::Or(_) => NodeKind::Or,
        Formula::Implies(..) => NodeKind::Implies,
        Formula::Iff(..) => NodeKind::Iff,
        Formula::Exists(..) => NodeKind::Exists,
        Formula::Forall(..) => NodeKind::Forall,
    };

    // Free variables.
    let mut free: BTreeSet<Var> = BTreeSet::new();
    match f {
        Formula::Atom { args, .. } => free.extend(args.iter().filter_map(Term::as_var)),
        Formula::Eq(a, b) => free.extend([a, b].into_iter().filter_map(fmt_logic::Term::as_var)),
        Formula::Exists(v, _) | Formula::Forall(v, _) => {
            free.extend(nodes[child_idx[0]].free.iter().copied());
            free.remove(v);
        }
        _ => {
            for &c in &child_idx {
                free.extend(nodes[c].free.iter().copied());
            }
        }
    }

    // Quantifier rank.
    let child_rank = child_idx.iter().map(|&c| nodes[c].rank).max().unwrap_or(0);
    let rank = match f {
        Formula::Exists(..) | Formula::Forall(..) => child_rank + 1,
        _ => child_rank,
    };

    // Alternation: count maximal blocks of like quantifiers.
    let (alt_e, alt_a) = match f {
        Formula::Exists(..) => {
            let c = &nodes[child_idx[0]];
            (1.max(c.alt_e).max(c.alt_a + 1), 0)
        }
        Formula::Forall(..) => {
            let c = &nodes[child_idx[0]];
            (0, 1.max(c.alt_a).max(c.alt_e + 1))
        }
        _ => child_idx.iter().fold((0, 0), |(e, a), &c| {
            (e.max(nodes[c].alt_e), a.max(nodes[c].alt_a))
        }),
    };

    // Constant folding (sound on empty domains: a quantifier folds only
    // when its body's value makes the block's value domain-independent).
    let folds: Vec<Option<bool>> = child_idx.iter().map(|&c| nodes[c].fold).collect();
    let fold = match f {
        Formula::True => Some(true),
        Formula::False => Some(false),
        Formula::Atom { .. } => None,
        Formula::Eq(a, b) => (a == b).then_some(true),
        Formula::Not(_) => folds[0].map(|b| !b),
        Formula::And(_) => {
            if folds.contains(&Some(false)) {
                Some(false)
            } else if folds.iter().all(|&b| b == Some(true)) {
                Some(true)
            } else {
                None
            }
        }
        Formula::Or(_) => {
            if folds.contains(&Some(true)) {
                Some(true)
            } else if folds.iter().all(|&b| b == Some(false)) {
                Some(false)
            } else {
                None
            }
        }
        Formula::Implies(..) => match (folds[0], folds[1]) {
            (Some(false), _) | (_, Some(true)) => Some(true),
            (Some(true), Some(false)) => Some(false),
            _ => None,
        },
        Formula::Iff(..) => match (folds[0], folds[1]) {
            (Some(a), Some(b)) => Some(a == b),
            _ => None,
        },
        Formula::Exists(..) => (folds[0] == Some(false)).then_some(false),
        Formula::Forall(..) => (folds[0] == Some(true)).then_some(true),
    };

    let n = &mut nodes[idx];
    n.kind = kind;
    n.children = child_idx;
    n.span = sp.map(|s| s.span);
    n.binder = sp.and_then(|s| s.binder);
    n.bound_var = match f {
        Formula::Exists(v, _) | Formula::Forall(v, _) => Some(*v),
        _ => None,
    };
    n.width = free.len();
    n.free = free;
    n.rank = rank;
    n.alt_e = alt_e;
    n.alt_a = alt_a;
    n.fold = fold;
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::parser::parse_formula_spanned;
    use fmt_structures::Signature;

    fn analyzed(src: &str) -> FormulaAnalysis {
        let sig = Signature::graph();
        let p = parse_formula_spanned(&sig, src).unwrap();
        analyze(&p.formula, Some(&p.spans))
    }

    #[test]
    fn facts_match_formula_api() {
        let sig = Signature::graph();
        for src in [
            "E(x, y)",
            "forall x. exists y. E(x, y)",
            "exists x y. E(x, y) & !(x = y)",
            "true -> false",
        ] {
            let p = parse_formula_spanned(&sig, src).unwrap();
            let a = analyze(&p.formula, Some(&p.spans));
            assert_eq!(a.root().rank, p.formula.quantifier_rank());
            assert_eq!(a.root().free, p.formula.free_vars());
        }
    }

    #[test]
    fn alternation_counts_blocks_not_quantifiers() {
        // Two like quantifiers are one block.
        assert_eq!(analyzed("exists x y. E(x, y)").alternation(), 1);
        // ∃∀ alternates once more.
        assert_eq!(analyzed("exists x. forall y. E(x, y)").alternation(), 2);
        // ∀∃∀ is three blocks.
        assert_eq!(
            analyzed("forall x. exists y. forall z. E(x, y) & E(y, z)").alternation(),
            3
        );
        assert_eq!(analyzed("E(x, y)").alternation(), 0);
    }

    #[test]
    fn folding_is_conservative_on_quantifiers() {
        // ∃x.true is NOT folded: it is false on the empty structure.
        assert_eq!(analyzed("exists x. true").root().fold, None);
        // ∀x.true and ∃x.false are domain-independent.
        assert_eq!(analyzed("forall x. true").root().fold, Some(true));
        assert_eq!(analyzed("exists x. false").root().fold, Some(false));
        assert_eq!(analyzed("forall x. false").root().fold, None);
        // Connectives fold through unknowns where sound.
        assert_eq!(analyzed("E(x, y) & false").root().fold, Some(false));
        assert_eq!(analyzed("E(x, y) | true").root().fold, Some(true));
        assert_eq!(analyzed("E(x, y) -> true").root().fold, Some(true));
        assert_eq!(analyzed("x = x").root().fold, Some(true));
        assert_eq!(analyzed("E(x, y)").root().fold, None);
    }

    #[test]
    fn width_is_max_free_vars() {
        // The inner conjunction has 3 free variables; the sentence 0.
        let a = analyzed("forall x y z. E(x, y) & E(y, z)");
        assert_eq!(a.root().width, 0);
        assert_eq!(a.max_width(), 3);
    }

    #[test]
    fn spans_attach_to_nodes() {
        let src = "exists x. E(x, x)";
        let a = analyzed(src);
        assert_eq!(a.root().span.unwrap().slice(src), src);
        assert!(a.root().binder.is_some());
        let body = &a.nodes()[a.root().children[0]];
        assert_eq!(body.span.unwrap().slice(src), "E(x, x)");
    }
}
