//! The survey's canned sentences and formula generators.
//!
//! Everything the paper states as "the following query is easily
//! definable" lives here, as executable formula builders:
//!
//! * cardinality sentences λₖ ("there are at least k elements") — the
//!   family behind the failure of finite compactness;
//! * linear-order and graph axioms;
//! * the 0-1-law examples Q₁ (all pairs adjacent, `μ = 0`) and Q₂
//!   (a distinguishing in-neighbor exists, `μ = 1`);
//! * **extension axioms**, the proof engine of the FO 0-1 law;
//! * combined-complexity workloads (k-cliques, k-paths) whose
//!   evaluation cost `O(nᵏ)` the complexity experiments measure;
//! * bounded-distance formulas `dist(x,y) ≤ d` — the FO-definable
//!   approximations of transitive closure that locality arguments
//!   contrast with the real thing.

use crate::{Formula, Term, Var};
use fmt_structures::{RelId, Signature};

fn vars(n: u32) -> Vec<Var> {
    (0..n).map(Var).collect()
}

/// Pairwise distinctness `⋀_{i<j} xᵢ ≠ xⱼ`.
pub fn all_distinct(vs: &[Var]) -> Formula {
    let mut cs = Vec::new();
    for (i, &a) in vs.iter().enumerate() {
        for &b in &vs[i + 1..] {
            cs.push(Formula::eq_vars(a, b).not());
        }
    }
    Formula::big_and(cs)
}

/// λₖ: "there are at least k elements":
/// `∃x₁…∃xₖ ⋀_{i≠j} xᵢ ≠ xⱼ`.
///
/// The lecture's finite-compactness counterexample: every finite subset
/// of `{λₙ | n ∈ ℕ}` has a finite model but the whole set does not.
/// Works over any signature (it only mentions equality).
pub fn at_least(k: u32) -> Formula {
    let vs = vars(k);
    Formula::exists_many(&vs, all_distinct(&vs))
}

/// "There are at most k elements": `¬λₖ₊₁`.
pub fn at_most(k: u32) -> Formula {
    at_least(k + 1).not()
}

/// "There are exactly k elements."
pub fn exactly(k: u32) -> Formula {
    at_least(k).and(at_most(k))
}

/// The axioms of a strict total order for a binary relation `rel`
/// (irreflexive, transitive, total). Conjoined as a single sentence.
pub fn strict_total_order(rel: RelId) -> Formula {
    let [x, y, z] = [Var(0), Var(1), Var(2)];
    let irreflexive = Formula::forall(x, Formula::atom(rel, &[x, x]).not());
    let transitive = Formula::forall_many(
        &[x, y, z],
        Formula::atom(rel, &[x, y])
            .and(Formula::atom(rel, &[y, z]))
            .implies(Formula::atom(rel, &[x, z])),
    );
    let total = Formula::forall_many(
        &[x, y],
        Formula::big_or(vec![
            Formula::atom(rel, &[x, y]),
            Formula::atom(rel, &[y, x]),
            Formula::eq_vars(x, y),
        ]),
    );
    irreflexive.and(transitive).and(total)
}

/// "`rel` is symmetric": `∀x∀y (R(x,y) → R(y,x))`.
pub fn symmetric(rel: RelId) -> Formula {
    let [x, y] = [Var(0), Var(1)];
    Formula::forall_many(
        &[x, y],
        Formula::atom(rel, &[x, y]).implies(Formula::atom(rel, &[y, x])),
    )
}

/// "`rel` is irreflexive": `∀x ¬R(x,x)`.
pub fn irreflexive(rel: RelId) -> Formula {
    let x = Var(0);
    Formula::forall(x, Formula::atom(rel, &[x, x]).not())
}

/// Q₁ of the 0-1-law section: "all distinct pairs are adjacent"
/// (`∀x∀y (x ≠ y → E(x,y))`).
///
/// Almost no random graph satisfies it: `μ(Q₁) = 0`. (The paper writes
/// `∀x,y E(x,y)`; we add the `x ≠ y` guard so the sentence is satisfied
/// by loop-free complete graphs, matching the paper's reading "only the
/// complete ones".)
pub fn q1_all_pairs_adjacent(rel: RelId) -> Formula {
    let [x, y] = [Var(0), Var(1)];
    Formula::forall_many(
        &[x, y],
        Formula::eq_vars(x, y)
            .not()
            .implies(Formula::atom(rel, &[x, y])),
    )
}

/// Q₂ of the 0-1-law section: "every distinct pair has a distinguishing
/// in-neighbor" (`∀x∀y (x ≠ y → ∃z (E(z,x) ∧ ¬E(z,y)))`).
///
/// Almost every random graph satisfies it: `μ(Q₂) = 1`. (We add the
/// `x ≠ y` guard: taken literally at `x = y` the paper's formula is
/// unsatisfiable.)
pub fn q2_distinguishing_neighbor(rel: RelId) -> Formula {
    let [x, y, z] = [Var(0), Var(1), Var(2)];
    Formula::forall_many(
        &[x, y],
        Formula::eq_vars(x, y).not().implies(Formula::exists(
            z,
            Formula::atom(rel, &[z, x]).and(Formula::atom(rel, &[z, y]).not()),
        )),
    )
}

/// "Some vertex dominates all others": `∃x∀y (x = y ∨ E(x,y))`.
pub fn dominating_vertex(rel: RelId) -> Formula {
    let [x, y] = [Var(0), Var(1)];
    Formula::exists(
        x,
        Formula::forall(y, Formula::eq_vars(x, y).or(Formula::atom(rel, &[x, y]))),
    )
}

/// "No vertex is isolated": `∀x∃y (E(x,y) ∨ E(y,x))`.
pub fn no_isolated_vertex(rel: RelId) -> Formula {
    let [x, y] = [Var(0), Var(1)];
    Formula::forall(
        x,
        Formula::exists(
            y,
            Formula::atom(rel, &[x, y]).or(Formula::atom(rel, &[y, x])),
        ),
    )
}

/// "There is a k-clique": `∃x₁…xₖ (distinct ∧ ⋀_{i≠j} E(xᵢ,xⱼ))`.
///
/// The standard combined-complexity workload: naive evaluation costs
/// `O(nᵏ)`, witnessing the exponential dependence on query size.
pub fn k_clique(rel: RelId, k: u32) -> Formula {
    let vs = vars(k);
    let mut cs = vec![all_distinct(&vs)];
    for (i, &a) in vs.iter().enumerate() {
        for (j, &b) in vs.iter().enumerate() {
            if i != j {
                cs.push(Formula::atom(rel, &[a, b]));
            }
        }
    }
    Formula::exists_many(&vs, Formula::big_and(cs))
}

/// "There is a (not necessarily simple) directed path of length k":
/// `∃x₀…xₖ ⋀ E(xᵢ, xᵢ₊₁)`.
pub fn k_path(rel: RelId, k: u32) -> Formula {
    let vs = vars(k + 1);
    let mut cs = Vec::new();
    for w in vs.windows(2) {
        cs.push(Formula::atom(rel, &[w[0], w[1]]));
    }
    Formula::exists_many(&vs, Formula::big_and(cs))
}

/// The bounded-distance formula `distₑ(x, y) ≤ d` in the *undirected*
/// sense (edges traversable both ways), with free variables `x = Var(0)`
/// and `y = Var(1)`.
///
/// These formulas are the FO-definable fragments of reachability; the
/// locality experiments contrast them with full transitive closure
/// (which is not FO-definable). Quantifier rank is `max(d − 1, 0)`.
pub fn dist_at_most(rel: RelId, d: u32) -> Formula {
    // dist(x,y) <= 0  :=  x = y
    // dist(x,y) <= d  :=  x = y ∨ ∃z (adj(x,z) ∧ dist(z,y) <= d-1)
    fn go(rel: RelId, d: u32, x: Var, y: Var, next: u32) -> Formula {
        let base = Formula::eq_vars(x, y);
        if d == 0 {
            return base;
        }
        let adj = |a: Var, b: Var| Formula::atom(rel, &[a, b]).or(Formula::atom(rel, &[b, a]));
        if d == 1 {
            return base.or(adj(x, y));
        }
        let z = Var(next);
        base.or(Formula::exists(
            z,
            adj(x, z).and(go(rel, d - 1, z, y, next + 1)),
        ))
    }
    go(rel, d, Var(0), Var(1), 2)
}

/// One **extension axiom** over `sig`: for all distinct `x₁…xₖ` there
/// exists `z ∉ {x₁…xₖ}` realizing the atomic type selected by `choice`.
///
/// The atoms in question are all tuples over `{x₁…xₖ, z}` that mention
/// `z`, across all relations of `sig` (enumerated by
/// [`extension_atom_count`]); bit `i` of `choice` picks the polarity of
/// atom `i`. These axioms axiomatize the almost-sure theory of uniformly
/// random σ-structures: each one has limit probability 1, and together
/// (over all `k < qr(φ)`) they decide `μ(φ) ∈ {0, 1}` — the proof device
/// of the FO 0-1 law.
pub fn extension_axiom(sig: &Signature, k: u32, choice: u64) -> Formula {
    let xs = vars(k);
    let z = Var(k);
    let mut bit = 0;
    // Literals: z distinct from all x's, then the chosen polarities.
    let mut lits: Vec<Formula> = xs.iter().map(|&x| Formula::eq_vars(z, x).not()).collect();
    for (r, _, arity) in sig.relations() {
        // All tuples over {x1..xk, z} that mention z.
        let pool: Vec<Var> = xs.iter().copied().chain(std::iter::once(z)).collect();
        let mut idx = vec![0usize; arity];
        'tuples: loop {
            if idx.contains(&(k as usize)) {
                let args: Vec<Term> = idx.iter().map(|&i| Term::Var(pool[i])).collect();
                let atom = Formula::Atom { rel: r, args };
                let positive = (choice >> bit) & 1 == 1;
                lits.push(if positive { atom } else { atom.not() });
                bit += 1;
            }
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break 'tuples;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < pool.len() {
                    break;
                }
                idx[pos] = 0;
                if pos == 0 {
                    break 'tuples;
                }
            }
        }
    }
    debug_assert_eq!(bit as usize, extension_atom_count(sig, k));
    let exists_part = Formula::exists(z, Formula::big_and(lits));
    Formula::forall_many(&xs, all_distinct(&xs).implies(exists_part))
}

/// Number of atoms a level-`k` extension axiom fixes:
/// `Σ_R ((k+1)^arity − k^arity)`.
pub fn extension_atom_count(sig: &Signature, k: u32) -> usize {
    let k = k as usize;
    sig.relations()
        .map(|(_, _, a)| (k + 1).pow(a as u32) - k.pow(a as u32))
        .sum()
}

/// All level-`k` extension axioms (one per atomic type, i.e.
/// `2^`[`extension_atom_count`] sentences).
///
/// # Panics
/// Panics if the axiom family is unreasonably large (more than 2¹⁶
/// sentences) — levels above `k = 2` on binary signatures are never
/// needed by the experiments.
pub fn all_extension_axioms(sig: &Signature, k: u32) -> Vec<Formula> {
    let atoms = extension_atom_count(sig, k);
    assert!(atoms <= 16, "extension axiom family too large: 2^{atoms}");
    (0..(1u64 << atoms))
        .map(|choice| extension_axiom(sig, k, choice))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_shape() {
        let f = at_least(3);
        assert!(f.is_sentence());
        assert_eq!(f.quantifier_rank(), 3);
        assert_eq!(at_least(1).quantifier_rank(), 1);
        // λ1 = ∃x (empty conjunction = true).
        assert!(matches!(at_least(1), Formula::Exists(..)));
    }

    #[test]
    fn exactly_combines() {
        let f = exactly(2);
        assert!(f.is_sentence());
        assert_eq!(f.quantifier_rank(), 3); // at_most(2) = ¬λ3 dominates
    }

    #[test]
    fn order_axioms_are_sentences() {
        let sig = Signature::order();
        let lt = sig.relation("<").unwrap();
        let f = strict_total_order(lt);
        assert!(f.is_sentence());
        assert!(f.well_formed(&sig).is_ok());
    }

    #[test]
    fn zero_one_examples_well_formed() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        for f in [
            q1_all_pairs_adjacent(e),
            q2_distinguishing_neighbor(e),
            dominating_vertex(e),
            no_isolated_vertex(e),
        ] {
            assert!(f.is_sentence());
            assert!(f.well_formed(&sig).is_ok());
        }
    }

    #[test]
    fn k_clique_rank_grows() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        assert_eq!(k_clique(e, 3).quantifier_rank(), 3);
        assert_eq!(k_clique(e, 5).quantifier_rank(), 5);
        assert_eq!(k_path(e, 4).quantifier_rank(), 5);
    }

    #[test]
    fn dist_formula_free_vars_and_rank() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = dist_at_most(e, 3);
        let fv: Vec<Var> = f.free_vars().into_iter().collect();
        assert_eq!(fv, vec![Var(0), Var(1)]);
        assert_eq!(f.quantifier_rank(), 2); // d-1 existentials
        assert_eq!(dist_at_most(e, 0).quantifier_rank(), 0);
        assert!(f.well_formed(&sig).is_ok());
    }

    #[test]
    fn extension_axiom_counts() {
        let sig = Signature::graph();
        // k = 1: tuples over {x, z} mentioning z: (z,z), (z,x), (x,z) = 3.
        assert_eq!(extension_atom_count(&sig, 1), 3);
        // k = 2: 27 - 8 = wait, arity 2: (2+1)^2 - 2^2 = 5.
        assert_eq!(extension_atom_count(&sig, 2), 5);
        assert_eq!(all_extension_axioms(&sig, 1).len(), 8);
        assert_eq!(all_extension_axioms(&sig, 2).len(), 32);
    }

    #[test]
    fn extension_axioms_are_sentences() {
        let sig = Signature::graph();
        for f in all_extension_axioms(&sig, 1) {
            assert!(f.is_sentence());
            assert!(f.well_formed(&sig).is_ok());
            assert_eq!(f.quantifier_rank(), 2); // ∀x ∃z
        }
    }

    #[test]
    fn empty_signature_extension() {
        let sig = Signature::empty();
        // No relations: the only "type" is the empty one; the axiom just
        // asserts a fresh element exists.
        assert_eq!(extension_atom_count(&sig, 2), 0);
        let axs = all_extension_axioms(&sig, 2);
        assert_eq!(axs.len(), 1);
        assert!(axs[0].is_sentence());
    }
}
