//! A recursive-descent parser for the FO text syntax.
//!
//! Grammar (precedence from loosest to tightest):
//!
//! ```text
//! formula := iff
//! iff     := implies ( "<->" implies )*          (left-associative)
//! implies := or ( "->" implies )?                (right-associative)
//! or      := and ( "|" and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary | quantified | primary
//! quant   := ("forall" | "exists") ident+ "." implies
//! primary := "true" | "false" | "(" formula ")"
//!          | ident "(" term ("," term)* ")"      (relational atom)
//!          | term "=" term | term "!=" term
//! term    := ident                               (constant if declared, else variable)
//! ```
//!
//! Multiple variables after one quantifier are sugar:
//! `forall x y. φ` is `forall x. forall y. φ`. Identifiers that match a
//! declared constant name denote that constant; all other identifiers
//! are variables. A **canonical** variable name — `x` followed by a
//! decimal numeral without leading zeros, e.g. `x0`, `x17` — denotes
//! exactly [`Var`] of that numeral, which makes parsing a left inverse
//! of [`Formula::display`] (the printer writes `Var(i)` as `x{i}`). All
//! other names are numbered with the smallest indices not claimed by a
//! canonical name, in order of first occurrence.
//!
//! Every error carries the byte offset it was detected at ([`Span`]s
//! for caret rendering), and [`parse_formula_spanned`] additionally
//! returns a [`SpanTree`] giving the byte range of every subformula —
//! the location substrate of `fmt-lint`'s diagnostics.

use crate::{Formula, Term, Var};
use fmt_structures::{Signature, Span};

/// What kind of problem a [`LogicParseError`] reports — lets tooling
/// (e.g. `fmt-lint`) classify parse errors without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicParseErrorKind {
    /// Malformed syntax (unexpected token, unbalanced parens, …).
    Syntax,
    /// An atom used a relation the signature does not declare.
    UnknownRelation,
    /// An atom's argument count does not match the relation's arity.
    ArityMismatch,
}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicParseError {
    /// Byte offset into the source at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
    /// Byte range of the offending token or atom (`offset == span.start`).
    pub span: Span,
    /// Classification of the problem.
    pub kind: LogicParseErrorKind,
}

impl LogicParseError {
    fn new(kind: LogicParseErrorKind, span: Span, message: impl Into<String>) -> LogicParseError {
        LogicParseError {
            offset: span.start,
            message: message.into(),
            span,
            kind,
        }
    }
}

impl std::fmt::Display for LogicParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LogicParseError {}

/// Byte spans for a parsed formula, mirroring the [`Formula`] tree: one
/// node per subformula, children in the order [`Formula::visit`]
/// descends (atoms and equalities are leaves). The parser keeps the
/// tree aligned through conjunction/disjunction flattening, so walking
/// a `Formula` and its `SpanTree` in lockstep is always safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// Byte range of this subformula in the source.
    pub span: Span,
    /// For quantifier nodes, the byte range of the bound variable name
    /// (`forall x y. φ` desugars to two nodes, each with its own binder).
    pub binder: Option<Span>,
    /// Span trees of the children, in AST order.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    fn leaf(span: Span) -> SpanTree {
        SpanTree {
            span,
            binder: None,
            children: Vec::new(),
        }
    }

    fn node(span: Span, children: Vec<SpanTree>) -> SpanTree {
        SpanTree {
            span,
            binder: None,
            children,
        }
    }
}

/// The result of [`parse_formula_spanned`]: the formula, the
/// variable-name table, and the span of every subformula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFormula {
    /// The parsed formula.
    pub formula: Formula,
    /// `vars[i]` is the source name of [`Var`]`(i)` (canonical `x{i}`
    /// for indices no source name maps to).
    pub vars: Vec<String>,
    /// Byte spans mirroring the formula tree.
    pub spans: SpanTree,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    NotEq,
    Not,
    And,
    Or,
    Implies,
    Iff,
}

fn tokenize(src: &str) -> Result<Vec<(Span, Tok)>, LogicParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let push = |out: &mut Vec<(Span, Tok)>, start: usize, len: usize, t: Tok| {
        out.push((Span::new(start, start + len), t));
    };
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                push(&mut out, i, 1, Tok::LParen);
                i += 1;
            }
            ')' => {
                push(&mut out, i, 1, Tok::RParen);
                i += 1;
            }
            ',' => {
                push(&mut out, i, 1, Tok::Comma);
                i += 1;
            }
            '.' => {
                push(&mut out, i, 1, Tok::Dot);
                i += 1;
            }
            '=' => {
                push(&mut out, i, 1, Tok::Eq);
                i += 1;
            }
            '&' => {
                push(&mut out, i, 1, Tok::And);
                i += 1;
            }
            '|' => {
                push(&mut out, i, 1, Tok::Or);
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    push(&mut out, i, 2, Tok::NotEq);
                    i += 2;
                } else {
                    push(&mut out, i, 1, Tok::Not);
                    i += 1;
                }
            }
            '-' => {
                if b.get(i + 1) == Some(&b'>') {
                    push(&mut out, i, 2, Tok::Implies);
                    i += 2;
                } else {
                    return Err(LogicParseError::new(
                        LogicParseErrorKind::Syntax,
                        Span::new(i, i + 1),
                        "expected '->'",
                    ));
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'-') && b.get(i + 2) == Some(&b'>') {
                    push(&mut out, i, 3, Tok::Iff);
                    i += 3;
                } else {
                    // Bare '<' is a legal relation name character in our
                    // signatures (the order relation); treat it as an
                    // identifier.
                    push(&mut out, i, 1, Tok::Ident("<".into()));
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'\'')
                {
                    i += 1;
                }
                out.push((Span::new(start, i), Tok::Ident(src[start..i].to_owned())));
            }
            other => {
                return Err(LogicParseError::new(
                    LogicParseErrorKind::Syntax,
                    Span::new(i, i + other.len_utf8()),
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(out)
}

/// A formula paired with the span tree built alongside it.
type Spanned = (Formula, SpanTree);

struct Parser<'a> {
    toks: Vec<(Span, Tok)>,
    pos: usize,
    sig: &'a Signature,
    vars: Vec<String>,
    /// Length of the source, the error position at end of input.
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    /// Span of the current (next unconsumed) token; a point at the end
    /// of the source once tokens run out.
    fn cur_span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map_or(Span::point(self.src_len), |(s, _)| *s)
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.toks
            .get(self.pos.wrapping_sub(1))
            .map_or(Span::point(self.src_len), |(s, _)| *s)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> LogicParseError {
        LogicParseError::new(LogicParseErrorKind::Syntax, self.cur_span(), msg)
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), LogicParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn var(&mut self, name: &str) -> Var {
        match self.vars.iter().position(|v| v == name) {
            Some(i) => Var(i as u32),
            None => {
                self.vars.push(name.to_owned());
                Var(self.vars.len() as u32 - 1)
            }
        }
    }

    fn term(&mut self, name: &str) -> Term {
        match self.sig.constant(name) {
            Some(c) => Term::Const(c),
            None => Term::Var(self.var(name)),
        }
    }

    /// `lhs & rhs`, mirroring [`Formula::and`]'s flattening on the span
    /// children so the two trees stay aligned.
    fn merge_and(lhs: Spanned, rhs: Spanned) -> Spanned {
        let span = lhs.1.span.to(rhs.1.span);
        let (lf, lt) = lhs;
        let (rf, rt) = rhs;
        let (fs, ts) = match (lf, rf) {
            (Formula::And(mut a), Formula::And(b)) => {
                let mut ct = lt.children;
                ct.extend(rt.children);
                a.extend(b);
                (a, ct)
            }
            (Formula::And(mut a), g) => {
                let mut ct = lt.children;
                ct.push(rt);
                a.push(g);
                (a, ct)
            }
            (f, Formula::And(mut b)) => {
                let mut ct = rt.children;
                ct.insert(0, lt);
                b.insert(0, f);
                (b, ct)
            }
            (f, g) => (vec![f, g], vec![lt, rt]),
        };
        debug_assert_eq!(fs.len(), ts.len());
        (Formula::And(fs), SpanTree::node(span, ts))
    }

    /// `lhs | rhs`, mirroring [`Formula::or`]'s flattening.
    fn merge_or(lhs: Spanned, rhs: Spanned) -> Spanned {
        let span = lhs.1.span.to(rhs.1.span);
        let (lf, lt) = lhs;
        let (rf, rt) = rhs;
        let (fs, ts) = match (lf, rf) {
            (Formula::Or(mut a), Formula::Or(b)) => {
                let mut ct = lt.children;
                ct.extend(rt.children);
                a.extend(b);
                (a, ct)
            }
            (Formula::Or(mut a), g) => {
                let mut ct = lt.children;
                ct.push(rt);
                a.push(g);
                (a, ct)
            }
            (f, Formula::Or(mut b)) => {
                let mut ct = rt.children;
                ct.insert(0, lt);
                b.insert(0, f);
                (b, ct)
            }
            (f, g) => (vec![f, g], vec![lt, rt]),
        };
        debug_assert_eq!(fs.len(), ts.len());
        (Formula::Or(fs), SpanTree::node(span, ts))
    }

    fn formula(&mut self) -> Result<Spanned, LogicParseError> {
        let mut f = self.implies()?;
        while self.peek() == Some(&Tok::Iff) {
            self.pos += 1;
            let g = self.implies()?;
            let span = f.1.span.to(g.1.span);
            f = (f.0.iff(g.0), SpanTree::node(span, vec![f.1, g.1]));
        }
        Ok(f)
    }

    fn implies(&mut self) -> Result<Spanned, LogicParseError> {
        let f = self.or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            let g = self.implies()?;
            let span = f.1.span.to(g.1.span);
            Ok((f.0.implies(g.0), SpanTree::node(span, vec![f.1, g.1])))
        } else {
            Ok(f)
        }
    }

    fn or(&mut self) -> Result<Spanned, LogicParseError> {
        let mut f = self.and()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            let g = self.and()?;
            f = Parser::merge_or(f, g);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Spanned, LogicParseError> {
        let mut f = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            let g = self.unary()?;
            f = Parser::merge_and(f, g);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Spanned, LogicParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                let start = self.cur_span();
                self.pos += 1;
                let (g, gt) = self.unary()?;
                let span = start.to(gt.span);
                Ok((g.not(), SpanTree::node(span, vec![gt])))
            }
            Some(Tok::Ident(name)) if name == "forall" || name == "exists" => {
                let universal = name == "forall";
                let kw = self.cur_span();
                self.pos += 1;
                let mut vars: Vec<(Var, Span)> = Vec::new();
                loop {
                    match self.peek() {
                        Some(Tok::Ident(n)) => {
                            let n = n.clone();
                            let vspan = self.cur_span();
                            self.pos += 1;
                            if self.sig.constant(&n).is_some() {
                                return Err(LogicParseError::new(
                                    LogicParseErrorKind::Syntax,
                                    vspan,
                                    format!("cannot quantify over constant {n}"),
                                ));
                            }
                            vars.push((self.var(&n), vspan));
                        }
                        Some(Tok::Dot) => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected variable or '.'")),
                    }
                }
                if vars.is_empty() {
                    return Err(self.err("quantifier binds no variables"));
                }
                let (body, body_t) = self.implies()?;
                let end = body_t.span.end;
                // Desugar right to left: each binder gets its own node
                // spanning from its variable name to the body's end; the
                // outermost node starts at the quantifier keyword.
                let mut f = body;
                let mut t = body_t;
                for &(v, vspan) in vars.iter().rev() {
                    f = if universal {
                        Formula::forall(v, f)
                    } else {
                        Formula::exists(v, f)
                    };
                    t = SpanTree {
                        span: Span::new(vspan.start, end),
                        binder: Some(vspan),
                        children: vec![t],
                    };
                }
                t.span = Span::new(kw.start, end);
                Ok((f, t))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Spanned, LogicParseError> {
        let start = self.cur_span();
        match self.bump() {
            Some(Tok::LParen) => {
                let (f, mut t) = self.formula()?;
                self.expect(&Tok::RParen, "')'")?;
                // Widen the root span to include the parentheses (the
                // children keep their own spans).
                t.span = start.to(self.prev_span());
                Ok((f, t))
            }
            Some(Tok::Ident(name)) if name == "true" => Ok((Formula::True, SpanTree::leaf(start))),
            Some(Tok::Ident(name)) if name == "false" => {
                Ok((Formula::False, SpanTree::leaf(start)))
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    // Relational atom.
                    let rel = self.sig.relation(&name).ok_or_else(|| {
                        LogicParseError::new(
                            LogicParseErrorKind::UnknownRelation,
                            start,
                            format!("unknown relation {name}"),
                        )
                    })?;
                    self.pos += 1;
                    let mut args = Vec::new();
                    loop {
                        match self.bump() {
                            Some(Tok::Ident(t)) => args.push(self.term(&t)),
                            _ => return Err(self.err("expected term")),
                        }
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            _ => return Err(self.err("expected ',' or ')'")),
                        }
                    }
                    let span = start.to(self.prev_span());
                    if args.len() != self.sig.arity(rel) {
                        return Err(LogicParseError::new(
                            LogicParseErrorKind::ArityMismatch,
                            span,
                            format!(
                                "relation {name} has arity {}, got {} arguments",
                                self.sig.arity(rel),
                                args.len()
                            ),
                        ));
                    }
                    Ok((Formula::Atom { rel, args }, SpanTree::leaf(span)))
                } else {
                    // Equality / inequality atom.
                    let lhs = self.term(&name);
                    match self.bump() {
                        Some(Tok::Eq) => {}
                        Some(Tok::NotEq) => {
                            let rhs = match self.bump() {
                                Some(Tok::Ident(t)) => self.term(&t),
                                _ => return Err(self.err("expected term after '!='")),
                            };
                            let span = start.to(self.prev_span());
                            let eq_t = SpanTree::leaf(span);
                            return Ok((
                                Formula::Eq(lhs, rhs).not(),
                                SpanTree::node(span, vec![eq_t]),
                            ));
                        }
                        Some(Tok::Ident(op)) if op == "<" => {
                            // Infix notation for the order relation, if
                            // the signature declares `<`.
                            let rel = self
                                .sig
                                .relation("<")
                                .ok_or_else(|| self.err("signature has no '<' relation"))?;
                            let rhs = match self.bump() {
                                Some(Tok::Ident(t)) => self.term(&t),
                                _ => return Err(self.err("expected term after '<'")),
                            };
                            let span = start.to(self.prev_span());
                            return Ok((
                                Formula::Atom {
                                    rel,
                                    args: vec![lhs, rhs],
                                },
                                SpanTree::leaf(span),
                            ));
                        }
                        _ => return Err(self.err("expected '=', '!=' or '<' after term")),
                    }
                    let rhs = match self.bump() {
                        Some(Tok::Ident(t)) => self.term(&t),
                        _ => return Err(self.err("expected term after '='")),
                    };
                    let span = start.to(self.prev_span());
                    Ok((Formula::Eq(lhs, rhs), SpanTree::leaf(span)))
                }
            }
            _ => Err(LogicParseError::new(
                LogicParseErrorKind::Syntax,
                start,
                "expected formula",
            )),
        }
    }
}

/// The index a canonical variable name denotes: `x` followed by a
/// decimal numeral without leading zeros (`x0`, `x3`, `x12`, …).
fn canonical_index(name: &str) -> Option<u32> {
    let digits = name.strip_prefix('x')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if digits.len() > 1 && digits.starts_with('0') {
        return None; // `x01` is an ordinary name, not Var(1)
    }
    digits.parse::<u32>().ok()
}

/// Remaps the parser's first-occurrence indices so canonical names
/// (`x<digits>`) keep their printed index — making the parser a left
/// inverse of the pretty-printer — while other names take the smallest
/// free indices in occurrence order. Returns the permuted formula and
/// the rebuilt name table (gaps filled with their canonical name).
fn remap_canonical_vars(f: Formula, names: Vec<String>) -> (Formula, Vec<String>) {
    use std::collections::BTreeSet;
    let mut target: Vec<Option<u32>> = names.iter().map(|n| canonical_index(n)).collect();
    let taken: BTreeSet<u32> = target.iter().flatten().copied().collect();
    let mut free = (0u32..).filter(|i| !taken.contains(i));
    for t in &mut target {
        if t.is_none() {
            *t = free.next();
        }
    }
    let map: Vec<u32> = target.into_iter().map(|t| t.expect("assigned")).collect();
    let table_len = map.iter().max().map_or(0, |&m| m as usize + 1);
    let mut table: Vec<String> = (0..table_len).map(|i| format!("x{i}")).collect();
    for (name, &idx) in names.iter().zip(&map) {
        table[idx as usize] = name.clone();
    }
    if map.iter().enumerate().all(|(i, &t)| i as u32 == t) {
        return (f, table); // identity: nothing to rename
    }
    let g = f.rename_vars(&|Var(i)| Var(map[i as usize]));
    (g, table)
}

/// Parses a formula, returning it together with the byte span of every
/// subformula and the variable-name table. Variable renaming preserves
/// the tree shape, so the [`SpanTree`] stays aligned with the remapped
/// formula.
pub fn parse_formula_spanned(sig: &Signature, src: &str) -> Result<ParsedFormula, LogicParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        sig,
        vars: Vec::new(),
        src_len: src.len(),
    };
    let (f, spans) = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after formula"));
    }
    let (formula, vars) = remap_canonical_vars(f, p.vars);
    debug_assert!(formula.well_formed(sig).is_ok());
    Ok(ParsedFormula {
        formula,
        vars,
        spans,
    })
}

/// Parses a formula, returning it together with the variable-name table
/// (`table[i]` is the source name of [`Var`]`(i)`, or the canonical
/// `x{i}` for indices no source name maps to).
pub fn parse_formula_with_vars(
    sig: &Signature,
    src: &str,
) -> Result<(Formula, Vec<String>), LogicParseError> {
    parse_formula_spanned(sig, src).map(|p| (p.formula, p.vars))
}

/// Parses a formula over the given signature.
pub fn parse_formula(sig: &Signature, src: &str) -> Result<Formula, LogicParseError> {
    parse_formula_with_vars(sig, src).map(|(f, _)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::Signature;

    #[test]
    fn atoms_and_equality() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "E(x, y)").unwrap();
        assert_eq!(f.free_vars().len(), 2);
        let g = parse_formula(&sig, "x = y").unwrap();
        assert!(matches!(g, Formula::Eq(..)));
        let h = parse_formula(&sig, "x != y").unwrap();
        assert!(matches!(h, Formula::Not(_)));
    }

    #[test]
    fn precedence() {
        let sig = Signature::graph();
        // a & b | c parses as (a & b) | c.
        let f = parse_formula(&sig, "E(x,x) & E(y,y) | E(z,z)").unwrap();
        assert!(matches!(f, Formula::Or(_)));
        // a -> b -> c is right-associative.
        let g = parse_formula(&sig, "E(x,x) -> E(y,y) -> E(z,z)").unwrap();
        if let Formula::Implies(_, rhs) = g {
            assert!(matches!(*rhs, Formula::Implies(..)));
        } else {
            panic!("expected implies");
        }
    }

    #[test]
    fn quantifier_sugar() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "forall x y. E(x, y)").unwrap();
        assert_eq!(f.quantifier_rank(), 2);
        assert!(f.is_sentence());
        let g = parse_formula(&sig, "exists x. forall y. E(x,y) & E(y,x)").unwrap();
        assert_eq!(g.quantifier_rank(), 2);
    }

    #[test]
    fn quantifier_scope_extends_right() {
        let sig = Signature::graph();
        // The body of the quantifier is everything to the right at
        // implies level, so this is a sentence.
        let f = parse_formula(&sig, "forall x. E(x,x) -> exists y. E(x,y)").unwrap();
        assert!(f.is_sentence());
    }

    #[test]
    fn infix_order() {
        let sig = Signature::order();
        let f = parse_formula(&sig, "forall x y. x < y -> !(y < x)").unwrap();
        assert!(f.is_sentence());
        assert!(f.well_formed(&sig).is_ok());
        // Prefix form works too.
        let g = parse_formula(&sig, "forall x y. <(x, y) -> !<(y, x)").unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn constants_resolved() {
        let sig = Signature::builder()
            .relation("E", 2)
            .constant("root")
            .finish_arc();
        let f = parse_formula(&sig, "exists x. E(root, x)").unwrap();
        let mut has_const = false;
        f.visit(&mut |g| {
            if let Formula::Atom { args, .. } = g {
                has_const |= args.iter().any(|t| matches!(t, Term::Const(_)));
            }
        });
        assert!(has_const);
        // Quantifying over a constant is an error.
        assert!(parse_formula(&sig, "exists root. E(root, root)").is_err());
    }

    #[test]
    fn variable_table() {
        let sig = Signature::graph();
        let (_, vars) = parse_formula_with_vars(&sig, "E(alpha, beta) & E(beta, alpha)").unwrap();
        assert_eq!(vars, vec!["alpha".to_owned(), "beta".to_owned()]);
    }

    #[test]
    fn canonical_names_keep_their_index() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        // `x1` occurs first but still denotes Var(1).
        let f = parse_formula(&sig, "E(x1, x0)").unwrap();
        assert_eq!(f, Formula::atom(e, &[Var(1), Var(0)]));
        // A sparse canonical name leaves a gap; the table fills it.
        let (g, vars) = parse_formula_with_vars(&sig, "E(x2, x2)").unwrap();
        assert_eq!(g, Formula::atom(e, &[Var(2), Var(2)]));
        assert_eq!(
            vars,
            vec!["x0".to_owned(), "x1".to_owned(), "x2".to_owned()]
        );
    }

    #[test]
    fn non_canonical_names_avoid_canonical_indices() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        // `y` takes the smallest index not claimed by `x0`: Var(1).
        let f = parse_formula(&sig, "E(y, x0)").unwrap();
        assert_eq!(f, Formula::atom(e, &[Var(1), Var(0)]));
        // Leading zeros make the name non-canonical: `x01` is not Var(1).
        let g = parse_formula(&sig, "E(x01, x1)").unwrap();
        assert_eq!(g, Formula::atom(e, &[Var(0), Var(1)]));
    }

    #[test]
    fn canonical_names_under_quantifiers() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = parse_formula(&sig, "exists x3. E(x3, x0)").unwrap();
        assert_eq!(
            f,
            Formula::exists(Var(3), Formula::atom(e, &[Var(3), Var(0)]))
        );
    }

    #[test]
    fn errors() {
        let sig = Signature::graph();
        assert!(parse_formula(&sig, "F(x, y)").is_err()); // unknown relation
        assert!(parse_formula(&sig, "E(x)").is_err()); // wrong arity
        assert!(parse_formula(&sig, "E(x, y) &").is_err()); // dangling
        assert!(parse_formula(&sig, "E(x, y) E(y, x)").is_err()); // trailing
        assert!(parse_formula(&sig, "(E(x, y)").is_err()); // unbalanced
        assert!(parse_formula(&sig, "forall . E(x, x)").is_err()); // no vars
        assert!(parse_formula(&sig, "@").is_err()); // bad char
    }

    #[test]
    fn errors_carry_spans_and_kinds() {
        let sig = Signature::graph();
        let e = parse_formula(&sig, "F(x, y)").unwrap_err();
        assert_eq!(e.kind, LogicParseErrorKind::UnknownRelation);
        assert_eq!(e.span, Span::new(0, 1));
        assert_eq!(e.offset, 0);
        let e = parse_formula(&sig, "!E(x, y, z)").unwrap_err();
        assert_eq!(e.kind, LogicParseErrorKind::ArityMismatch);
        // The span covers the whole atom `E(x, y, z)`.
        assert_eq!(e.span, Span::new(1, 11));
        let e = parse_formula(&sig, "E(x, y) &").unwrap_err();
        assert_eq!(e.kind, LogicParseErrorKind::Syntax);
        assert_eq!(e.offset, 9); // end of input
    }

    /// The span tree mirrors the formula tree node for node.
    fn assert_aligned(f: &Formula, t: &SpanTree) {
        let n = match f {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 0,
            Formula::Not(_) | Formula::Exists(..) | Formula::Forall(..) => 1,
            Formula::And(fs) | Formula::Or(fs) => fs.len(),
            Formula::Implies(..) | Formula::Iff(..) => 2,
        };
        assert_eq!(t.children.len(), n, "misaligned at {f:?}");
        assert!(
            matches!(f, Formula::Exists(..) | Formula::Forall(..)) == t.binder.is_some(),
            "binder only on quantifiers"
        );
        let kids: Vec<&Formula> = match f {
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => vec![g],
            Formula::And(fs) | Formula::Or(fs) => fs.iter().collect(),
            Formula::Implies(a, b) | Formula::Iff(a, b) => vec![a, b],
            _ => vec![],
        };
        for (g, gt) in kids.iter().zip(&t.children) {
            assert!(gt.span.start >= t.span.start && gt.span.end <= t.span.end);
            assert_aligned(g, gt);
        }
    }

    #[test]
    fn span_tree_mirrors_ast() {
        let sig = Signature::graph();
        let sources = [
            "E(x, y)",
            "exists x. E(y, y)",
            "forall x y. E(x, y) -> x = y",
            "E(x,x) & E(y,y) & E(z,z)",
            "(E(x,x) & E(y,y)) & (E(z,z) | true)",
            "E(x,x) & (E(y,y) & E(z,z))",
            "!(x != y) <-> true",
        ];
        for src in sources {
            let p = parse_formula_spanned(&sig, src).unwrap();
            assert_aligned(&p.formula, &p.spans);
            assert_eq!(p.spans.span.slice(src), src.trim());
        }
    }

    #[test]
    fn spans_point_at_source() {
        let sig = Signature::graph();
        let src = "exists x. E(y, y) & x = x";
        let p = parse_formula_spanned(&sig, src).unwrap();
        // Root: the quantifier, spanning everything.
        assert_eq!(p.spans.span.slice(src), src);
        assert_eq!(p.spans.binder.unwrap().slice(src), "x");
        // Child: the conjunction; grandchildren: the two leaves.
        let body = &p.spans.children[0];
        assert_eq!(body.span.slice(src), "E(y, y) & x = x");
        assert_eq!(body.children[0].span.slice(src), "E(y, y)");
        assert_eq!(body.children[1].span.slice(src), "x = x");
    }

    #[test]
    fn multi_binder_spans() {
        let sig = Signature::graph();
        let src = "forall x y. E(x, y)";
        let p = parse_formula_spanned(&sig, src).unwrap();
        assert_eq!(p.spans.span.slice(src), src);
        assert_eq!(p.spans.binder.unwrap().slice(src), "x");
        let inner = &p.spans.children[0];
        assert_eq!(inner.binder.unwrap().slice(src), "y");
        assert_eq!(inner.span.slice(src), "y. E(x, y)");
    }

    #[test]
    fn display_parse_roundtrip() {
        let sig = Signature::graph();
        let sources = [
            "forall x. exists y. E(x, y)",
            "E(x, y) & !(x = y) | E(y, x)",
            "(E(x, y) -> E(y, x)) <-> E(x, x)",
            "exists x y z. E(x, y) & E(y, z) & E(z, x)",
            "true & !false",
        ];
        for src in sources {
            let f = parse_formula(&sig, src).unwrap();
            let printed = format!("{}", f.display(&sig));
            let g = parse_formula(&sig, &printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(f, g, "roundtrip failed for {src:?} -> {printed:?}");
        }
    }
}
