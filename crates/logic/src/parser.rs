//! A recursive-descent parser for the FO text syntax.
//!
//! Grammar (precedence from loosest to tightest):
//!
//! ```text
//! formula := iff
//! iff     := implies ( "<->" implies )*          (left-associative)
//! implies := or ( "->" implies )?                (right-associative)
//! or      := and ( "|" and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary | quantified | primary
//! quant   := ("forall" | "exists") ident+ "." implies
//! primary := "true" | "false" | "(" formula ")"
//!          | ident "(" term ("," term)* ")"      (relational atom)
//!          | term "=" term | term "!=" term
//! term    := ident                               (constant if declared, else variable)
//! ```
//!
//! Multiple variables after one quantifier are sugar:
//! `forall x y. φ` is `forall x. forall y. φ`. Identifiers that match a
//! declared constant name denote that constant; all other identifiers
//! are variables. A **canonical** variable name — `x` followed by a
//! decimal numeral without leading zeros, e.g. `x0`, `x17` — denotes
//! exactly [`Var`] of that numeral, which makes parsing a left inverse
//! of [`Formula::display`] (the printer writes `Var(i)` as `x{i}`). All
//! other names are numbered with the smallest indices not claimed by a
//! canonical name, in order of first occurrence.

use crate::{Formula, Term, Var};
use fmt_structures::Signature;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicParseError {
    /// Byte offset into the source at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for LogicParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LogicParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    NotEq,
    Not,
    And,
    Or,
    Implies,
    Iff,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, LogicParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '.' => {
                out.push((i, Tok::Dot));
                i += 1;
            }
            '=' => {
                out.push((i, Tok::Eq));
                i += 1;
            }
            '&' => {
                out.push((i, Tok::And));
                i += 1;
            }
            '|' => {
                out.push((i, Tok::Or));
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::NotEq));
                    i += 2;
                } else {
                    out.push((i, Tok::Not));
                    i += 1;
                }
            }
            '-' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push((i, Tok::Implies));
                    i += 2;
                } else {
                    return Err(LogicParseError {
                        offset: i,
                        message: "expected '->'".into(),
                    });
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'-') && b.get(i + 2) == Some(&b'>') {
                    out.push((i, Tok::Iff));
                    i += 3;
                } else {
                    // Bare '<' is a legal relation name character in our
                    // signatures (the order relation); treat it as an
                    // identifier.
                    out.push((i, Tok::Ident("<".into())));
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'\'')
                {
                    i += 1;
                }
                out.push((start, Tok::Ident(src[start..i].to_owned())));
            }
            other => {
                return Err(LogicParseError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    sig: &'a Signature,
    vars: Vec<String>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |(o, _)| *o)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> LogicParseError {
        LogicParseError {
            offset: self.offset(),
            message: msg.into(),
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), LogicParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn var(&mut self, name: &str) -> Var {
        match self.vars.iter().position(|v| v == name) {
            Some(i) => Var(i as u32),
            None => {
                self.vars.push(name.to_owned());
                Var(self.vars.len() as u32 - 1)
            }
        }
    }

    fn term(&mut self, name: &str) -> Term {
        match self.sig.constant(name) {
            Some(c) => Term::Const(c),
            None => Term::Var(self.var(name)),
        }
    }

    fn formula(&mut self) -> Result<Formula, LogicParseError> {
        let mut f = self.implies()?;
        while self.peek() == Some(&Tok::Iff) {
            self.pos += 1;
            let g = self.implies()?;
            f = f.iff(g);
        }
        Ok(f)
    }

    fn implies(&mut self) -> Result<Formula, LogicParseError> {
        let f = self.or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            let g = self.implies()?;
            Ok(f.implies(g))
        } else {
            Ok(f)
        }
    }

    fn or(&mut self) -> Result<Formula, LogicParseError> {
        let mut f = self.and()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            let g = self.and()?;
            f = f.or(g);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, LogicParseError> {
        let mut f = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            let g = self.unary()?;
            f = f.and(g);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, LogicParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(Tok::Ident(name)) if name == "forall" || name == "exists" => {
                let universal = name == "forall";
                self.pos += 1;
                let mut vars = Vec::new();
                loop {
                    match self.peek() {
                        Some(Tok::Ident(n)) => {
                            let n = n.clone();
                            self.pos += 1;
                            if self.sig.constant(&n).is_some() {
                                return Err(self.err(format!("cannot quantify over constant {n}")));
                            }
                            vars.push(self.var(&n));
                        }
                        Some(Tok::Dot) => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected variable or '.'")),
                    }
                }
                if vars.is_empty() {
                    return Err(self.err("quantifier binds no variables"));
                }
                let body = self.implies()?;
                Ok(if universal {
                    Formula::forall_many(&vars, body)
                } else {
                    Formula::exists_many(&vars, body)
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula, LogicParseError> {
        match self.bump() {
            Some(Tok::LParen) => {
                let f = self.formula()?;
                self.expect(&Tok::RParen, "')'")?;
                // Allow `(t) = u`-free grammar: parenthesized formulas only.
                Ok(f)
            }
            Some(Tok::Ident(name)) if name == "true" => Ok(Formula::True),
            Some(Tok::Ident(name)) if name == "false" => Ok(Formula::False),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    // Relational atom.
                    let rel = self
                        .sig
                        .relation(&name)
                        .ok_or_else(|| self.err(format!("unknown relation {name}")))?;
                    self.pos += 1;
                    let mut args = Vec::new();
                    loop {
                        match self.bump() {
                            Some(Tok::Ident(t)) => args.push(self.term(&t)),
                            _ => return Err(self.err("expected term")),
                        }
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            _ => return Err(self.err("expected ',' or ')'")),
                        }
                    }
                    if args.len() != self.sig.arity(rel) {
                        return Err(self.err(format!(
                            "relation {name} has arity {}, got {} arguments",
                            self.sig.arity(rel),
                            args.len()
                        )));
                    }
                    Ok(Formula::Atom { rel, args })
                } else {
                    // Equality / inequality atom.
                    let lhs = self.term(&name);
                    match self.bump() {
                        Some(Tok::Eq) => {}
                        Some(Tok::NotEq) => {
                            let rhs = match self.bump() {
                                Some(Tok::Ident(t)) => self.term(&t),
                                _ => return Err(self.err("expected term after '!='")),
                            };
                            return Ok(Formula::Eq(lhs, rhs).not());
                        }
                        Some(Tok::Ident(op)) if op == "<" => {
                            // Infix notation for the order relation, if
                            // the signature declares `<`.
                            let rel = self
                                .sig
                                .relation("<")
                                .ok_or_else(|| self.err("signature has no '<' relation"))?;
                            let rhs = match self.bump() {
                                Some(Tok::Ident(t)) => self.term(&t),
                                _ => return Err(self.err("expected term after '<'")),
                            };
                            return Ok(Formula::Atom {
                                rel,
                                args: vec![lhs, rhs],
                            });
                        }
                        _ => return Err(self.err("expected '=', '!=' or '<' after term")),
                    }
                    let rhs = match self.bump() {
                        Some(Tok::Ident(t)) => self.term(&t),
                        _ => return Err(self.err("expected term after '='")),
                    };
                    Ok(Formula::Eq(lhs, rhs))
                }
            }
            _ => Err(self.err("expected formula")),
        }
    }
}

/// The index a canonical variable name denotes: `x` followed by a
/// decimal numeral without leading zeros (`x0`, `x3`, `x12`, …).
fn canonical_index(name: &str) -> Option<u32> {
    let digits = name.strip_prefix('x')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if digits.len() > 1 && digits.starts_with('0') {
        return None; // `x01` is an ordinary name, not Var(1)
    }
    digits.parse::<u32>().ok()
}

/// Remaps the parser's first-occurrence indices so canonical names
/// (`x<digits>`) keep their printed index — making the parser a left
/// inverse of the pretty-printer — while other names take the smallest
/// free indices in occurrence order. Returns the permuted formula and
/// the rebuilt name table (gaps filled with their canonical name).
fn remap_canonical_vars(f: Formula, names: Vec<String>) -> (Formula, Vec<String>) {
    use std::collections::BTreeSet;
    let mut target: Vec<Option<u32>> = names.iter().map(|n| canonical_index(n)).collect();
    let taken: BTreeSet<u32> = target.iter().flatten().copied().collect();
    let mut free = (0u32..).filter(|i| !taken.contains(i));
    for t in &mut target {
        if t.is_none() {
            *t = free.next();
        }
    }
    let map: Vec<u32> = target.into_iter().map(|t| t.expect("assigned")).collect();
    let table_len = map.iter().max().map_or(0, |&m| m as usize + 1);
    let mut table: Vec<String> = (0..table_len).map(|i| format!("x{i}")).collect();
    for (name, &idx) in names.iter().zip(&map) {
        table[idx as usize] = name.clone();
    }
    if map.iter().enumerate().all(|(i, &t)| i as u32 == t) {
        return (f, table); // identity: nothing to rename
    }
    let g = f.rename_vars(&|Var(i)| Var(map[i as usize]));
    (g, table)
}

/// Parses a formula, returning it together with the variable-name table
/// (`table[i]` is the source name of [`Var`]`(i)`, or the canonical
/// `x{i}` for indices no source name maps to).
pub fn parse_formula_with_vars(
    sig: &Signature,
    src: &str,
) -> Result<(Formula, Vec<String>), LogicParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        sig,
        vars: Vec::new(),
    };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after formula"));
    }
    let (f, table) = remap_canonical_vars(f, p.vars);
    debug_assert!(f.well_formed(sig).is_ok());
    Ok((f, table))
}

/// Parses a formula over the given signature.
pub fn parse_formula(sig: &Signature, src: &str) -> Result<Formula, LogicParseError> {
    parse_formula_with_vars(sig, src).map(|(f, _)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::Signature;

    #[test]
    fn atoms_and_equality() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "E(x, y)").unwrap();
        assert_eq!(f.free_vars().len(), 2);
        let g = parse_formula(&sig, "x = y").unwrap();
        assert!(matches!(g, Formula::Eq(..)));
        let h = parse_formula(&sig, "x != y").unwrap();
        assert!(matches!(h, Formula::Not(_)));
    }

    #[test]
    fn precedence() {
        let sig = Signature::graph();
        // a & b | c parses as (a & b) | c.
        let f = parse_formula(&sig, "E(x,x) & E(y,y) | E(z,z)").unwrap();
        assert!(matches!(f, Formula::Or(_)));
        // a -> b -> c is right-associative.
        let g = parse_formula(&sig, "E(x,x) -> E(y,y) -> E(z,z)").unwrap();
        if let Formula::Implies(_, rhs) = g {
            assert!(matches!(*rhs, Formula::Implies(..)));
        } else {
            panic!("expected implies");
        }
    }

    #[test]
    fn quantifier_sugar() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "forall x y. E(x, y)").unwrap();
        assert_eq!(f.quantifier_rank(), 2);
        assert!(f.is_sentence());
        let g = parse_formula(&sig, "exists x. forall y. E(x,y) & E(y,x)").unwrap();
        assert_eq!(g.quantifier_rank(), 2);
    }

    #[test]
    fn quantifier_scope_extends_right() {
        let sig = Signature::graph();
        // The body of the quantifier is everything to the right at
        // implies level, so this is a sentence.
        let f = parse_formula(&sig, "forall x. E(x,x) -> exists y. E(x,y)").unwrap();
        assert!(f.is_sentence());
    }

    #[test]
    fn infix_order() {
        let sig = Signature::order();
        let f = parse_formula(&sig, "forall x y. x < y -> !(y < x)").unwrap();
        assert!(f.is_sentence());
        assert!(f.well_formed(&sig).is_ok());
        // Prefix form works too.
        let g = parse_formula(&sig, "forall x y. <(x, y) -> !<(y, x)").unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn constants_resolved() {
        let sig = Signature::builder()
            .relation("E", 2)
            .constant("root")
            .finish_arc();
        let f = parse_formula(&sig, "exists x. E(root, x)").unwrap();
        let mut has_const = false;
        f.visit(&mut |g| {
            if let Formula::Atom { args, .. } = g {
                has_const |= args.iter().any(|t| matches!(t, Term::Const(_)));
            }
        });
        assert!(has_const);
        // Quantifying over a constant is an error.
        assert!(parse_formula(&sig, "exists root. E(root, root)").is_err());
    }

    #[test]
    fn variable_table() {
        let sig = Signature::graph();
        let (_, vars) = parse_formula_with_vars(&sig, "E(alpha, beta) & E(beta, alpha)").unwrap();
        assert_eq!(vars, vec!["alpha".to_owned(), "beta".to_owned()]);
    }

    #[test]
    fn canonical_names_keep_their_index() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        // `x1` occurs first but still denotes Var(1).
        let f = parse_formula(&sig, "E(x1, x0)").unwrap();
        assert_eq!(f, Formula::atom(e, &[Var(1), Var(0)]));
        // A sparse canonical name leaves a gap; the table fills it.
        let (g, vars) = parse_formula_with_vars(&sig, "E(x2, x2)").unwrap();
        assert_eq!(g, Formula::atom(e, &[Var(2), Var(2)]));
        assert_eq!(
            vars,
            vec!["x0".to_owned(), "x1".to_owned(), "x2".to_owned()]
        );
    }

    #[test]
    fn non_canonical_names_avoid_canonical_indices() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        // `y` takes the smallest index not claimed by `x0`: Var(1).
        let f = parse_formula(&sig, "E(y, x0)").unwrap();
        assert_eq!(f, Formula::atom(e, &[Var(1), Var(0)]));
        // Leading zeros make the name non-canonical: `x01` is not Var(1).
        let g = parse_formula(&sig, "E(x01, x1)").unwrap();
        assert_eq!(g, Formula::atom(e, &[Var(0), Var(1)]));
    }

    #[test]
    fn canonical_names_under_quantifiers() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = parse_formula(&sig, "exists x3. E(x3, x0)").unwrap();
        assert_eq!(
            f,
            Formula::exists(Var(3), Formula::atom(e, &[Var(3), Var(0)]))
        );
    }

    #[test]
    fn errors() {
        let sig = Signature::graph();
        assert!(parse_formula(&sig, "F(x, y)").is_err()); // unknown relation
        assert!(parse_formula(&sig, "E(x)").is_err()); // wrong arity
        assert!(parse_formula(&sig, "E(x, y) &").is_err()); // dangling
        assert!(parse_formula(&sig, "E(x, y) E(y, x)").is_err()); // trailing
        assert!(parse_formula(&sig, "(E(x, y)").is_err()); // unbalanced
        assert!(parse_formula(&sig, "forall . E(x, x)").is_err()); // no vars
        assert!(parse_formula(&sig, "@").is_err()); // bad char
    }

    #[test]
    fn display_parse_roundtrip() {
        let sig = Signature::graph();
        let sources = [
            "forall x. exists y. E(x, y)",
            "E(x, y) & !(x = y) | E(y, x)",
            "(E(x, y) -> E(y, x)) <-> E(x, x)",
            "exists x y z. E(x, y) & E(y, z) & E(z, x)",
            "true & !false",
        ];
        for src in sources {
            let f = parse_formula(&sig, src).unwrap();
            let printed = format!("{}", f.display(&sig));
            let g = parse_formula(&sig, &printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(f, g, "roundtrip failed for {src:?} -> {printed:?}");
        }
    }
}
