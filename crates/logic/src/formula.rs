//! The first-order formula AST.

use fmt_structures::{ConstId, Diagnostic, RelId, Signature};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A first-order variable, identified by index. Displayed as `x0`,
/// `x1`, …; the [`crate::parser`] maps canonical `x<digits>` names back
/// to exactly that index (so parsing inverts printing) and numbers all
/// other source names with the remaining indices in order of first
/// occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A term: a variable or a constant symbol. (Signatures are relational,
/// so there are no composite terms.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A constant symbol occurrence.
    Const(ConstId),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

/// A first-order formula over some relational signature.
///
/// The AST is signature-relative: atoms refer to relation symbols by
/// [`RelId`]. Use [`crate::Query`] to bundle a formula with its
/// signature, or [`Formula::well_formed`] to validate against one.
///
/// `And`/`Or` are n-ary (empty conjunction = `True`, empty disjunction
/// = `False`), which keeps big generated formulas (extension axioms,
/// distinctness constraints) flat and readable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formula {
    /// The true constant (empty conjunction).
    True,
    /// The false constant (empty disjunction).
    False,
    /// A relational atom `R(t₁, …, tₖ)`.
    Atom {
        /// The relation symbol.
        rel: RelId,
        /// The argument terms; length must equal the arity of `rel`.
        args: Vec<Term>,
    },
    /// An equality atom `t₁ = t₂`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Var, Box<Formula>),
    /// Universal quantification.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// Convenience constructor for a relational atom over variables.
    pub fn atom(rel: RelId, vars: &[Var]) -> Formula {
        Formula::Atom {
            rel,
            args: vars.iter().map(|&v| Term::Var(v)).collect(),
        }
    }

    /// Convenience constructor for `t₁ = t₂` over variables.
    pub fn eq_vars(a: Var, b: Var) -> Formula {
        Formula::Eq(Term::Var(a), Term::Var(b))
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors logical ¬
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self → other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// `self ↔ other`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    /// `self ∧ other` (flattening nested conjunctions).
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), g) => {
                a.push(g);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (f, g) => Formula::And(vec![f, g]),
        }
    }

    /// `self ∨ other` (flattening nested disjunctions).
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), g) => {
                a.push(g);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (f, g) => Formula::Or(vec![f, g]),
        }
    }

    /// `∃v. self`.
    pub fn exists(v: Var, body: Formula) -> Formula {
        Formula::Exists(v, Box::new(body))
    }

    /// `∃v₁…∃vₖ. self` (left to right).
    pub fn exists_many(vars: &[Var], body: Formula) -> Formula {
        vars.iter()
            .rev()
            .fold(body, |acc, &v| Formula::Exists(v, Box::new(acc)))
    }

    /// `∀v. self`.
    pub fn forall(v: Var, body: Formula) -> Formula {
        Formula::Forall(v, Box::new(body))
    }

    /// `∀v₁…∀vₖ. self` (left to right).
    pub fn forall_many(vars: &[Var], body: Formula) -> Formula {
        vars.iter()
            .rev()
            .fold(body, |acc, &v| Formula::Forall(v, Box::new(acc)))
    }

    /// N-ary conjunction with unit simplification.
    pub fn big_and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<Formula> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::True,
            1 => v.into_iter().next().unwrap(),
            _ => Formula::And(v),
        }
    }

    /// N-ary disjunction with unit simplification.
    pub fn big_or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<Formula> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::False,
            1 => v.into_iter().next().unwrap(),
            _ => Formula::Or(v),
        }
    }

    /// The quantifier rank `qr(φ)`: maximum nesting depth of quantifiers.
    ///
    /// This is the measure Ehrenfeucht–Fraïssé games are calibrated
    /// against: `A ≡ₙ B` iff `A` and `B` agree on all sentences of
    /// quantifier rank ≤ n.
    ///
    /// ```
    /// use fmt_logic::parser;
    /// use fmt_structures::Signature;
    /// let sig = Signature::builder().relation("P", 2).relation("R", 3).finish_arc();
    /// // The lecture's example: qr(∀x [∃w P(x,w) ∧ ∃y∃z R(x,y,z)]) = 3.
    /// let f = parser::parse_formula(
    ///     &sig,
    ///     "forall x. (exists w. P(x,w)) & (exists y. exists z. R(x,y,z))",
    /// ).unwrap();
    /// assert_eq!(f.quantifier_rank(), 3);
    /// ```
    pub fn quantifier_rank(&self) -> u32 {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::quantifier_rank).max().unwrap_or(0)
            }
            Formula::Implies(f, g) | Formula::Iff(f, g) => {
                f.quantifier_rank().max(g.quantifier_rank())
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.quantifier_rank() + 1,
        }
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn go(f: &Formula, out: &mut BTreeSet<Var>, bound: &mut Vec<Var>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom { args, .. } => {
                    for t in args {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(*v);
                            }
                        }
                    }
                }
                Formula::Eq(a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(*v);
                            }
                        }
                    }
                }
                Formula::Not(g) => go(g, out, bound),
                Formula::And(fs) | Formula::Or(fs) => {
                    for g in fs {
                        go(g, out, bound);
                    }
                }
                Formula::Implies(a, b) | Formula::Iff(a, b) => {
                    go(a, out, bound);
                    go(b, out, bound);
                }
                Formula::Exists(v, g) | Formula::Forall(v, g) => {
                    bound.push(*v);
                    go(g, out, bound);
                    bound.pop();
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out, &mut Vec::new());
        out
    }

    /// `true` if the formula is a sentence (no free variables): a
    /// Boolean query.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All variables occurring anywhere (free or bound).
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Atom { args, .. } => {
                for t in args {
                    if let Term::Var(v) = t {
                        out.insert(*v);
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        out.insert(*v);
                    }
                }
            }
            Formula::Exists(v, _) | Formula::Forall(v, _) => {
                out.insert(*v);
            }
            _ => {}
        });
        out
    }

    /// The largest variable index occurring (free or bound), or `None`
    /// for variable-free formulas. Useful for sizing evaluation
    /// environments.
    pub fn max_var(&self) -> Option<u32> {
        self.all_vars().iter().map(|v| v.0).max()
    }

    /// The number of *distinct* variables: the width measure behind the
    /// finite-variable fragments `FOᵏ` and pebble games.
    pub fn width(&self) -> usize {
        self.all_vars().len()
    }

    /// Number of AST nodes — the query size `k` of the combined
    /// complexity estimate `O(n^k)`.
    pub fn num_nodes(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Pre-order traversal of all subformulas.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Formula)) {
        f(self);
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => {}
            Formula::Not(g) => g.visit(f),
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    g.visit(f);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Exists(_, g) | Formula::Forall(_, g) => g.visit(f),
        }
    }

    /// Renames every variable occurrence (free and bound) via `f`.
    ///
    /// Not capture-avoiding — intended for injective renamings such as
    /// [`crate::nf::standardize_apart`] output or variable shifting.
    pub fn rename_vars(&self, f: &impl Fn(Var) -> Var) -> Formula {
        let t = |term: &Term| match term {
            Term::Var(v) => Term::Var(f(*v)),
            c => *c,
        };
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom { rel, args } => Formula::Atom {
                rel: *rel,
                args: args.iter().map(t).collect(),
            },
            Formula::Eq(a, b) => Formula::Eq(t(a), t(b)),
            Formula::Not(g) => Formula::Not(Box::new(g.rename_vars(f))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| g.rename_vars(f)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| g.rename_vars(f)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.rename_vars(f)), Box::new(b.rename_vars(f)))
            }
            Formula::Iff(a, b) => {
                Formula::Iff(Box::new(a.rename_vars(f)), Box::new(b.rename_vars(f)))
            }
            Formula::Exists(v, g) => Formula::Exists(f(*v), Box::new(g.rename_vars(f))),
            Formula::Forall(v, g) => Formula::Forall(f(*v), Box::new(g.rename_vars(f))),
        }
    }

    /// Checks well-formedness against a signature: every atom's relation
    /// exists with matching arity, every constant exists. The first
    /// violation is reported as a code-`F004` [`Diagnostic`] (with no
    /// span: ASTs built programmatically have no source positions —
    /// the parser catches the same errors *with* spans before an
    /// ill-formed tree can exist). Use [`Formula::well_formed_str`]
    /// where a plain message string is enough.
    pub fn well_formed(&self, sig: &Signature) -> Result<(), Diagnostic> {
        let mut err = None;
        self.visit(&mut |f| {
            if err.is_some() {
                return;
            }
            match f {
                Formula::Atom { rel, args } => {
                    if rel.0 >= sig.num_relations() {
                        err = Some(format!("relation id {} out of range", rel.0));
                    } else if sig.arity(*rel) != args.len() {
                        err = Some(format!(
                            "relation {} has arity {}, atom has {} arguments",
                            sig.relation_name(*rel),
                            sig.arity(*rel),
                            args.len()
                        ));
                    } else {
                        for t in args {
                            if let Term::Const(c) = t {
                                if c.0 >= sig.num_constants() {
                                    err = Some(format!("constant id {} out of range", c.0));
                                }
                            }
                        }
                    }
                }
                Formula::Eq(a, b) => {
                    for t in [a, b] {
                        if let Term::Const(c) = t {
                            if c.0 >= sig.num_constants() {
                                err = Some(format!("constant id {} out of range", c.0));
                            }
                        }
                    }
                }
                _ => {}
            }
        });
        match err {
            Some(e) => Err(Diagnostic::error("F004", e)),
            None => Ok(()),
        }
    }

    /// [`Formula::well_formed`] with the diagnostic flattened to its
    /// message string — a compatibility shim for callers that only
    /// carry `String` errors.
    pub fn well_formed_str(&self, sig: &Signature) -> Result<(), String> {
        self.well_formed(sig).map_err(|d| d.message)
    }

    /// Pretty-prints against a signature (for relation/constant names).
    pub fn display<'a>(&'a self, sig: &'a Signature) -> impl fmt::Display + 'a {
        DisplayFormula { f: self, sig }
    }
}

struct DisplayFormula<'a> {
    f: &'a Formula,
    sig: &'a Signature,
}

impl fmt::Display for DisplayFormula<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_formula(self.f, self.sig, out, 0)
    }
}

fn term_str(t: &Term, sig: &Signature) -> String {
    match t {
        Term::Var(v) => v.to_string(),
        Term::Const(c) => sig.constant_name(*c).to_owned(),
    }
}

/// Precedence levels: 0 = iff, 1 = implies, 2 = or, 3 = and, 4 = unary.
fn write_formula(
    f: &Formula,
    sig: &Signature,
    out: &mut fmt::Formatter<'_>,
    prec: u8,
) -> fmt::Result {
    let paren = |needed: u8| prec > needed;
    match f {
        Formula::True => write!(out, "true"),
        Formula::False => write!(out, "false"),
        Formula::Atom { rel, args } => {
            let args: Vec<String> = args.iter().map(|t| term_str(t, sig)).collect();
            write!(out, "{}({})", sig.relation_name(*rel), args.join(", "))
        }
        Formula::Eq(a, b) => write!(out, "{} = {}", term_str(a, sig), term_str(b, sig)),
        Formula::Not(g) => {
            write!(out, "!")?;
            write_formula(g, sig, out, 4)
        }
        Formula::And(fs) => {
            if fs.is_empty() {
                return write!(out, "true");
            }
            if paren(3) {
                write!(out, "(")?;
            }
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    write!(out, " & ")?;
                }
                write_formula(g, sig, out, 4)?;
            }
            if paren(3) {
                write!(out, ")")?;
            }
            Ok(())
        }
        Formula::Or(fs) => {
            if fs.is_empty() {
                return write!(out, "false");
            }
            if paren(2) {
                write!(out, "(")?;
            }
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    write!(out, " | ")?;
                }
                write_formula(g, sig, out, 3)?;
            }
            if paren(2) {
                write!(out, ")")?;
            }
            Ok(())
        }
        Formula::Implies(a, b) => {
            if paren(1) {
                write!(out, "(")?;
            }
            write_formula(a, sig, out, 2)?;
            write!(out, " -> ")?;
            write_formula(b, sig, out, 1)?;
            if paren(1) {
                write!(out, ")")?;
            }
            Ok(())
        }
        Formula::Iff(a, b) => {
            if paren(0) {
                write!(out, "(")?;
            }
            write_formula(a, sig, out, 1)?;
            write!(out, " <-> ")?;
            write_formula(b, sig, out, 1)?;
            if paren(0) {
                write!(out, ")")?;
            }
            Ok(())
        }
        Formula::Exists(v, g) => {
            if paren(1) {
                write!(out, "(")?;
            }
            write!(out, "exists {v}. ")?;
            write_formula(g, sig, out, 1)?;
            if paren(1) {
                write!(out, ")")?;
            }
            Ok(())
        }
        Formula::Forall(v, g) => {
            if paren(1) {
                write!(out, "(")?;
            }
            write!(out, "forall {v}. ")?;
            write_formula(g, sig, out, 1)?;
            if paren(1) {
                write!(out, ")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::Signature;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn quantifier_rank_basics() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let atom = Formula::atom(e, &[v(0), v(1)]);
        assert_eq!(atom.quantifier_rank(), 0);
        let f = Formula::forall(
            v(0),
            Formula::exists(v(1), atom.clone()).and(Formula::exists(v(2), Formula::True)),
        );
        assert_eq!(f.quantifier_rank(), 2);
        let nested = Formula::exists(v(0), Formula::exists(v(1), Formula::exists(v(2), atom)));
        assert_eq!(nested.quantifier_rank(), 3);
    }

    #[test]
    fn free_vars_and_sentences() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = Formula::exists(v(1), Formula::atom(e, &[v(0), v(1)]));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![v(0)]);
        assert!(!f.is_sentence());
        let g = Formula::forall(v(0), f);
        assert!(g.is_sentence());
    }

    #[test]
    fn shadowing_is_respected() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        // ∃x0 (E(x0,x0) ∧ ∃x0 E(x0, x1)): only x1 is free.
        let f = Formula::exists(
            v(0),
            Formula::atom(e, &[v(0), v(0)])
                .and(Formula::exists(v(0), Formula::atom(e, &[v(0), v(1)]))),
        );
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![v(1)]);
    }

    #[test]
    fn width_counts_distinct_variables() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        // Reusing variables keeps the width low: a 3-path with 2 variables.
        let f = Formula::exists(
            v(0),
            Formula::exists(
                v(1),
                Formula::atom(e, &[v(0), v(1)])
                    .and(Formula::exists(v(0), Formula::atom(e, &[v(1), v(0)]))),
            ),
        );
        assert_eq!(f.width(), 2);
        assert_eq!(f.quantifier_rank(), 3);
    }

    #[test]
    fn and_or_flatten() {
        let f = Formula::True.and(Formula::False).and(Formula::True);
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
        let g = Formula::big_or(vec![]);
        assert_eq!(g, Formula::False);
        let h = Formula::big_and(vec![Formula::True]);
        assert_eq!(h, Formula::True);
    }

    #[test]
    fn well_formedness() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        assert!(Formula::atom(e, &[v(0), v(1)]).well_formed(&sig).is_ok());
        assert!(Formula::atom(e, &[v(0)]).well_formed(&sig).is_err());
        let bad = Formula::Atom {
            rel: fmt_structures::RelId(7),
            args: vec![],
        };
        assert!(bad.well_formed(&sig).is_err());
    }

    #[test]
    fn display_roundtrip_shapes() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = Formula::forall(
            v(0),
            Formula::exists(v(1), Formula::atom(e, &[v(0), v(1)]))
                .implies(Formula::eq_vars(v(0), v(0)).not()),
        );
        let s = format!("{}", f.display(&sig));
        assert!(s.contains("forall x0"), "{s}");
        assert!(s.contains("exists x1"), "{s}");
        assert!(s.contains("->"), "{s}");
    }

    #[test]
    fn num_nodes_counts() {
        let f = Formula::True.and(Formula::False);
        assert_eq!(f.num_nodes(), 3);
    }

    #[test]
    fn rename_vars_shifts() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = Formula::exists(v(0), Formula::atom(e, &[v(0), v(1)]));
        let g = f.rename_vars(&|Var(i)| Var(i + 10));
        assert_eq!(g, Formula::exists(v(10), Formula::atom(e, &[v(10), v(11)])));
    }
}
