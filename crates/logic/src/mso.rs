//! Monadic second-order logic (MSO) — the expressivity counterpoint.
//!
//! The survey's complexity theorem covers "FO (and monadic second-order
//! logic MSO)", and its inexpressibility results are all about queries
//! that FO *cannot* define — connectivity, acyclicity, transitive
//! closure. MSO can define them: quantification over **sets** of
//! elements is exactly what reachability arguments need. This module
//! adds the MSO syntax layer; `fmt-eval::mso` evaluates it (by
//! exhaustive set quantification, exponential as expected), and the
//! experiment suite verifies that the MSO sentences below compute the
//! same queries as the reference graph algorithms — the positive half
//! of the expressivity story.
//!
//! Syntax: [`MsoFormula`] embeds full FO and adds set variables
//! [`SetVar`], membership atoms `X(t)`, and set quantifiers `∃X`/`∀X`.

use crate::{Formula, Term, Var};
use fmt_structures::RelId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A monadic second-order (set) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SetVar(pub u32);

impl std::fmt::Display for SetVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// An MSO formula: first-order constructs plus set membership and set
/// quantification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsoFormula {
    /// An embedded first-order atom `R(t̄)`.
    Atom {
        /// The relation symbol.
        rel: RelId,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// Equality `t₁ = t₂`.
    Eq(Term, Term),
    /// Set membership `t ∈ X`.
    In(Term, SetVar),
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Negation.
    Not(Box<MsoFormula>),
    /// N-ary conjunction.
    And(Vec<MsoFormula>),
    /// N-ary disjunction.
    Or(Vec<MsoFormula>),
    /// Implication.
    Implies(Box<MsoFormula>, Box<MsoFormula>),
    /// First-order existential.
    Exists(Var, Box<MsoFormula>),
    /// First-order universal.
    Forall(Var, Box<MsoFormula>),
    /// Set existential `∃X φ`.
    ExistsSet(SetVar, Box<MsoFormula>),
    /// Set universal `∀X φ`.
    ForallSet(SetVar, Box<MsoFormula>),
}

impl MsoFormula {
    /// Lifts a first-order formula into MSO.
    pub fn from_fo(f: &Formula) -> MsoFormula {
        match f {
            Formula::True => MsoFormula::True,
            Formula::False => MsoFormula::False,
            Formula::Atom { rel, args } => MsoFormula::Atom {
                rel: *rel,
                args: args.clone(),
            },
            Formula::Eq(a, b) => MsoFormula::Eq(*a, *b),
            Formula::Not(g) => MsoFormula::Not(Box::new(MsoFormula::from_fo(g))),
            Formula::And(fs) => MsoFormula::And(fs.iter().map(MsoFormula::from_fo).collect()),
            Formula::Or(fs) => MsoFormula::Or(fs.iter().map(MsoFormula::from_fo).collect()),
            Formula::Implies(a, b) => MsoFormula::Implies(
                Box::new(MsoFormula::from_fo(a)),
                Box::new(MsoFormula::from_fo(b)),
            ),
            Formula::Iff(a, b) => {
                let fa = MsoFormula::from_fo(a);
                let fb = MsoFormula::from_fo(b);
                // (a → b) ∧ (b → a)
                MsoFormula::And(vec![
                    MsoFormula::Implies(Box::new(fa.clone()), Box::new(fb.clone())),
                    MsoFormula::Implies(Box::new(fb), Box::new(fa)),
                ])
            }
            Formula::Exists(v, g) => MsoFormula::Exists(*v, Box::new(MsoFormula::from_fo(g))),
            Formula::Forall(v, g) => MsoFormula::Forall(*v, Box::new(MsoFormula::from_fo(g))),
        }
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors logical ¬
    pub fn not(self) -> MsoFormula {
        MsoFormula::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: MsoFormula) -> MsoFormula {
        match (self, other) {
            (MsoFormula::And(mut a), MsoFormula::And(b)) => {
                a.extend(b);
                MsoFormula::And(a)
            }
            (MsoFormula::And(mut a), g) => {
                a.push(g);
                MsoFormula::And(a)
            }
            (f, g) => MsoFormula::And(vec![f, g]),
        }
    }

    /// `self ∨ other`.
    pub fn or(self, other: MsoFormula) -> MsoFormula {
        MsoFormula::Or(vec![self, other])
    }

    /// `self → other`.
    pub fn implies(self, other: MsoFormula) -> MsoFormula {
        MsoFormula::Implies(Box::new(self), Box::new(other))
    }

    /// Free first-order variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn go(f: &MsoFormula, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            let term = |t: &Term, bound: &Vec<Var>, out: &mut BTreeSet<Var>| {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            };
            match f {
                MsoFormula::True | MsoFormula::False => {}
                MsoFormula::Atom { args, .. } => {
                    for t in args {
                        term(t, bound, out);
                    }
                }
                MsoFormula::Eq(a, b) => {
                    term(a, bound, out);
                    term(b, bound, out);
                }
                MsoFormula::In(t, _) => term(t, bound, out),
                MsoFormula::Not(g) => go(g, bound, out),
                MsoFormula::And(fs) | MsoFormula::Or(fs) => {
                    for g in fs {
                        go(g, bound, out);
                    }
                }
                MsoFormula::Implies(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                MsoFormula::Exists(v, g) | MsoFormula::Forall(v, g) => {
                    bound.push(*v);
                    go(g, bound, out);
                    bound.pop();
                }
                MsoFormula::ExistsSet(_, g) | MsoFormula::ForallSet(_, g) => go(g, bound, out),
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Free set variables.
    pub fn free_set_vars(&self) -> BTreeSet<SetVar> {
        fn go(f: &MsoFormula, bound: &mut Vec<SetVar>, out: &mut BTreeSet<SetVar>) {
            match f {
                MsoFormula::In(_, x) if !bound.contains(x) => {
                    out.insert(*x);
                }
                MsoFormula::Not(g) => go(g, bound, out),
                MsoFormula::And(fs) | MsoFormula::Or(fs) => {
                    for g in fs {
                        go(g, bound, out);
                    }
                }
                MsoFormula::Implies(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                MsoFormula::Exists(_, g) | MsoFormula::Forall(_, g) => go(g, bound, out),
                MsoFormula::ExistsSet(x, g) | MsoFormula::ForallSet(x, g) => {
                    bound.push(*x);
                    go(g, bound, out);
                    bound.pop();
                }
                _ => {}
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// `true` if the formula is an MSO sentence.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty() && self.free_set_vars().is_empty()
    }

    /// Largest first-order variable index mentioned.
    pub fn max_var(&self) -> Option<u32> {
        let mut max: Option<u32> = None;
        fn go(f: &MsoFormula, max: &mut Option<u32>) {
            let mut bump = |v: Var| {
                *max = Some(max.map_or(v.0, |m| m.max(v.0)));
            };
            match f {
                MsoFormula::Atom { args, .. } => {
                    for t in args {
                        if let Term::Var(v) = t {
                            bump(*v);
                        }
                    }
                }
                MsoFormula::Eq(a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            bump(*v);
                        }
                    }
                }
                MsoFormula::In(Term::Var(v), _) => bump(*v),
                MsoFormula::In(Term::Const(_), _) => {}
                MsoFormula::Not(g) => go(g, max),
                MsoFormula::And(fs) | MsoFormula::Or(fs) => {
                    for g in fs {
                        go(g, max);
                    }
                }
                MsoFormula::Implies(a, b) => {
                    go(a, max);
                    go(b, max);
                }
                MsoFormula::Exists(v, g) | MsoFormula::Forall(v, g) => {
                    bump(*v);
                    go(g, max);
                }
                MsoFormula::ExistsSet(_, g) | MsoFormula::ForallSet(_, g) => go(g, max),
                _ => {}
            }
        }
        go(self, &mut max);
        max
    }

    /// Largest set-variable index mentioned.
    pub fn max_set_var(&self) -> Option<u32> {
        let mut max: Option<u32> = None;
        fn go(f: &MsoFormula, max: &mut Option<u32>) {
            let mut bump = |x: SetVar| {
                *max = Some(max.map_or(x.0, |m| m.max(x.0)));
            };
            match f {
                MsoFormula::In(_, x) => bump(*x),
                MsoFormula::Not(g) => go(g, max),
                MsoFormula::And(fs) | MsoFormula::Or(fs) => {
                    for g in fs {
                        go(g, max);
                    }
                }
                MsoFormula::Implies(a, b) => {
                    go(a, max);
                    go(b, max);
                }
                MsoFormula::Exists(_, g) | MsoFormula::Forall(_, g) => go(g, max),
                MsoFormula::ExistsSet(x, g) | MsoFormula::ForallSet(x, g) => {
                    bump(*x);
                    go(g, max);
                }
                _ => {}
            }
        }
        go(self, &mut max);
        max
    }
}

/// The survey's headline contrast, made positive: **connectivity is
/// MSO-definable** (while Corollary 3.2 shows it is not FO-definable).
///
/// `G` (undirected, edges stored symmetrically or not — both directions
/// are used) is connected iff every set `X` that contains some element
/// and is closed under edges contains all elements:
///
/// ```text
/// ∀X [ (∃x X(x)) ∧ ∀x∀y ((X(x) ∧ (E(x,y) ∨ E(y,x))) → X(y)) → ∀z X(z) ]
/// ```
pub fn mso_connectivity(rel: RelId) -> MsoFormula {
    let xset = SetVar(0);
    let [x, y, z] = [Var(0), Var(1), Var(2)];
    let nonempty = MsoFormula::Exists(x, Box::new(MsoFormula::In(Term::Var(x), xset)));
    let adj = MsoFormula::Atom {
        rel,
        args: vec![Term::Var(x), Term::Var(y)],
    }
    .or(MsoFormula::Atom {
        rel,
        args: vec![Term::Var(y), Term::Var(x)],
    });
    let closed = MsoFormula::Forall(
        x,
        Box::new(MsoFormula::Forall(
            y,
            Box::new(
                MsoFormula::In(Term::Var(x), xset)
                    .and(adj)
                    .implies(MsoFormula::In(Term::Var(y), xset)),
            ),
        )),
    );
    let full = MsoFormula::Forall(z, Box::new(MsoFormula::In(Term::Var(z), xset)));
    MsoFormula::ForallSet(xset, Box::new(nonempty.and(closed).implies(full)))
}

/// **2-colorability (bipartiteness) is MSO-definable**: there is a set
/// `X` such that no edge joins two `X`-members or two non-members.
pub fn mso_bipartite(rel: RelId) -> MsoFormula {
    let xset = SetVar(0);
    let [x, y] = [Var(0), Var(1)];
    let edge = MsoFormula::Atom {
        rel,
        args: vec![Term::Var(x), Term::Var(y)],
    };
    let same_side = MsoFormula::In(Term::Var(x), xset)
        .and(MsoFormula::In(Term::Var(y), xset))
        .or(MsoFormula::In(Term::Var(x), xset)
            .not()
            .and(MsoFormula::In(Term::Var(y), xset).not()));
    MsoFormula::ExistsSet(
        xset,
        Box::new(MsoFormula::Forall(
            x,
            Box::new(MsoFormula::Forall(
                y,
                Box::new(edge.implies(same_side.not())),
            )),
        )),
    )
}

/// **Reachability is MSO-definable**: `reach(x, y)` — with free FO
/// variables `Var(0)`, `Var(1)` — holds iff `y` is reachable from `x`
/// along (undirected) edges: every edge-closed set containing `x`
/// contains `y`.
pub fn mso_reachable(rel: RelId) -> MsoFormula {
    let xset = SetVar(0);
    let [x, y] = [Var(0), Var(1)];
    let [u, w] = [Var(2), Var(3)];
    let adj = MsoFormula::Atom {
        rel,
        args: vec![Term::Var(u), Term::Var(w)],
    }
    .or(MsoFormula::Atom {
        rel,
        args: vec![Term::Var(w), Term::Var(u)],
    });
    let closed = MsoFormula::Forall(
        u,
        Box::new(MsoFormula::Forall(
            w,
            Box::new(
                MsoFormula::In(Term::Var(u), xset)
                    .and(adj)
                    .implies(MsoFormula::In(Term::Var(w), xset)),
            ),
        )),
    );
    MsoFormula::ForallSet(
        xset,
        Box::new(
            MsoFormula::In(Term::Var(x), xset)
                .and(closed)
                .implies(MsoFormula::In(Term::Var(y), xset)),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::Signature;

    #[test]
    fn connectivity_sentence_shape() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = mso_connectivity(e);
        assert!(f.is_sentence());
        assert_eq!(f.max_set_var(), Some(0));
        assert_eq!(f.max_var(), Some(2));
    }

    #[test]
    fn reachability_free_vars() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let f = mso_reachable(e);
        let fv: Vec<Var> = f.free_vars().into_iter().collect();
        assert_eq!(fv, vec![Var(0), Var(1)]);
        assert!(f.free_set_vars().is_empty());
        assert!(!f.is_sentence());
    }

    #[test]
    fn from_fo_preserves_shape() {
        let sig = Signature::graph();
        let fo =
            crate::parser::parse_formula(&sig, "forall x. exists y. E(x, y) <-> E(y, x)").unwrap();
        let mso = MsoFormula::from_fo(&fo);
        assert_eq!(mso.free_vars(), fo.free_vars());
        assert!(mso.free_set_vars().is_empty());
    }

    #[test]
    fn set_var_scoping() {
        let x = SetVar(0);
        let inner = MsoFormula::In(Term::Var(Var(0)), x);
        let open = MsoFormula::Exists(Var(0), Box::new(inner.clone()));
        assert_eq!(open.free_set_vars().len(), 1);
        let closed = MsoFormula::ExistsSet(x, Box::new(open));
        assert!(closed.free_set_vars().is_empty());
        assert!(closed.is_sentence());
    }
}
