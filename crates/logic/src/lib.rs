//! # fmt-logic
//!
//! First-order logic over relational vocabularies — the query language
//! of the finite model theory toolbox (Libkin, PODS'09).
//!
//! The survey's starting point is that **FO is the core relational query
//! language**: a formula `φ(x̄)` over a signature σ induces the query
//! `Q_φ(A) = {d̄ | A ⊨ φ(d̄)}` on finite σ-structures, and sentences
//! (formulas without free variables) are Boolean queries. This crate
//! provides the syntax side of that story:
//!
//! * [`Formula`], [`Term`], [`Var`] — the AST (relational FO with
//!   equality and constants);
//! * [`Formula::quantifier_rank`] — the complexity measure that
//!   Ehrenfeucht–Fraïssé games are calibrated against (`A ≡ₙ B` means
//!   agreement on all sentences of quantifier rank ≤ n);
//! * [`nf`] — negation normal form, prenex normal form, simplification,
//!   standardizing variables apart;
//! * [`parser`] — a small text syntax
//!   (`forall x. exists y. E(x,y) & !(x = y)`);
//! * [`library`] — the survey's canned sentences: "at least k elements"
//!   (the λₖ of the compactness counterexample), linear-order axioms,
//!   the 0-1-law examples Q₁ and Q₂, extension axioms, and more;
//! * [`Query`] — a formula bundled with its signature and answer
//!   variables, validated for well-formedness.
//!
//! ```
//! use fmt_logic::parser;
//! use fmt_structures::Signature;
//!
//! let sig = Signature::graph();
//! let f = parser::parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap();
//! assert_eq!(f.quantifier_rank(), 2);
//! assert!(f.free_vars().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod formula;
pub mod library;
pub mod mso;
pub mod nf;
pub mod parser;
mod query;

pub use formula::{Formula, Term, Var};
pub use query::{Query, QueryError};
