//! Normal forms: simplification, negation normal form, prenex normal
//! form, and standardizing variables apart.
//!
//! The toolbox needs these in several places: the AC⁰ circuit compiler
//! and the relational-algebra evaluator work best on implication-free
//! formulas, and prenex normal form is the bridge to the quantifier
//! prefix analyses (note that prenexing can *increase* quantifier rank —
//! rank is a property of the given syntax, which is exactly why EF games
//! speak about rank rather than prefix depth).

use crate::{Formula, Term, Var};

/// Removes `→`/`↔` and pushes negations to the atoms. Output contains
/// only atoms, negated atoms, `∧`, `∨`, `∃`, `∀`, `true`, `false`.
///
/// NNF conversion never changes the quantifier rank (negation is
/// rank-neutral and `↔` duplicates subformulas at the same depth).
pub fn nnf(f: &Formula) -> Formula {
    fn pos(f: &Formula) -> Formula {
        match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom { .. } | Formula::Eq(..) => f.clone(),
            Formula::Not(g) => neg(g),
            Formula::And(fs) => Formula::And(fs.iter().map(pos).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(pos).collect()),
            Formula::Implies(a, b) => neg(a).or(pos(b)),
            Formula::Iff(a, b) => {
                // (a → b) ∧ (b → a), already in NNF form.
                (neg(a).or(pos(b))).and(neg(b).or(pos(a)))
            }
            Formula::Exists(v, g) => Formula::Exists(*v, Box::new(pos(g))),
            Formula::Forall(v, g) => Formula::Forall(*v, Box::new(pos(g))),
        }
    }
    fn neg(f: &Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Atom { .. } | Formula::Eq(..) => f.clone().not(),
            Formula::Not(g) => pos(g),
            Formula::And(fs) => Formula::Or(fs.iter().map(neg).collect()),
            Formula::Or(fs) => Formula::And(fs.iter().map(neg).collect()),
            Formula::Implies(a, b) => pos(a).and(neg(b)),
            Formula::Iff(a, b) => {
                // ¬(a ↔ b) = (a ∧ ¬b) ∨ (b ∧ ¬a).
                (pos(a).and(neg(b))).or(pos(b).and(neg(a)))
            }
            Formula::Exists(v, g) => Formula::Forall(*v, Box::new(neg(g))),
            Formula::Forall(v, g) => Formula::Exists(*v, Box::new(neg(g))),
        }
    }
    pos(f)
}

/// Constant folding and unit simplification: drops `true`/`false` units,
/// collapses degenerate connectives, removes double negations and
/// trivial equalities `t = t`.
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } => f.clone(),
        Formula::Eq(a, b) if a == b => Formula::True,
        Formula::Eq(..) => f.clone(),
        Formula::Not(g) => match simplify(g) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(h) => *h,
            h => h.not(),
        },
        Formula::And(fs) => {
            let mut out = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(hs) => out.extend(hs),
                    h => out.push(h),
                }
            }
            Formula::big_and(out)
        }
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(hs) => out.extend(hs),
                    h => out.push(h),
                }
            }
            Formula::big_or(out)
        }
        Formula::Implies(a, b) => match (simplify(a), simplify(b)) {
            (Formula::False, _) | (_, Formula::True) => Formula::True,
            (Formula::True, h) => h,
            (h, Formula::False) => simplify(&h.not()),
            (g, h) => g.implies(h),
        },
        Formula::Iff(a, b) => match (simplify(a), simplify(b)) {
            (Formula::True, h) | (h, Formula::True) => h,
            (Formula::False, h) | (h, Formula::False) => simplify(&h.not()),
            (g, h) if g == h => Formula::True,
            (g, h) => g.iff(h),
        },
        Formula::Exists(v, g) => {
            // Note: ∃v true is *not* simplified to true — over the empty
            // domain they differ, and the toolbox does care about empty
            // structures.
            let h = simplify(g);
            Formula::Exists(*v, Box::new(h))
        }
        Formula::Forall(v, g) => {
            let h = simplify(g);
            Formula::Forall(*v, Box::new(h))
        }
    }
}

/// Renames bound variables so that (a) no variable is bound twice and
/// (b) no bound variable clashes with a free one. Fresh variables are
/// allocated above the maximum index in use.
pub fn standardize_apart(f: &Formula) -> Formula {
    let mut next = f.max_var().map_or(0, |m| m + 1);
    // Substitution environment: bound-variable renamings in scope.
    fn go(f: &Formula, env: &mut Vec<(Var, Var)>, next: &mut u32) -> Formula {
        let rename_term = |t: &Term, env: &[(Var, Var)]| match t {
            Term::Var(v) => {
                let mut out = *v;
                // Innermost binding wins.
                for &(from, to) in env.iter().rev() {
                    if from == out {
                        out = to;
                        break;
                    }
                }
                Term::Var(out)
            }
            c => *c,
        };
        match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom { rel, args } => Formula::Atom {
                rel: *rel,
                args: args.iter().map(|t| rename_term(t, env)).collect(),
            },
            Formula::Eq(a, b) => Formula::Eq(rename_term(a, env), rename_term(b, env)),
            Formula::Not(g) => go(g, env, next).not(),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| go(g, env, next)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| go(g, env, next)).collect()),
            Formula::Implies(a, b) => go(a, env, next).implies(go(b, env, next)),
            Formula::Iff(a, b) => go(a, env, next).iff(go(b, env, next)),
            Formula::Exists(v, g) => {
                let fresh = Var(*next);
                *next += 1;
                env.push((*v, fresh));
                let body = go(g, env, next);
                env.pop();
                Formula::Exists(fresh, Box::new(body))
            }
            Formula::Forall(v, g) => {
                let fresh = Var(*next);
                *next += 1;
                env.push((*v, fresh));
                let body = go(g, env, next);
                env.pop();
                Formula::Forall(fresh, Box::new(body))
            }
        }
    }
    go(f, &mut Vec::new(), &mut next)
}

/// A quantifier in a prenex prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Existential.
    Exists(Var),
    /// Universal.
    Forall(Var),
}

/// A formula in prenex normal form: a quantifier prefix over a
/// quantifier-free matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prenex {
    /// The quantifier prefix, outermost first.
    pub prefix: Vec<Quant>,
    /// The quantifier-free matrix.
    pub matrix: Formula,
}

impl Prenex {
    /// Reassembles the prenex formula.
    pub fn to_formula(&self) -> Formula {
        self.prefix
            .iter()
            .rev()
            .fold(self.matrix.clone(), |acc, q| match q {
                Quant::Exists(v) => Formula::Exists(*v, Box::new(acc)),
                Quant::Forall(v) => Formula::Forall(*v, Box::new(acc)),
            })
    }

    /// Number of quantifier alternations in the prefix (Σₖ/Πₖ depth
    /// minus one).
    pub fn alternations(&self) -> usize {
        self.prefix
            .windows(2)
            .filter(|w| {
                matches!(
                    (w[0], w[1]),
                    (Quant::Exists(_), Quant::Forall(_)) | (Quant::Forall(_), Quant::Exists(_))
                )
            })
            .count()
    }
}

/// Converts to prenex normal form.
///
/// The input is first converted to NNF and standardized apart, then
/// quantifiers are hoisted over `∧`/`∨`. The result is logically
/// equivalent **over nonempty domains** (the usual FO convention —
/// hoisting `∃` out of a disjunction is unsound on the empty structure);
/// the prefix length may exceed the original quantifier rank.
pub fn prenex(f: &Formula) -> Prenex {
    let g = standardize_apart(&nnf(f));
    fn go(f: Formula, prefix: &mut Vec<Quant>) -> Formula {
        match f {
            Formula::Exists(v, g) => {
                prefix.push(Quant::Exists(v));
                go(*g, prefix)
            }
            Formula::Forall(v, g) => {
                prefix.push(Quant::Forall(v));
                go(*g, prefix)
            }
            Formula::And(fs) => Formula::And(fs.into_iter().map(|g| go(g, prefix)).collect()),
            Formula::Or(fs) => Formula::Or(fs.into_iter().map(|g| go(g, prefix)).collect()),
            other => other,
        }
    }
    let mut prefix = Vec::new();
    let matrix = go(g, &mut prefix);
    Prenex { prefix, matrix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use fmt_structures::Signature;

    fn p(src: &str) -> Formula {
        parse_formula(&Signature::graph(), src).unwrap()
    }

    fn quantifier_free(f: &Formula) -> bool {
        let mut qf = true;
        f.visit(&mut |g| {
            if matches!(g, Formula::Exists(..) | Formula::Forall(..)) {
                qf = false;
            }
        });
        qf
    }

    fn negations_at_atoms_only(f: &Formula) -> bool {
        let mut ok = true;
        f.visit(&mut |g| {
            if let Formula::Not(inner) = g {
                if !matches!(
                    **inner,
                    Formula::Atom { .. } | Formula::Eq(..) | Formula::True | Formula::False
                ) {
                    ok = false;
                }
            }
            if matches!(g, Formula::Implies(..) | Formula::Iff(..)) {
                ok = false;
            }
        });
        ok
    }

    #[test]
    fn nnf_pushes_negations() {
        let f = p("!(forall x. E(x,x) -> exists y. E(x,y))");
        let g = nnf(&f);
        assert!(negations_at_atoms_only(&g));
        assert_eq!(f.quantifier_rank(), g.quantifier_rank());
    }

    #[test]
    fn nnf_dualizes_quantifiers() {
        let f = p("!(exists x. E(x,x))");
        match nnf(&f) {
            Formula::Forall(_, body) => {
                assert!(matches!(*body, Formula::Not(_)));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn nnf_iff_expansion() {
        let f = p("E(x,y) <-> E(y,x)");
        let g = nnf(&f);
        assert!(negations_at_atoms_only(&g));
        // Free variables are preserved.
        assert_eq!(f.free_vars(), g.free_vars());
    }

    #[test]
    fn simplify_units() {
        let f = Formula::True.and(p("E(x,y)")).and(Formula::True);
        assert_eq!(simplify(&f), p("E(x,y)"));
        let g = Formula::False.or(p("E(x,y)"));
        assert_eq!(simplify(&g), p("E(x,y)"));
        let h = p("E(x,y)").and(Formula::False);
        assert_eq!(simplify(&h), Formula::False);
        let dn = p("E(x,y)").not().not();
        assert_eq!(simplify(&dn), p("E(x,y)"));
        let selfeq = p("x = x");
        assert_eq!(simplify(&selfeq), Formula::True);
    }

    #[test]
    fn simplify_keeps_quantifier_over_true() {
        // ∃x. true must NOT collapse to true (empty domains!).
        let f = Formula::exists(Var(0), Formula::True);
        assert_eq!(simplify(&f), f);
    }

    #[test]
    fn standardize_apart_no_rebinding() {
        // exists x (E(x,x) & exists x E(x,x)): same variable bound twice.
        let f = p("exists x. (E(x,x) & exists x. E(x,x))");
        let g = standardize_apart(&f);
        let mut bound = Vec::new();
        g.visit(&mut |h| {
            if let Formula::Exists(v, _) | Formula::Forall(v, _) = h {
                bound.push(*v);
            }
        });
        let mut dedup = bound.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(bound.len(), dedup.len(), "a variable is bound twice");
    }

    #[test]
    fn standardize_apart_preserves_free_vars() {
        let f = p("E(x,y) & exists y. E(x,y)");
        let g = standardize_apart(&f);
        assert_eq!(f.free_vars(), g.free_vars());
    }

    #[test]
    fn prenex_shape() {
        let f = p("(exists x. E(x,x)) & (forall y. E(y,y))");
        let pr = prenex(&f);
        assert_eq!(pr.prefix.len(), 2);
        assert!(quantifier_free(&pr.matrix));
        // Reassembled formula is a well-formed prenex sentence.
        assert!(pr.to_formula().is_sentence());
    }

    #[test]
    fn prenex_of_implication() {
        // x→∀: the universal in the antecedent flips to an existential.
        let f = p("(forall x. E(x,x)) -> (exists y. E(y,y))");
        let pr = prenex(&f);
        assert_eq!(pr.prefix.len(), 2);
        assert!(pr.prefix.iter().all(|q| matches!(q, Quant::Exists(_))));
        assert_eq!(pr.alternations(), 0);
    }

    #[test]
    fn alternation_count() {
        let f = p("forall x. exists y. forall z. E(x,y) & E(y,z)");
        let pr = prenex(&f);
        assert_eq!(pr.alternations(), 2);
    }
}
