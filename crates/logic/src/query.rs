//! Queries: formulas bundled with their signature and answer variables.

use crate::parser::{parse_formula_with_vars, LogicParseError};
use crate::{Formula, Var};
use fmt_structures::Signature;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Errors constructing a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The formula is ill-formed with respect to the signature.
    IllFormed(String),
    /// The declared answer variables don't match the formula's free
    /// variables.
    FreeVariableMismatch {
        /// The declared answer variables.
        declared: Vec<Var>,
        /// The formula's actual free variables.
        actual: Vec<Var>,
    },
    /// A Boolean query (sentence) was required but the formula has free
    /// variables.
    NotASentence(Vec<Var>),
    /// The query text failed to parse.
    Parse(LogicParseError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::IllFormed(m) => write!(f, "ill-formed formula: {m}"),
            QueryError::FreeVariableMismatch { declared, actual } => write!(
                f,
                "answer variables {declared:?} do not match free variables {actual:?}"
            ),
            QueryError::NotASentence(vs) => {
                write!(f, "expected a sentence but found free variables {vs:?}")
            }
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<LogicParseError> for QueryError {
    fn from(e: LogicParseError) -> Self {
        QueryError::Parse(e)
    }
}

/// An `m`-ary first-order query `φ(x̄)`: a validated formula over a
/// signature together with an ordered tuple of answer variables.
///
/// A query with `arity() == 0` is a **Boolean query** (a sentence);
/// evaluating it yields `{()}` (true) or `∅` (false), as in the survey.
///
/// ```
/// use fmt_logic::Query;
/// use fmt_structures::Signature;
///
/// let q = Query::parse(&Signature::graph(), "exists y. E(x, y)").unwrap();
/// assert_eq!(q.arity(), 1);
/// let s = Query::parse_sentence(&Signature::graph(), "forall x. exists y. E(x, y)").unwrap();
/// assert_eq!(s.arity(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    sig: Arc<Signature>,
    formula: Formula,
    free: Vec<Var>,
}

impl Query {
    /// Builds a query whose answer variables are the formula's free
    /// variables in increasing index order.
    pub fn new(sig: Arc<Signature>, formula: Formula) -> Result<Query, QueryError> {
        let free: Vec<Var> = formula.free_vars().into_iter().collect();
        Query::with_free(sig, formula, free)
    }

    /// Builds a query with an explicit answer-variable order. The set of
    /// answer variables must equal the formula's free variables (no
    /// repeats).
    pub fn with_free(
        sig: Arc<Signature>,
        formula: Formula,
        free: Vec<Var>,
    ) -> Result<Query, QueryError> {
        formula
            .well_formed_str(&sig)
            .map_err(QueryError::IllFormed)?;
        let actual: Vec<Var> = formula.free_vars().into_iter().collect();
        let mut declared = free.clone();
        declared.sort_unstable();
        let dup = declared.windows(2).any(|w| w[0] == w[1]);
        if dup || declared != actual {
            return Err(QueryError::FreeVariableMismatch {
                declared: free,
                actual,
            });
        }
        Ok(Query { sig, formula, free })
    }

    /// Builds a Boolean query; fails if the formula has free variables.
    pub fn sentence(sig: Arc<Signature>, formula: Formula) -> Result<Query, QueryError> {
        let fv: Vec<Var> = formula.free_vars().into_iter().collect();
        if !fv.is_empty() {
            return Err(QueryError::NotASentence(fv));
        }
        Query::with_free(sig, formula, vec![])
    }

    /// Parses a query; answer variables are the free variables in order
    /// of first occurrence in the source text.
    pub fn parse(sig: &Arc<Signature>, src: &str) -> Result<Query, QueryError> {
        let (formula, _names) = parse_formula_with_vars(sig, src)?;
        let free_set = formula.free_vars();
        // Order of first occurrence = increasing Var index among free.
        let free: Vec<Var> = free_set.into_iter().collect();
        Query::with_free(sig.clone(), formula, free)
    }

    /// Parses a Boolean query (sentence).
    pub fn parse_sentence(sig: &Arc<Signature>, src: &str) -> Result<Query, QueryError> {
        let (formula, _names) = parse_formula_with_vars(sig, src)?;
        Query::sentence(sig.clone(), formula)
    }

    /// The signature the query is over.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// The underlying formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The ordered answer variables.
    pub fn free(&self) -> &[Var] {
        &self.free
    }

    /// The arity of the query (0 for Boolean queries).
    pub fn arity(&self) -> usize {
        self.free.len()
    }

    /// `true` for Boolean queries.
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// Quantifier rank of the underlying formula.
    pub fn quantifier_rank(&self) -> u32 {
        self.formula.quantifier_rank()
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.formula.display(&self.sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    #[test]
    fn free_vars_become_answer_vars() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "E(x, y) & exists z. E(y, z)").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.free(), &[Var(0), Var(1)]);
        assert!(!q.is_boolean());
    }

    #[test]
    fn sentence_rejects_free_vars() {
        let sig = Signature::graph();
        assert!(matches!(
            Query::parse_sentence(&sig, "E(x, y)"),
            Err(QueryError::NotASentence(_))
        ));
        let q = Query::parse_sentence(&sig, "exists x y. E(x, y)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.quantifier_rank(), 2);
    }

    #[test]
    fn explicit_free_order() {
        let sig = Signature::graph();
        let f = parse_formula(&sig, "E(x, y)").unwrap();
        let q = Query::with_free(sig.clone(), f.clone(), vec![Var(1), Var(0)]).unwrap();
        assert_eq!(q.free(), &[Var(1), Var(0)]);
        // Mismatched set rejected.
        assert!(Query::with_free(sig.clone(), f.clone(), vec![Var(0)]).is_err());
        // Duplicates rejected.
        assert!(Query::with_free(sig, f, vec![Var(0), Var(0), Var(1)]).is_err());
    }

    #[test]
    fn ill_formed_rejected() {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let bad = Formula::atom(e, &[Var(0)]); // wrong arity
        assert!(matches!(
            Query::new(sig, bad),
            Err(QueryError::IllFormed(_))
        ));
    }

    #[test]
    fn display() {
        let sig = Signature::graph();
        let q = Query::parse_sentence(&sig, "forall x. exists y. E(x, y)").unwrap();
        let s = q.to_string();
        assert!(s.contains("forall"));
    }
}
