//! The paper's three reduction tricks (§3.3), end to end.
//!
//! From the single fact "EVEN is not FO-expressible over linear orders"
//! (Theorem 3.1), the survey derives Corollary 3.2 — none of
//! connectivity, acyclicity, transitive closure is FO-definable — via
//! FO-definable gadget constructions:
//!
//! 1. **EVEN(<) → CONN**: from a linear order, draw an edge from every
//!    element to its 2nd successor, plus wrap-around edges from the last
//!    element to the 2nd and from the penultimate to the first. The
//!    resulting graph is **connected iff the order has odd size**
//!    (two parity classes that the wrap edges either merge or don't).
//! 2. **EVEN(<) → ACYCL**: 2nd-successor edges plus a single back edge
//!    from the last element to the first; the graph is **acyclic iff
//!    the order has even size**.
//! 3. **CONN → TC**: a graph is connected iff the transitive closure of
//!    its symmetric closure is complete.
//!
//! Each construction is expressed as an [`Interpretation`] (so it *is*
//! an FO query, witnessing that the reduction is FO), and each parity
//! correspondence is verified programmatically by
//! [`verify_conn_correspondence`] / [`verify_acycl_correspondence`] /
//! [`verify_conn_via_tc`] — experiment E5.

use crate::graph;
use crate::interp::Interpretation;
use fmt_logic::Query;
use fmt_structures::{builders, Signature, Structure};

/// The EVEN(<) → CONN gadget as an FO interpretation from orders to
/// graphs (see the module docs; this is the construction drawn in the
/// paper's figure for orders of size 5 and 6).
pub fn even_to_connectivity() -> Interpretation {
    let order = Signature::order();
    let graph_sig = Signature::graph();
    // Helper sub-formulas (all FO over <):
    //   succ(x,y)  := x < y ∧ ¬∃z (x < z ∧ z < y)
    //   succ2(x,y) := ∃z (succ(x,z) ∧ succ(z,y))
    //   first(x)   := ¬∃z (z < x)         last(x) := ¬∃z (x < z)
    //   second(y)  := ∃f (first(f) ∧ succ(f,y))
    //   penult(x)  := ∃l (last(l) ∧ succ(x,l))
    let succ =
        |x: &str, y: &str, z: &str| format!("({x} < {y} & !(exists {z}. {x} < {z} & {z} < {y}))");
    let e_def = format!(
        "(exists m. {sxm} & {smy}) \
         | ((!(exists u. x < u)) & (exists f. (!(exists v. v < f)) & {sfy})) \
         | ((exists l. (!(exists w. l < w)) & {sxl}) & !(exists p. p < y))",
        sxm = succ("x", "m", "t1"),
        smy = succ("m", "y", "t2"),
        sfy = succ("f", "y", "t3"),
        sxl = succ("x", "l", "t4"),
    );
    let q = Query::parse(&order, &e_def).expect("gadget formula parses");
    debug_assert_eq!(q.arity(), 2);
    Interpretation::new(order, graph_sig, vec![q]).expect("well-formed interpretation")
}

/// The EVEN(<) → ACYCL gadget: 2nd-successor edges plus one back edge
/// from the last element to the first.
pub fn even_to_acyclicity() -> Interpretation {
    let order = Signature::order();
    let graph_sig = Signature::graph();
    let succ =
        |x: &str, y: &str, z: &str| format!("({x} < {y} & !(exists {z}. {x} < {z} & {z} < {y}))");
    let e_def = format!(
        "(exists m. {sxm} & {smy}) \
         | ((!(exists u. x < u)) & !(exists v. v < y))",
        sxm = succ("x", "m", "t1"),
        smy = succ("m", "y", "t2"),
    );
    let q = Query::parse(&order, &e_def).expect("gadget formula parses");
    Interpretation::new(order, graph_sig, vec![q]).expect("well-formed interpretation")
}

/// The CONN-from-TC test: `G` is connected iff `TC(symmetric closure)`
/// is complete. (If TC were FO-definable, so would connectivity be —
/// the third trick.)
pub fn connectivity_via_tc(s: &Structure) -> bool {
    if s.size() <= 1 {
        return true;
    }
    let sym = graph::symmetric_closure(s);
    let tc = graph::transitive_closure(&sym);
    graph::is_complete(&tc)
}

/// One row of the parity-correspondence experiment (E5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityRow {
    /// Order size `n`.
    pub n: u32,
    /// Whether `n` is even.
    pub even: bool,
    /// The observed property of the gadget graph (connectivity /
    /// acyclicity).
    pub property: bool,
    /// Number of connected components of the gadget (for the CONN
    /// trick's "two components for even size" claim).
    pub components: usize,
}

/// Runs the CONN gadget over `L_lo..=L_hi` and checks *connected ⟺
/// odd*. Returns the table; `Err` carries the first violating row.
pub fn verify_conn_correspondence(lo: u32, hi: u32) -> Result<Vec<ParityRow>, ParityRow> {
    let gadget = even_to_connectivity();
    let mut rows = Vec::new();
    for n in lo..=hi {
        let g = gadget.apply(&builders::linear_order(n));
        let row = ParityRow {
            n,
            even: n % 2 == 0,
            property: graph::is_connected(&g),
            components: graph::num_components(&g),
        };
        // connected ⟺ odd, and even orders split into exactly 2 parts.
        if row.property == row.even || (row.even && row.components != 2) {
            return Err(row);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Runs the ACYCL gadget over `L_lo..=L_hi` and checks *acyclic ⟺
/// even*.
pub fn verify_acycl_correspondence(lo: u32, hi: u32) -> Result<Vec<ParityRow>, ParityRow> {
    let gadget = even_to_acyclicity();
    let mut rows = Vec::new();
    for n in lo..=hi {
        let g = gadget.apply(&builders::linear_order(n));
        let row = ParityRow {
            n,
            even: n % 2 == 0,
            property: graph::is_acyclic(&g),
            components: graph::num_components(&g),
        };
        if row.property != row.even {
            return Err(row);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Checks `connectivity_via_tc` against the reference connectivity test
/// on a suite of graphs; returns the number of graphs checked.
pub fn verify_conn_via_tc(suite: &[Structure]) -> Result<usize, usize> {
    for (i, s) in suite.iter().enumerate() {
        if connectivity_via_tc(s) != graph::is_connected(s) {
            return Err(i);
        }
    }
    Ok(suite.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_gadget_matches_paper_figure() {
        // The paper illustrates orders of size 5 (connected) and 6
        // (two components).
        let gadget = even_to_connectivity();
        let g5 = gadget.apply(&builders::linear_order(5));
        assert!(graph::is_connected(&g5));
        let g6 = gadget.apply(&builders::linear_order(6));
        assert!(!graph::is_connected(&g6));
        assert_eq!(graph::num_components(&g6), 2);
    }

    #[test]
    fn conn_gadget_edge_structure() {
        // Size 5: edges i→i+2 plus last→2nd (4→1) and penultimate→first
        // (3→0).
        let gadget = even_to_connectivity();
        let g = gadget.apply(&builders::linear_order(5));
        let e = g.signature().relation("E").unwrap();
        for (u, v) in [(0, 2), (1, 3), (2, 4), (4, 1), (3, 0)] {
            assert!(g.holds(e, &[u, v]), "missing edge ({u},{v})");
        }
        assert_eq!(g.rel(e).len(), 5);
    }

    #[test]
    fn conn_correspondence_range() {
        let rows = verify_conn_correspondence(3, 40).expect("correspondence holds");
        assert_eq!(rows.len(), 38);
        for row in &rows {
            assert_eq!(row.property, !row.even);
        }
    }

    #[test]
    fn acycl_gadget_edge_structure() {
        // Size 5: edges i→i+2 plus back edge 4→0 ... back edge is
        // last→first = (4, 0).
        let gadget = even_to_acyclicity();
        let g = gadget.apply(&builders::linear_order(5));
        let e = g.signature().relation("E").unwrap();
        for (u, v) in [(0, 2), (1, 3), (2, 4), (4, 0)] {
            assert!(g.holds(e, &[u, v]), "missing edge ({u},{v})");
        }
        assert_eq!(g.rel(e).len(), 4);
        assert!(!graph::is_acyclic(&g)); // 0→2→4→0
        let g6 = gadget.apply(&builders::linear_order(6));
        assert!(graph::is_acyclic(&g6)); // back edge lands on the other parity chain
    }

    #[test]
    fn acycl_correspondence_range() {
        let rows = verify_acycl_correspondence(3, 40).expect("correspondence holds");
        for row in &rows {
            assert_eq!(row.property, row.even);
        }
    }

    #[test]
    fn conn_via_tc_suite() {
        let suite = vec![
            builders::undirected_cycle(6),
            builders::copies(&builders::undirected_cycle(3), 2),
            builders::directed_path(5),
            builders::empty_graph(3),
            builders::complete_graph(4),
            builders::full_binary_tree(3),
        ];
        assert_eq!(verify_conn_via_tc(&suite), Ok(6));
    }

    #[test]
    fn gadgets_are_fo() {
        // The point of the construction: both gadgets are FO queries of
        // modest quantifier rank.
        let conn = even_to_connectivity();
        let acycl = even_to_acyclicity();
        let _ = (conn, acycl); // construction itself validates FO-ness
    }

    #[test]
    fn tiny_orders() {
        // Degenerate sizes should not panic; correspondence is claimed
        // only from n = 3 up.
        let gadget = even_to_connectivity();
        for n in 0..3 {
            let _ = gadget.apply(&builders::linear_order(n));
        }
    }
}
