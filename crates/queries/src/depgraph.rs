//! Predicate dependency-graph analysis for stratified Datalog.
//!
//! The *precedence graph* of a program has one node per IDB predicate
//! and an edge `head → dep` for every body atom: positive when the
//! atom is plain, negative when it is negated. A program is
//! **stratifiable** iff no negative edge lies inside a strongly
//! connected component — negation through recursion has no least
//! fixpoint. For stratifiable programs the condensation yields a
//! *stratum* per SCC: `stratum(C) = max over edges C → D of
//! (stratum(D) + 1 if negative else stratum(D))`, so every negated
//! predicate is fully computed strictly before its negation is read.
//!
//! This module is **load-bearing**, not advisory: all three batch
//! engines in [`crate::datalog`] schedule their fixpoints from
//! [`Stratification::rules_by_stratum`], and `fmt-lint` renders the
//! same analysis as diagnostics (D006 unstratifiable, D007 unsafe
//! negation, D008 vacuous negation, D009 stratum complexity). Every
//! edge carries the `(rule, atom)` indices that induced it so both
//! consumers can point at the exact source location — the lint side
//! joins them with [`crate::datalog::ParsedProgram`]'s spans.
//!
//! Safety (range restriction under negation): every variable of a
//! negated atom must occur in some *positive* body atom of the same
//! rule, otherwise the complement is domain-dependent. The analysis
//! reports violations as [`UnsafeNeg`]; the engines reject them with
//! [`crate::datalog::EvalError::UnsafeNegation`].
//!
//! See `docs/stratification.md` for the full design.

use crate::datalog::{head_idb, Pred, Program};
use std::collections::HashSet;

/// One precedence edge of the dependency graph, labeled with the body
/// atom that induced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// IDB index of the rule head (the dependent predicate).
    pub head: usize,
    /// IDB index of the body predicate depended upon.
    pub dep: usize,
    /// `true` when the inducing atom is negated.
    pub negative: bool,
    /// Rule index of the inducing atom.
    pub rule: usize,
    /// Body-atom index within that rule.
    pub atom: usize,
}

/// A negated atom using a variable no positive atom of its rule binds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeNeg {
    /// Rule index.
    pub rule: usize,
    /// Body-atom index of the negated atom.
    pub atom: usize,
    /// The offending variable (rule-local id).
    pub var: u32,
}

/// A negated IDB predicate with no defining rule: its extent is
/// statically empty, so the negation always holds (lint code D008).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VacuousNeg {
    /// Rule index of the negated atom.
    pub rule: usize,
    /// Body-atom index of the negated atom.
    pub atom: usize,
    /// IDB index of the rule-less predicate.
    pub pred: usize,
}

/// The stratum assignment of a stratifiable program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// Stratum of each IDB predicate (indexed by IDB number).
    pub stratum: Vec<usize>,
    /// Number of strata (`max(stratum) + 1`; 1 for negation-free
    /// programs — every positive edge keeps its endpoints level).
    pub num_strata: usize,
    /// Rule indices grouped by the stratum of their head, lowest
    /// stratum first and in written order within a stratum — the
    /// engines' evaluation schedule.
    pub rules_by_stratum: Vec<Vec<usize>>,
    /// Most IDB predicates sharing one stratum (a width signal: wide
    /// strata mean big mutually-recursive components).
    pub widest: usize,
}

/// The full dependency analysis of one program: graph, condensation,
/// stratification, and the negation-specific findings.
#[derive(Debug, Clone)]
pub struct DepAnalysis {
    /// All IDB→IDB precedence edges, in (rule, atom) order.
    pub edges: Vec<DepEdge>,
    /// Strongly connected components in dependencies-first
    /// (topological) order; each component lists its IDB indices in
    /// ascending order.
    pub sccs: Vec<Vec<usize>>,
    /// Component index of each IDB predicate, into [`DepAnalysis::sccs`].
    pub scc_of: Vec<usize>,
    /// Negative edges whose endpoints share an SCC — the witnesses
    /// that no stratification exists (empty iff stratifiable).
    pub violations: Vec<DepEdge>,
    /// Negated-atom variables not bound by any positive atom of the
    /// same rule, in (rule, atom, arg) order.
    pub unsafe_negs: Vec<UnsafeNeg>,
    /// Negated IDB predicates with no defining rule.
    pub vacuous: Vec<VacuousNeg>,
    /// The stratum assignment; `None` iff `violations` is nonempty.
    pub stratification: Option<Stratification>,
}

impl DepAnalysis {
    /// Runs the analysis. Linear in the program for graph and safety,
    /// plus one iterative Tarjan pass and an `O(sccs × edges)` stratum
    /// sweep — cheap enough to run on every lint and every evaluation
    /// of a program with negation.
    pub fn of(p: &Program) -> DepAnalysis {
        let n = p.num_idbs();
        let rules = p.rules();

        let mut has_rule = vec![false; n];
        for rule in rules {
            has_rule[head_idb(rule)] = true;
        }

        let mut edges = Vec::new();
        let mut unsafe_negs = Vec::new();
        let mut vacuous = Vec::new();
        for (ri, rule) in rules.iter().enumerate() {
            let head = head_idb(rule);
            let mut pos_vars: HashSet<u32> = HashSet::new();
            for atom in rule.body.iter().filter(|a| !a.negated) {
                pos_vars.extend(atom.args.iter().copied());
            }
            for (ai, atom) in rule.body.iter().enumerate() {
                if let Pred::Idb(j) = atom.pred {
                    edges.push(DepEdge {
                        head,
                        dep: j,
                        negative: atom.negated,
                        rule: ri,
                        atom: ai,
                    });
                }
                if !atom.negated {
                    continue;
                }
                let mut seen: HashSet<u32> = HashSet::new();
                for &v in &atom.args {
                    if !pos_vars.contains(&v) && seen.insert(v) {
                        unsafe_negs.push(UnsafeNeg {
                            rule: ri,
                            atom: ai,
                            var: v,
                        });
                    }
                }
                if let Pred::Idb(j) = atom.pred {
                    if !has_rule[j] {
                        vacuous.push(VacuousNeg {
                            rule: ri,
                            atom: ai,
                            pred: j,
                        });
                    }
                }
            }
        }

        let (sccs, scc_of) = tarjan(n, &edges);
        let violations: Vec<DepEdge> = edges
            .iter()
            .filter(|e| e.negative && scc_of[e.head] == scc_of[e.dep])
            .cloned()
            .collect();

        let stratification = violations.is_empty().then(|| {
            // Tarjan pops dependencies first, so every edge leaving a
            // component points at an already-ranked one.
            let mut scc_stratum = vec![0usize; sccs.len()];
            for ci in 0..sccs.len() {
                let mut s = 0;
                for e in &edges {
                    if scc_of[e.head] == ci && scc_of[e.dep] != ci {
                        debug_assert!(scc_of[e.dep] < ci, "cross edges point down");
                        s = s.max(scc_stratum[scc_of[e.dep]] + usize::from(e.negative));
                    }
                }
                scc_stratum[ci] = s;
            }
            let stratum: Vec<usize> = (0..n).map(|j| scc_stratum[scc_of[j]]).collect();
            let num_strata = stratum.iter().copied().max().unwrap_or(0) + 1;
            let mut rules_by_stratum = vec![Vec::new(); num_strata];
            for (ri, rule) in rules.iter().enumerate() {
                rules_by_stratum[stratum[head_idb(rule)]].push(ri);
            }
            let mut width = vec![0usize; num_strata];
            for &st in &stratum {
                width[st] += 1;
            }
            let widest = width.into_iter().max().unwrap_or(0);
            Stratification {
                stratum,
                num_strata,
                rules_by_stratum,
                widest,
            }
        });

        DepAnalysis {
            edges,
            sccs,
            scc_of,
            violations,
            unsafe_negs,
            vacuous,
            stratification,
        }
    }
}

/// Iterative Tarjan SCC over `n` nodes. Returns the components in
/// dependencies-first order (a component is emitted only after every
/// component it depends on) plus the node→component map. Iterative —
/// an explicit work stack instead of recursion — so pathological
/// dependency chains cannot overflow the call stack.
fn tarjan(n: usize, edges: &[DepEdge]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.head].push(e.dep);
    }

    const UNVISITED: usize = usize::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut scc_of = vec![UNVISITED; n];
    let mut next_index = 0usize;

    for root in 0..n {
        if index_of[root] != UNVISITED {
            continue;
        }
        // Each frame is (node, next outgoing-edge index).
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ei)) = call.last() {
            if ei == 0 {
                index_of[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ei < adj[v].len() {
                call.last_mut().expect("nonempty").1 += 1;
                let w = adj[v][ei];
                if index_of[w] == UNVISITED {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index_of[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index_of[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::Signature;

    fn parse(src: &str) -> Program {
        Program::parse(&Signature::graph(), src).expect("test program parses")
    }

    #[test]
    fn positive_program_is_one_stratum() {
        let p = Program::transitive_closure();
        let a = DepAnalysis::of(&p);
        assert!(a.violations.is_empty());
        assert!(a.unsafe_negs.is_empty());
        let s = a.stratification.expect("stratifiable");
        assert_eq!(s.num_strata, 1);
        assert_eq!(s.rules_by_stratum, vec![vec![0, 1]]);
        assert_eq!(s.widest, 1);
    }

    #[test]
    fn mutual_recursion_shares_an_scc() {
        let p = parse("ev(x, x). od(x, y) :- ev(x, z), e(z, y). ev(x, y) :- od(x, z), e(z, y).");
        let a = DepAnalysis::of(&p);
        assert_eq!(a.sccs.len(), 1);
        assert_eq!(a.sccs[0], vec![0, 1]);
        let s = a.stratification.expect("stratifiable");
        assert_eq!(s.num_strata, 1);
        assert_eq!(s.widest, 2);
    }

    #[test]
    fn negation_raises_the_stratum() {
        let p = parse(
            "t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z). \
             nt(x, y) :- e(x, x), e(y, y), !t(x, y).",
        );
        let a = DepAnalysis::of(&p);
        assert!(a.violations.is_empty());
        let s = a.stratification.expect("stratifiable");
        let t = p.idb("t").unwrap();
        let nt = p.idb("nt").unwrap();
        assert_eq!(s.stratum[t], 0);
        assert_eq!(s.stratum[nt], 1);
        assert_eq!(s.num_strata, 2);
        assert_eq!(s.rules_by_stratum, vec![vec![0, 1], vec![2]]);
        // The negative edge remembers its inducing atom.
        let neg = a.edges.iter().find(|e| e.negative).unwrap();
        assert_eq!((neg.rule, neg.atom), (2, 2));
        assert_eq!((neg.head, neg.dep), (nt, t));
    }

    #[test]
    fn negation_in_a_cycle_is_a_violation() {
        let p = parse("p(x) :- e(x, y), !q(y). q(x) :- e(x, y), p(y).");
        let a = DepAnalysis::of(&p);
        assert_eq!(a.violations.len(), 1);
        assert!(a.stratification.is_none());
        let v = &a.violations[0];
        assert_eq!((v.rule, v.atom), (0, 1));
        // Direct self-negation is the smallest cycle.
        let p = parse("p(x) :- e(x, y), !p(y).");
        let a = DepAnalysis::of(&p);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.sccs[a.scc_of[0]], vec![0]);
    }

    #[test]
    fn unsafe_and_vacuous_negation_are_reported() {
        let p = parse("q(x) :- e(x, x), !p(y, y). p(x, y) :- e(x, y).");
        let a = DepAnalysis::of(&p);
        assert_eq!(a.unsafe_negs.len(), 1);
        assert_eq!(a.unsafe_negs[0].rule, 0);
        assert_eq!(a.unsafe_negs[0].atom, 1);
        assert!(a.vacuous.is_empty());

        // `ghost` has no rules: registered as a rule-less IDB, flagged
        // vacuous, and safe (x is positively bound).
        let p = parse("q(x) :- e(x, x), !ghost(x).");
        let a = DepAnalysis::of(&p);
        assert!(a.unsafe_negs.is_empty());
        assert_eq!(a.vacuous.len(), 1);
        assert_eq!(a.vacuous[0].pred, p.idb("ghost").unwrap());
        // Rule-less IDBs still stratify (empty extent, stratum 0).
        assert!(a.stratification.is_some());
    }

    #[test]
    fn deep_negation_chain_counts_strata() {
        let p = parse(
            "p1(x) :- e(x, x). \
             p2(x) :- e(x, x), !p1(x). \
             p3(x) :- e(x, x), !p2(x). \
             p4(x) :- e(x, x), !p3(x).",
        );
        let a = DepAnalysis::of(&p);
        let s = a.stratification.expect("stratifiable");
        assert_eq!(s.num_strata, 4);
        assert_eq!(s.stratum, vec![0, 1, 2, 3]);
        assert_eq!(s.widest, 1);
    }

    #[test]
    fn negated_edb_adds_no_edge() {
        let p = parse("p(x, y) :- e(x, y), !e(y, x).");
        let a = DepAnalysis::of(&p);
        assert!(a.edges.is_empty());
        assert_eq!(a.stratification.expect("stratifiable").num_strata, 1);
    }
}
