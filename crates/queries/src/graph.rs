//! The canonical non-FO queries, as reference graph algorithms.
//!
//! Corollary 3.2 of the survey: connectivity, acyclicity, and
//! transitive closure are not FO-expressible. This module implements
//! them (plus EVEN and the tree test) directly — they are the ground
//! truth that the locality checkers, reductions, and experiments
//! compare against.

use fmt_structures::{Elem, RelId, Signature, Structure, StructureBuilder};

/// Finds the binary edge relation of a graph-like structure: the unique
/// binary relation, looked up as `E`, then `S`, then the first binary
/// one.
///
/// # Panics
/// Panics if the structure has no binary relation.
pub fn edge_relation(s: &Structure) -> RelId {
    let sig = s.signature();
    sig.relation("E")
        .or_else(|| sig.relation("S"))
        .filter(|&r| sig.arity(r) == 2)
        .or_else(|| sig.relations().find(|&(_, _, a)| a == 2).map(|(r, _, _)| r))
        .expect("structure has no binary relation")
}

/// The transitive closure `TC(G)` as a new graph over the graph
/// signature: edge `(u, v)` iff there is a nonempty directed path
/// `u → … → v`. Computed by BFS from every vertex —
/// `O(n · (n + m))`.
pub fn transitive_closure(s: &Structure) -> Structure {
    let e = edge_relation(s);
    let n = s.size();
    let sig = Signature::graph();
    let eo = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, n);
    let mut seen = vec![false; n as usize];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        seen.iter_mut().for_each(|x| *x = false);
        queue.clear();
        for &w in s.out_neighbors(e, start) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
        while let Some(v) = queue.pop_front() {
            b.add(eo, &[start, v]).expect("in range");
            for &w in s.out_neighbors(e, v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    b.build().expect("tuples are in range")
}

/// Graph connectivity in the undirected sense (edge orientation
/// forgotten, as in the paper's examples). Vacuously `true` for
/// `n ≤ 1`.
pub fn is_connected(s: &Structure) -> bool {
    let e = edge_relation(s);
    let n = s.size();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n as usize];
    let mut queue = std::collections::VecDeque::from([0u32]);
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = queue.pop_front() {
        for &w in s.out_neighbors(e, v).iter().chain(s.in_neighbors(e, v)) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                count += 1;
                queue.push_back(w);
            }
        }
    }
    count == n
}

/// Number of connected components (undirected sense). The empty graph
/// has 0 components.
pub fn num_components(s: &Structure) -> usize {
    let e = edge_relation(s);
    let n = s.size() as usize;
    let mut seen = vec![false; n];
    let mut components = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        components += 1;
        seen[start] = true;
        queue.push_back(start as Elem);
        while let Some(v) = queue.pop_front() {
            for &w in s.out_neighbors(e, v).iter().chain(s.in_neighbors(e, v)) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    components
}

/// Directed acyclicity: no directed cycle (self-loops count as cycles).
pub fn is_acyclic(s: &Structure) -> bool {
    let e = edge_relation(s);
    let n = s.size() as usize;
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(Elem, usize)> = vec![(start as Elem, 0)];
        color[start] = Color::Gray;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let outs = s.out_neighbors(e, v);
            if *i < outs.len() {
                let w = outs[*i];
                *i += 1;
                match color[w as usize] {
                    Color::Gray => return false,
                    Color::White => {
                        color[w as usize] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[v as usize] = Color::Black;
                stack.pop();
            }
        }
    }
    true
}

/// The tree test (undirected sense): connected and exactly `n − 1`
/// undirected edges (the paper's `G₁` = chain vs `G₂` = chain ⊎ cycle
/// example). The empty graph is not a tree; a single vertex is.
pub fn is_tree(s: &Structure) -> bool {
    let n = s.size();
    if n == 0 {
        return false;
    }
    is_connected(s) && undirected_edge_count(s) == n as usize - 1
}

/// Number of undirected edges (unordered pairs `{u, v}`, `u ≠ v`, with
/// an edge in either direction; self-loops excluded).
pub fn undirected_edge_count(s: &Structure) -> usize {
    let e = edge_relation(s);
    let mut pairs: Vec<(Elem, Elem)> = s
        .rel(e)
        .iter()
        .filter(|t| t[0] != t[1])
        .map(|t| (t[0].min(t[1]), t[0].max(t[1])))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs.len()
}

/// The EVEN query: does the structure have an even number of elements?
/// (The survey's running example of a non-FO-definable query.)
pub fn even(s: &Structure) -> bool {
    s.size().is_multiple_of(2)
}

/// The symmetric closure: adds `(v, u)` for every edge `(u, v)`.
pub fn symmetric_closure(s: &Structure) -> Structure {
    let e = edge_relation(s);
    let sig = Signature::graph();
    let eo = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, s.size());
    for t in s.rel(e).iter() {
        b.add(eo, &[t[0], t[1]]).expect("in range");
        b.add(eo, &[t[1], t[0]]).expect("in range");
    }
    b.build().expect("tuples are in range")
}

/// Completeness test: every ordered pair `(u, v)` with `u ≠ v` is an
/// edge.
pub fn is_complete(s: &Structure) -> bool {
    let e = edge_relation(s);
    let n = s.size() as usize;
    s.rel(e).iter().filter(|t| t[0] != t[1]).count() == n * (n.max(1) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn tc_of_chain() {
        let s = builders::directed_path(4);
        let t = transitive_closure(&s);
        let e = t.signature().relation("E").unwrap();
        assert_eq!(t.rel(e).len(), 6); // pairs i < j
        assert!(t.holds(e, &[0, 3]));
        assert!(!t.holds(e, &[3, 0]));
        assert!(!t.holds(e, &[2, 2]));
    }

    #[test]
    fn tc_of_cycle_is_complete_with_loops() {
        let s = builders::directed_cycle(4);
        let t = transitive_closure(&s);
        let e = t.signature().relation("E").unwrap();
        assert_eq!(t.rel(e).len(), 16); // all pairs incl. loops
        assert!(t.holds(e, &[2, 2]));
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&builders::undirected_cycle(5)));
        assert!(is_connected(&builders::directed_path(5))); // undirected sense
        let two = builders::copies(&builders::undirected_cycle(3), 2);
        assert!(!is_connected(&two));
        assert_eq!(num_components(&two), 2);
        assert!(is_connected(&builders::empty_graph(1)));
        assert!(is_connected(&builders::empty_graph(0)));
        assert!(!is_connected(&builders::empty_graph(2)));
        assert_eq!(num_components(&builders::empty_graph(3)), 3);
    }

    #[test]
    fn acyclicity() {
        assert!(is_acyclic(&builders::directed_path(6)));
        assert!(!is_acyclic(&builders::directed_cycle(6)));
        assert!(!is_acyclic(&builders::directed_cycle(1))); // self-loop
        assert!(is_acyclic(&builders::full_binary_tree(3)));
        // Undirected cycles store both directions: 2-cycles everywhere.
        assert!(!is_acyclic(&builders::undirected_path(3)));
        assert!(is_acyclic(&builders::empty_graph(4)));
    }

    #[test]
    fn tree_test() {
        assert!(is_tree(&builders::undirected_path(7)));
        assert!(!is_tree(&builders::undirected_cycle(7)));
        assert!(is_tree(&builders::full_binary_tree(3)));
        assert!(is_tree(&builders::empty_graph(1)));
        assert!(!is_tree(&builders::empty_graph(0)));
        assert!(!is_tree(&builders::empty_graph(2)));
        // The paper's pair: chain 2m vs chain m ⊎ cycle m.
        let m = 6;
        let g1 = builders::undirected_path(2 * m);
        let g2 = builders::undirected_path(m)
            .disjoint_union(&builders::undirected_cycle(m))
            .unwrap();
        assert!(is_tree(&g1));
        assert!(!is_tree(&g2));
    }

    #[test]
    fn symmetric_closure_and_completeness() {
        let p = builders::directed_path(3);
        let sc = symmetric_closure(&p);
        let e = sc.signature().relation("E").unwrap();
        assert!(sc.holds(e, &[1, 0]));
        assert!(!is_complete(&sc));
        assert!(is_complete(&builders::complete_graph(4)));
        assert!(is_complete(&builders::empty_graph(1)));
        assert!(is_complete(&builders::empty_graph(0)));
    }

    #[test]
    fn even_query() {
        assert!(even(&builders::set(0)));
        assert!(!even(&builders::set(3)));
        assert!(even(&builders::linear_order(8)));
    }

    #[test]
    fn edge_counting() {
        assert_eq!(undirected_edge_count(&builders::undirected_cycle(5)), 5);
        assert_eq!(undirected_edge_count(&builders::directed_path(5)), 4);
        let loopy = builders::directed_cycle(1);
        assert_eq!(undirected_edge_count(&loopy), 0);
    }

    #[test]
    fn successor_signature_accepted() {
        let s = builders::successor_chain(5);
        let t = transitive_closure(&s);
        let e = t.signature().relation("E").unwrap();
        assert_eq!(t.rel(e).len(), 10);
        assert!(is_connected(&s));
        assert!(is_acyclic(&s));
    }
}
