//! # fmt-queries
//!
//! The query zoo and reduction machinery of the toolbox (Libkin,
//! PODS'09, §3.3): the canonical **non-FO-definable** queries that the
//! survey's inexpressibility arguments target, an executable
//! implementation of each, a small **Datalog engine** for the fixpoint
//! queries, and the **FO interpretations** that carry the reduction
//! tricks.
//!
//! * [`graph`] — transitive closure, connectivity, acyclicity, tree
//!   test, EVEN, and friends (reference implementations used as ground
//!   truth throughout the workspace);
//! * [`datalog`] — a Datalog engine with naive and semi-naive
//!   evaluation, including the survey's *same-generation* program and
//!   the transitive-closure program, with stratified negation;
//! * [`depgraph`] — the predicate dependency-graph analysis behind
//!   stratification: positive/negative precedence edges, SCC
//!   condensation, stratum assignment, and negation safety — consumed
//!   by the engines and by `fmt-lint`'s D006–D009 codes;
//! * [`incremental`] — a long-lived Datalog runtime maintaining the
//!   semi-naive fixpoint under fact insertions and retractions
//!   (delta rules + DRed) instead of recomputing from scratch;
//! * [`magic`] — magic-sets rewriting: query goals (`tc("a", y)?`),
//!   bound/free adornment along the join planner's binding order, and
//!   `magic_*` demand predicates, so the batch engines evaluate
//!   goal-directed instead of materializing everything;
//! * [`interp`] — FO interpretations: define a new structure by FO
//!   formulas over an old one (reductions-as-queries);
//! * [`reductions`] — the paper's three tricks, end to end:
//!   EVEN(<) → CONN (2nd-successor gadget), EVEN(<) → ACYCL (back
//!   edge), CONN → TC (symmetric closure + completeness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datalog;
pub mod depgraph;
pub mod graph;
pub mod incremental;
pub mod interp;
pub mod magic;
pub mod order_invariant;
pub mod reductions;

pub use interp::Interpretation;
